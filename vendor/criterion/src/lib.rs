//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `criterion_group!` / `criterion_main!`
//! — backed by a simple mean-of-samples timer instead of criterion's
//! statistical machinery.  Results are printed one line per benchmark:
//!
//! ```text
//! group/name              time:   123.4 µs/iter   (31 iters x 4 samples)
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id rendered as the bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    /// Filled by [`Bencher::iter`]: (mean seconds per iteration, iterations per sample).
    result: Option<(f64, usize)>,
}

impl Bencher {
    /// Measures `routine`, averaging over adaptively chosen iteration counts.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes ≥ ~5 ms.
        let mut iters = 1usize;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        let _ = per_iter;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += start.elapsed();
        }
        let mean = total.as_secs_f64() / (self.samples * iters) as f64;
        self.result = Some((mean, iters));
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, iters)) => {
            let (value, unit) = if mean >= 1.0 {
                (mean, "s")
            } else if mean >= 1e-3 {
                (mean * 1e3, "ms")
            } else if mean >= 1e-6 {
                (mean * 1e6, "µs")
            } else {
                (mean * 1e9, "ns")
            };
            println!(
                "{label:<48} time: {value:>10.2} {unit}/iter   ({iters} iters x {samples} samples)"
            );
        }
        None => println!("{label:<48} (no measurement recorded)"),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples.min(10), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples.min(10), &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, &mut f);
        self
    }
}

/// Declares a function running the given benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_positive_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
