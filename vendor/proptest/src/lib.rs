//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's
//! property-based tests use: range and tuple strategies, [`Strategy::prop_map`],
//! [`Strategy::prop_recursive`], [`sample::select`], [`collection::vec`],
//! [`prop_oneof!`], the [`proptest!`] test macro and the `prop_assert*`
//! family.  Cases are generated from a deterministic per-test seed.
//!
//! Deliberate simplification versus upstream: **no shrinking**.  On failure
//! the offending inputs are printed verbatim instead of being minimized.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator driving test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Creates a generator whose seed is derived from the test name, so each
    /// test gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A failed property assertion; carries the message to report.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| inner.new_value(rng)),
        }
    }

    /// Builds recursive values: `recurse` receives the strategy for the
    /// previous depth and returns the one for the next.  Upstream proptest
    /// additionally bounds total size; this stand-in only bounds depth,
    /// mixing shallower alternatives in at every level so depths vary.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(current.clone()).boxed();
            current = Union {
                options: vec![current, deeper],
            }
            .boxed();
        }
        current
    }
}

/// Type-erased strategy; clones share the underlying generator.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between boxed alternatives (the engine behind
/// [`prop_oneof!`]).
pub struct Union<T> {
    /// The alternatives; one is drawn uniformly per value.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len());
        self.options[k].new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Strategies drawing from explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }

    /// Uniformly selects one of `items` per generated value.
    pub fn select<T: Clone>(items: &[T]) -> Select<T> {
        assert!(!items.is_empty(), "sample::select over an empty slice");
        Select {
            items: items.to_vec(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror of upstream's `prop::` module tree.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left_val = &$left;
        let right_val = &$right;
        if !(left_val == right_val) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left_val,
                right_val
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left_val = &$left;
        let right_val = &$right;
        if !(left_val == right_val) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left_val,
                right_val
            )));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left_val = &$left;
        let right_val = &$right;
        if left_val == right_val {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left_val
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1,
                            config.cases,
                            err,
                            format!(
                                concat!($(stringify!($arg), " = {:?}; "),*),
                                $(&$arg),*
                            )
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_select_sample_within_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..200 {
            let v = (0i64..10).new_value(&mut rng);
            assert!((0..10).contains(&v));
            let (a, b) = ((0usize..5), (1.0f64..2.0)).new_value(&mut rng);
            assert!(a < 5 && (1.0..2.0).contains(&b));
            let s = prop::sample::select(&["x", "y"][..]).new_value(&mut rng);
            assert!(s == "x" || s == "y");
            let xs = prop::collection::vec(0i32..3, 1..4).new_value(&mut rng);
            assert!((1..4).contains(&xs.len()) && xs.iter().all(|x| (0..3).contains(x)));
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::from_seed(2);
        let depths: Vec<usize> = (0..100)
            .map(|_| depth(&strat.new_value(&mut rng)))
            .collect();
        assert!(depths.iter().all(|&d| d <= 4));
        assert!(depths.contains(&0));
        assert!(depths.iter().any(|&d| d > 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_binds_arguments(x in 0i64..100, y in 0i64..100) {
            prop_assert!(x + y <= 198);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x - 1, x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0i64..4) {
                prop_assert!(x < 0, "x was {}", x);
            }
        }
        always_fails();
    }
}
