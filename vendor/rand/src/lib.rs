//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen_range` over half-open and inclusive
//! integer/float ranges, `Rng::gen_bool`, and `SliceRandom::shuffle` — on a
//! xoshiro256** generator seeded through SplitMix64.  The streams differ
//! from upstream rand's ChaCha-based `StdRng`, which is fine: every use in
//! the workspace treats the generator as an arbitrary deterministic source,
//! never as a reproduction of specific upstream streams.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly by [`Rng::gen_range`].  Generic over
/// the output type (like upstream rand) so integer literals in ranges infer
/// their type from the call site's expected value.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<G: RngCore>(&self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(&self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore>(&self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore>(&self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool called with p outside [0, 1]"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Standard generator: xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait providing in-place Fisher–Yates shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly at random.
        fn shuffle<G: RngCore>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic_and_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left the slice unchanged"
        );
    }
}
