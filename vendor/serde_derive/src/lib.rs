//! Offline stand-in for `serde_derive`.
//!
//! The repository vendors its external dependencies because it must build
//! without network access.  Nothing in the workspace serializes values —
//! the `#[derive(Serialize, Deserialize)]` attributes on the IR types only
//! exist so that downstream users *could* serialize reports — so the derive
//! macros here expand to nothing.  Swap in the real `serde`/`serde_derive`
//! by editing `vendor/` out of the workspace if JSON output is ever needed.

use proc_macro::TokenStream;

/// Derive macro for `serde::Serialize`; expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive macro for `serde::Deserialize`; expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
