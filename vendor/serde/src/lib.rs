//! Offline stand-in for `serde`.
//!
//! Provides just enough surface for the workspace to compile without network
//! access: marker traits named `Serialize` / `Deserialize` and re-exported
//! no-op derive macros of the same names.  No serialization is performed
//! anywhere in the workspace; see `vendor/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; nothing in the
/// workspace serializes values).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}
