//! Offline stand-in for `crossbeam`, implementing the `thread::scope` API the
//! workspace uses on top of `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from real crossbeam: a panic in a spawned thread propagates
//! out of [`thread::scope`] (via std's scope semantics) instead of being
//! collected into the returned `Result`, so the `Err` arm is never taken.
//! Every call site in the workspace immediately `.expect()`s the result, so
//! the observable behavior — abort with a panic message — is identical.

pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread, mirroring `std::thread::Result`.
    pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; wraps [`std::thread::Scope`] so spawned closures can
    /// receive a `&Scope` argument the way crossbeam's do.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a scope handle so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning scoped threads; all threads are joined
    /// before this returns.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_run_and_join() {
        let counter = AtomicUsize::new(0);
        let total = thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    scope.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i * 10
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(total, 10 + 20 + 30);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let hit = AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|inner_scope| {
                inner_scope.spawn(|_| {
                    hit.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}
