//! SuiteSparse/CSparse walk-through: analyze the catalogued CSparse kernels,
//! show the derived index-array properties, and execute each kernel serial
//! vs. parallel to confirm the analysis-licensed parallelization is both
//! correct and profitable.
//!
//! `cargo run --release --example suitesparse_kernels`

use ss_npb::kernels::{fig5, fig6, ipvec};
use ss_npb::{study_kernels, Suite};
use ss_parallelizer::parallelize_source;
use ss_runtime::{hardware_threads, time_it};

fn main() {
    let threads = hardware_threads().min(8);

    // ---- Compile-time analysis of every CSparse kernel in the catalogue --
    println!("== compile-time analysis of the SuiteSparse kernels ==\n");
    for k in study_kernels()
        .iter()
        .filter(|k| k.suite == Suite::SuiteSparse)
    {
        let report = parallelize_source(k.name, k.source).expect("catalogued kernel parses");
        let target = report
            .loop_report(ss_ir::LoopId(k.target_loop))
            .expect("target loop analyzed");
        println!(
            "{:<24} pattern: {:<28} target loop {} -> {}",
            k.name,
            k.class.label(),
            k.target_loop,
            if target.parallel {
                "PARALLEL"
            } else {
                "serial"
            }
        );
        for reason in &target.reasons {
            println!("    {reason}");
        }
        println!();
    }

    // ---- Execution: serial vs. parallel on property-respecting inputs ----
    println!("== execution (serial vs. {threads}-thread parallel) ==\n");

    let jmatch = fig5::generate(2_000_000, 0.6, 3);
    let (s, t_serial) = time_it(|| fig5::serial(&jmatch, jmatch.len()));
    let (p, t_par) = time_it(|| fig5::parallel(&jmatch, jmatch.len(), threads));
    assert_eq!(s, p);
    report("cs_maxtrans (Figure 5)", t_serial, t_par);

    let (r, perm) = fig6::generate(60_000, 24, 5);
    let (s, t_serial) = time_it(|| fig6::serial(&r, &perm));
    let (p, t_par) = time_it(|| fig6::parallel(&r, &perm, threads));
    assert_eq!(s, p);
    report("cs_dmperm blocks (Figure 6)", t_serial, t_par);

    let (perm, b) = ipvec::generate(2_000_000, 23);
    let (s, t_serial) = time_it(|| ipvec::serial(&perm, &b));
    let (p, t_par) = time_it(|| ipvec::parallel(&perm, &b, threads));
    assert_eq!(s, p);
    report("cs_ipvec permutation scatter", t_serial, t_par);
}

fn report(kernel: &str, t_serial: f64, t_par: f64) {
    println!(
        "{:<32} serial {:>8.2} ms   parallel {:>8.2} ms   speedup {:>5.2}x",
        kernel,
        t_serial * 1e3,
        t_par * 1e3,
        t_serial / t_par.max(1e-12)
    );
}
