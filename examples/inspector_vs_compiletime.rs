//! Ablation walk-through: compile-time parallelization vs. run-time schemes.
//!
//! Runs the Figure 9 product loop and the cs_ipvec permutation scatter under
//! four regimes — serial, compile-time parallel (this paper), an
//! inspector/executor scheme, and (for the scatter) LRPD-style speculation —
//! and prints a per-invocation cost breakdown showing how much of each
//! invocation the run-time schemes spend on analysis that the compile-time
//! approach performs once, at compilation.
//!
//! `cargo run --release --example inspector_vs_compiletime`

use ss_inspector::executor::{run_indirect_scatter, run_range_partitioned, Mode};
use ss_inspector::lrpd::lrpd_scatter;
use ss_npb::kernels::{fig9, ipvec};
use ss_runtime::{hardware_threads, CsrMatrix};

fn main() {
    let threads = hardware_threads().min(8);
    println!("threads used for parallel execution: {threads}\n");

    // ---- Figure 9 shape: rows partitioned by a monotonic rowptr ----------
    let dense = fig9::generate_dense(2000, 2500, 0.05, 7);
    let a = CsrMatrix::from_dense(&dense);
    let vector: Vec<f64> = (0..a.ncols).map(|i| 1.0 + (i % 17) as f64).collect();
    let bounds: Vec<i64> = a.rowptr.iter().map(|&r| r as i64).collect();
    let nnz = a.nnz();
    let values = a.values.clone();
    let vlen = vector.len();
    let row_body = move |_i: usize, j: usize| values[j] * vector[j % vlen];

    println!("== Figure 9 product loop (enabling property: rowptr monotonic) ==");
    println!(
        "{:<22} {:>14} {:>14} {:>14} {:>10}",
        "mode", "inspect (ms)", "execute (ms)", "total (ms)", "strategy"
    );
    let mut reference: Option<Vec<f64>> = None;
    for (label, mode) in [
        ("serial", Mode::Serial),
        ("compile_time", Mode::CompileTime),
        ("inspector_executor", Mode::InspectorExecutor),
    ] {
        let mut data = vec![0.0f64; nnz];
        let profile = run_range_partitioned(&mut data, &bounds, &row_body, threads, mode);
        match &reference {
            None => reference = Some(data),
            Some(r) => assert_eq!(r, &data, "{label} diverged from the serial result"),
        }
        println!(
            "{:<22} {:>14.3} {:>14.3} {:>14.3} {:>10?}",
            label,
            profile.inspection_seconds * 1e3,
            profile.execution_seconds * 1e3,
            profile.total_seconds() * 1e3,
            profile.strategy
        );
    }

    // ---- cs_ipvec shape: scatter through an injective permutation --------
    let n = 1_000_000usize;
    let (p, b) = ipvec::generate(n, 3);
    let index: Vec<i64> = p.iter().map(|&x| x as i64).collect();
    let scatter_values: Vec<i64> = b.iter().map(|&v| (v * 1e6) as i64).collect();

    println!("\n== cs_ipvec scatter x[p[k]] = b[k] (enabling property: p injective) ==");
    println!(
        "{:<22} {:>14} {:>14} {:>14} {:>10}",
        "mode", "inspect (ms)", "execute (ms)", "total (ms)", "strategy"
    );
    let mut reference: Option<Vec<i64>> = None;
    for (label, mode) in [
        ("serial", Mode::Serial),
        ("compile_time", Mode::CompileTime),
        ("inspector_executor", Mode::InspectorExecutor),
    ] {
        let mut target = vec![0i64; n];
        let profile = run_indirect_scatter(
            &mut target,
            &index,
            |i| scatter_values[i],
            |_| true,
            threads,
            mode,
        );
        match &reference {
            None => reference = Some(target),
            Some(r) => assert_eq!(r, &target, "{label} diverged from the serial result"),
        }
        println!(
            "{:<22} {:>14.3} {:>14.3} {:>14.3} {:>10?}",
            label,
            profile.inspection_seconds * 1e3,
            profile.execution_seconds * 1e3,
            profile.total_seconds() * 1e3,
            profile.strategy
        );
    }

    // LRPD speculation on the same scatter.
    let mut target = vec![0i64; n];
    let outcome = lrpd_scatter(
        &mut target,
        &index,
        |i| scatter_values[i],
        |_| true,
        threads,
    );
    assert_eq!(reference.as_ref().unwrap(), &target);
    println!(
        "{:<22} {:>14.3} {:>14.3} {:>14.3} {:>10}",
        "lrpd_speculative",
        (outcome.speculative_seconds + outcome.analysis_seconds) * 1e3,
        outcome.reexecution_seconds * 1e3,
        outcome.total_seconds() * 1e3,
        if outcome.speculation_succeeded {
            "Committed"
        } else {
            "ReRun"
        }
    );

    println!(
        "\nThe compile-time approach pays its analysis cost once, during \
         compilation; every run-time scheme above pays its inspect/speculate \
         column again on every invocation of the loop."
    );
}
