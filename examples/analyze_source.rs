//! Analyze a mini-C source file from the command line and print the
//! parallelization report — a miniature Cetus.
//!
//! `cargo run --example analyze_source -- path/to/kernel.c`
//! (with no argument it analyzes the built-in Figure 2 example)

use ss_parallelizer::parallelize_source;

const DEFAULT: &str = r#"
    for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
    for (miel = 0; miel < nelt; miel++) {
        iel = mt_to_id[miel];
        id_to_mt[iel] = miel;
    }
"#;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (name, source) = match args.get(1) {
        Some(path) => (
            path.clone(),
            std::fs::read_to_string(path).expect("could not read the source file"),
        ),
        None => ("figure2".to_string(), DEFAULT.to_string()),
    };
    match parallelize_source(&name, &source) {
        Ok(report) => {
            println!("{}", report.summary());
            println!("derived facts:\n{}", report.final_db);
            println!("annotated source:\n{}", report.annotated_source);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
