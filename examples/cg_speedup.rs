//! Figure 10 reproduction: CG speedups (Classes A/B/C) after parallelizing
//! only the subscripted-subscript loops, at 2/4/6/8 threads.
//!
//! By default the sweep uses scaled-down instances so it finishes in about a
//! minute; pass `--full` to run the official NPB class sizes (slow) or
//! `--classes S,W,A` to choose classes.
//!
//! `cargo run --release --example cg_speedup -- [--full] [--classes A,B,C]`

use ss_bench::{figure10_sweep, render_figure10};
use ss_npb::Class;
use ss_runtime::hardware_threads;

fn parse_classes(arg: &str) -> Vec<Class> {
    arg.split(',')
        .filter_map(|s| match s.trim() {
            "S" => Some(Class::S),
            "W" => Some(Class::W),
            "A" => Some(Class::A),
            "B" => Some(Class::B),
            "C" => Some(Class::C),
            _ => None,
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let classes = args
        .iter()
        .position(|a| a == "--classes")
        .and_then(|i| args.get(i + 1))
        .map(|s| parse_classes(s))
        .unwrap_or_else(|| vec![Class::A, Class::B, Class::C]);
    let fraction = if full { 1.0 } else { 0.05 };
    let threads = [2usize, 4, 6, 8];
    println!(
        "CG speedups (paper Figure 10): {} instances, host has {} hardware threads",
        if full {
            "official"
        } else {
            "scaled (5% of official size; use --full for the real thing)"
        },
        hardware_threads()
    );
    let points = figure10_sweep(&classes, &threads, fraction);
    println!("{}", render_figure10(&points));
    // Highlight the paper's headline number: speedup at 4 threads.
    for p in &points {
        if p.threads == 4 {
            println!(
                "class {} at 4 threads: {:.2}x (paper reports ~3.8x for Class A on a 4-core machine)",
                p.class.name(),
                p.speedup
            );
        }
    }
}
