//! Figure 1 reproduction: run the compile-time analysis over the whole
//! kernel catalogue (NPB UA/CG + SuiteSparse/CSparse patterns) and print
//! which loops it parallelizes versus the property-free baseline.
//!
//! `cargo run --release --example pattern_study`

use ss_bench::run_catalogue_study;

fn main() {
    let table = run_catalogue_study();
    println!("Figure 1: analysis of subscripted subscript patterns");
    println!("{}", table.render());
    for row in &table.rows {
        if !row.reasons.is_empty() {
            println!("{}:", row.kernel);
            for r in &row.reasons {
                println!("    {r}");
            }
        }
    }
}
