//! Quickstart: analyze the paper's Figure 9 program, print what the
//! parallelizer found, and run the resulting parallel kernel.
//!
//! `cargo run --release --example quickstart`

use ss_npb::kernels::fig9;
use ss_parallelizer::parallelize_source;
use ss_runtime::{hardware_threads, time_it, CsrMatrix};

const FIGURE9: &str = r#"
    index = 0;
    ind = 0;
    for (i = 0; i < ROWLEN; i++) {
        count = 0;
        for (j = 0; j < COLUMNLEN; j++) {
            if (a[i][j] != 0) {
                count++;
                column_number[index] = j;
                index++;
                value[ind] = a[i][j];
                ind++;
            }
        }
        rowsize[i] = count;
    }
    rowptr[0] = 0;
    for (i = 1; i < ROWLEN + 1; i++) {
        rowptr[i] = rowptr[i-1] + rowsize[i-1];
    }
    for (i = 0; i < ROWLEN+1; i++) {
        if (i == 0) {
            j1 = i;
        } else {
            j1 = rowptr[i-1];
        }
        for (j = j1; j < rowptr[i]; j++) {
            product_array[j] = value[j] * vector[j];
        }
    }
"#;

fn main() {
    // 1. Compile-time analysis of the Figure 9 program.
    let report = parallelize_source("figure9", FIGURE9).expect("figure 9 parses");
    println!("===== analysis report =====");
    println!("{}", report.summary());
    println!("===== derived index-array facts =====");
    println!("{}", report.final_db);
    println!("===== annotated source =====");
    println!("{}", report.annotated_source);

    // 2. Execute the kernel the analysis just parallelized.
    let dense = fig9::generate_dense(2000, 3000, 0.05, 1);
    let a = CsrMatrix::from_dense(&dense);
    let vector: Vec<f64> = (0..a.ncols).map(|i| 1.0 + (i % 13) as f64).collect();
    let (serial, t_serial) = time_it(|| fig9::product_serial(&a, &vector));
    let threads = hardware_threads().min(8);
    let (parallel, t_parallel) = time_it(|| fig9::product_parallel(&a, &vector, threads));
    assert_eq!(serial, parallel, "parallel result must match serial");
    println!("===== execution =====");
    println!(
        "matrix: {} x {} with {} non-zeros",
        a.nrows,
        a.ncols,
        a.nnz()
    );
    println!("serial:   {t_serial:.4} s");
    println!(
        "parallel: {t_parallel:.4} s on {threads} threads (speedup {:.2}x)",
        t_serial / t_parallel.max(1e-12)
    );
}
