//! Runs every catalogue kernel through the full analyze → prove → compile →
//! execute → validate loop, under all three execution engines, and prints
//! one line per (kernel, engine): which loops were dispatched, whether all
//! heaps agreed (ast ≡ compiled ≡ bytecode ≡ parallel), and the measured
//! speedup.  Exits nonzero on any validation failure, so CI can gate on it.
//!
//! ```text
//! cargo run --release --example run_interpreter [-- <scale> [threads]]
//! ```

use ss_interp::{validate_source, EngineChoice, ExecOptions, InputSpec};
use ss_runtime::hardware_threads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: i64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(200);
    let threads: usize = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(hardware_threads);

    println!("interpreting the kernel catalogue: scale n={scale}, {threads} thread(s)\n");
    println!(
        "{:<24} {:<8} {:>10} {:>12} {:>12} {:>9}  validation",
        "kernel", "engine", "dispatched", "serial s", "parallel s", "speedup"
    );
    let spec = InputSpec { scale, seed: 42 };
    let mut failures = 0usize;
    for (engine, engine_name) in [
        (EngineChoice::Bytecode, "bytecode"),
        (EngineChoice::Compiled, "compiled"),
        (EngineChoice::Ast, "ast"),
    ] {
        let opts = ExecOptions {
            threads,
            engine,
            ..ExecOptions::default()
        };
        for kernel in ss_npb::study_kernels() {
            match validate_source(kernel.name, kernel.source, &spec, &opts) {
                Ok(out) => {
                    let dispatched: Vec<String> =
                        out.dispatched.iter().map(|l| l.to_string()).collect();
                    println!(
                        "{:<24} {:<8} {:>10} {:>12.6} {:>12.6} {:>8.2}x  {}",
                        kernel.name,
                        engine_name,
                        dispatched.join(","),
                        out.serial.total_seconds,
                        out.parallel.total_seconds,
                        out.speedup(),
                        if out.heaps_match {
                            "PASS (serial-ast == serial == parallel)"
                        } else {
                            "FAIL"
                        }
                    );
                    if !out.heaps_match {
                        failures += 1;
                        for m in out.mismatches.iter().take(5) {
                            println!("    {m}");
                        }
                    }
                }
                Err(e) => {
                    failures += 1;
                    println!("{:<24} {:<8} error: {e}", kernel.name, engine_name);
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} kernel/engine combination(s) FAILED validation");
        std::process::exit(1);
    }
}
