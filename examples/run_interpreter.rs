//! Runs every catalogue kernel through the full analyze → prove → compile →
//! execute → validate loop, under **every registered execution engine**,
//! and prints one line per (kernel, engine): which loops were dispatched,
//! whether all heaps agreed (the Session's differential mode diffs the
//! reference against every engine at every opt level, plus the parallel
//! leg), and the measured speedup.  Exits nonzero on any validation
//! failure, so CI can gate on it.
//!
//! Each kernel compiles **once** for the whole engine sweep — the session's
//! content-addressed artifact cache serves every run after the first.
//!
//! ```text
//! cargo run --release --example run_interpreter [-- <scale> [threads]]
//! ```

use ss_interp::{RunRequest, Session, ValidationMode};
use ss_runtime::hardware_threads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: i64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(200);
    let threads: usize = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(hardware_threads);

    println!("interpreting the kernel catalogue: scale n={scale}, {threads} thread(s)\n");
    println!(
        "{:<24} {:<8} {:>10} {:>12} {:>12} {:>9}  validation",
        "kernel", "engine", "dispatched", "serial s", "parallel s", "speedup"
    );
    let session = Session::new();
    let engines = session.registry().names();
    let mut failures = 0usize;
    for engine_name in engines {
        for kernel in ss_npb::study_kernels() {
            let request = RunRequest::new(kernel.name, kernel.source)
                .engine(engine_name)
                .threads(threads)
                .scale(scale)
                .seed(42)
                .validation(ValidationMode::Differential);
            match session.run(&request) {
                Ok(out) => {
                    let dispatched: Vec<String> =
                        out.dispatched.iter().map(|l| l.to_string()).collect();
                    println!(
                        "{:<24} {:<8} {:>10} {:>12.6} {:>12.6} {:>8.2}x  {}",
                        kernel.name,
                        engine_name,
                        dispatched.join(","),
                        out.serial.as_ref().map(|s| s.total_seconds).unwrap_or(0.0),
                        out.parallel
                            .as_ref()
                            .map(|s| s.total_seconds)
                            .unwrap_or(0.0),
                        out.speedup().unwrap_or(0.0),
                        if out.heaps_match() {
                            "PASS (reference == every engine == parallel)"
                        } else {
                            "FAIL"
                        }
                    );
                    if !out.heaps_match() {
                        failures += 1;
                        for m in out.mismatches().iter().take(5) {
                            println!("    {m}");
                        }
                    }
                }
                Err(e) => {
                    failures += 1;
                    println!("{:<24} {:<8} error: {e}", kernel.name, engine_name);
                }
            }
        }
    }
    let stats = session.cache_stats();
    println!(
        "\nartifact cache: {} programs compiled once, {} cache hits",
        stats.misses, stats.hits
    );
    if failures > 0 {
        eprintln!("\n{failures} kernel/engine combination(s) FAILED validation");
        std::process::exit(1);
    }
}
