//! Runs every catalogue kernel through the full analyze → prove → execute →
//! validate loop and prints one line per kernel: which loops were
//! dispatched, whether serial and parallel heaps agreed, and the measured
//! speedup.
//!
//! ```text
//! cargo run --release --example run_interpreter [-- <scale> [threads]]
//! ```

use ss_interp::{validate_source, ExecOptions, InputSpec};
use ss_runtime::hardware_threads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: i64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(200);
    let threads: usize = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(hardware_threads);

    println!("interpreting the kernel catalogue: scale n={scale}, {threads} thread(s)\n");
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>9}  validation",
        "kernel", "dispatched", "serial s", "parallel s", "speedup"
    );
    let opts = ExecOptions {
        threads,
        ..ExecOptions::default()
    };
    let spec = InputSpec { scale, seed: 42 };
    for kernel in ss_npb::study_kernels() {
        match validate_source(kernel.name, kernel.source, &spec, &opts) {
            Ok(out) => {
                let dispatched: Vec<String> =
                    out.dispatched.iter().map(|l| l.to_string()).collect();
                println!(
                    "{:<24} {:>10} {:>12.6} {:>12.6} {:>8.2}x  {}",
                    kernel.name,
                    dispatched.join(","),
                    out.serial.total_seconds,
                    out.parallel.total_seconds,
                    out.speedup(),
                    if out.heaps_match {
                        "PASS (serial == parallel)"
                    } else {
                        "FAIL"
                    }
                );
                if !out.heaps_match {
                    for m in out.mismatches.iter().take(5) {
                        println!("    {m}");
                    }
                }
            }
            Err(e) => println!("{:<24} error: {e}", kernel.name),
        }
    }
}
