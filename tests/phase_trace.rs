//! Integration test: the Section 3.5 phase trace and the end-to-end Figure 9
//! pipeline, exercised through the public crate APIs only.

use ss_aggregation::analyze_program;
use ss_ir::{parse_program, LoopId};
use ss_parallelizer::parallelize;
use ss_properties::ArrayProperty;
use ss_symbolic::{simplify, Expr};

const FIGURE9_FULL: &str = r#"
    index = 0;
    ind = 0;
    for (i = 0; i < ROWLEN; i++) {
        count = 0;
        for (j = 0; j < COLUMNLEN; j++) {
            if (a[i][j] != 0) {
                count++;
                column_number[index] = j;
                index++;
                value[ind] = a[i][j];
                ind++;
            }
        }
        rowsize[i] = count;
    }
    rowptr[0] = 0;
    for (i = 1; i < ROWLEN + 1; i++) {
        rowptr[i] = rowptr[i-1] + rowsize[i-1];
    }
    #pragma omp parallel for private(j,j1)
    for (i = 0; i < ROWLEN+1; i++) {
        if (i == 0) {
            j1 = i;
        } else {
            j1 = rowptr[i-1];
        }
        for (j = j1; j < rowptr[i]; j++) {
            product_array[j] = value[j] * vector[j];
        }
    }
"#;

#[test]
fn section_3_5_phase_trace() {
    let program = parse_program("fig9", FIGURE9_FULL).unwrap();
    let analysis = analyze_program(&program);

    // Phase 1 (loop on line 3, id 1): count : [λ : λ+1]
    let p1 = &analysis.phase1[&LoopId(1)];
    let count = p1.scalar("count").unwrap();
    assert_eq!(count.lo, Expr::lambda("count"));
    assert_eq!(
        count.hi,
        simplify(&Expr::add(Expr::lambda("count"), Expr::int(1)))
    );

    // Phase 2 (loop 3): count : [Λ : Λ + COLUMNLEN]
    let c = &analysis.collapsed[&LoopId(1)];
    assert_eq!(c.scalar_exit["count"].lo, Expr::big_lambda("count"));

    // Phase 1 (loop on line 1, id 0): rowsize : [i], value range starting at 0
    let p1 = &analysis.phase1[&LoopId(0)];
    let w = p1.writes_to("rowsize")[0];
    assert_eq!(w.subscript, Expr::sym("i"));
    assert_eq!(w.value.lo, Expr::Int(0));

    // Phase 2 (loop 1): rowsize : [0 : ROWLEN-1]
    let rowsize = analysis.collapsed[&LoopId(0)].fact("rowsize").unwrap();
    assert_eq!(rowsize.index_range.lo, Expr::Int(0));
    assert_eq!(
        rowsize.index_range.hi,
        simplify(&Expr::sub(Expr::sym("ROWLEN"), Expr::int(1)))
    );

    // Phase 1 (loop on line 13, id 2): rowptr : [i], rowptr[i-1] + [0 : ...]
    let p1 = &analysis.phase1[&LoopId(2)];
    let w = p1.writes_to("rowptr")[0];
    assert_eq!(w.subscript, Expr::sym("i"));
    assert!(w.value.lo.contains_array_ref("rowptr"));

    // Phase 2 (loop 13): rowptr : [1 : ROWLEN], Monotonic_inc
    let rowptr = analysis.collapsed[&LoopId(2)].fact("rowptr").unwrap();
    assert!(rowptr.has(ArrayProperty::MonotonicInc));
    assert_eq!(rowptr.index_range.lo, Expr::Int(1));
    assert_eq!(rowptr.index_range.hi, Expr::sym("ROWLEN"));
}

#[test]
fn figure9_end_to_end_matches_the_manual_parallelization() {
    let program = parse_program("fig9", FIGURE9_FULL).unwrap();
    let report = parallelize(&program);
    // Every loop the original author marked with `#pragma omp parallel for`
    // is found parallel by the analysis, and it is exactly the loop whose
    // parallelism hinges on the index-array property.
    for l in &report.loops {
        if l.manually_parallel {
            assert!(
                l.parallel,
                "manual oracle loop {} must be detected",
                l.loop_id
            );
            assert!(!l.baseline_parallel);
        }
    }
    assert!(report.newly_enabled_loops().contains(&LoopId(3)));
}
