//! API-level integration suite for the embeddable [`Session`] surface: the
//! whole kernel catalogue through `Session::run` across **every registered
//! engine × every opt level it distinguishes**, asserting bit-identical
//! final heaps — plus the cache contract (a second run of the same source
//! must not recompile), the registry contract (capabilities, default,
//! unknown names) and the stability of the JSON output.

use ss_interp::{
    engine_label, EngineRegistry, ExecutionMode, Heap, OptLevel, RunRequest, Session, SsError,
    ValidationMode,
};
use ss_parallelizer::VerdictKind;

/// Every catalogue kernel × every registered engine × every opt level:
/// serial heaps are bit-identical to the reference engine's, through the
/// public Session API only.
#[test]
fn catalogue_heaps_are_bit_identical_across_every_engine_and_level() {
    let session = Session::new();
    let engines: Vec<_> = session.registry().iter().cloned().collect();
    for kernel in ss_npb::study_kernels() {
        let reference = session
            .run(
                &RunRequest::new(kernel.name, kernel.source)
                    .scale(40)
                    .seed(17)
                    .engine(session.registry().reference().unwrap().name())
                    .mode(ExecutionMode::Serial),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        for engine in &engines {
            for &level in engine.caps().opt_levels {
                let label = engine_label(engine.as_ref(), level);
                // Serial leg.
                let serial = session
                    .run(
                        &RunRequest::new(kernel.name, kernel.source)
                            .scale(40)
                            .seed(17)
                            .engine(engine.name())
                            .opt_level(level)
                            .mode(ExecutionMode::Serial),
                    )
                    .unwrap_or_else(|e| panic!("{}/{label}: {e}", kernel.name));
                assert!(
                    serial.cache_hit,
                    "{}/{label} must reuse artifacts",
                    kernel.name
                );
                assert_eq!(
                    serial.heap, reference.heap,
                    "{}/{label}: serial heap diverges",
                    kernel.name
                );
                // Parallel leg.
                let parallel = session
                    .run(
                        &RunRequest::new(kernel.name, kernel.source)
                            .scale(40)
                            .seed(17)
                            .engine(engine.name())
                            .opt_level(level)
                            .threads(3)
                            .mode(ExecutionMode::Parallel),
                    )
                    .unwrap_or_else(|e| panic!("{}/{label}: {e}", kernel.name));
                assert_eq!(
                    parallel.heap, reference.heap,
                    "{}/{label}: parallel heap diverges",
                    kernel.name
                );
            }
        }
    }
    // One compilation per kernel for the entire matrix.
    let stats = session.cache_stats();
    assert_eq!(
        stats.misses as usize,
        ss_npb::study_kernels().len(),
        "every kernel compiles exactly once across the whole sweep"
    );
    assert!(
        stats.hits > stats.misses * 4,
        "the matrix runs off cache hits"
    );
}

/// The cache satellite pinned end-to-end: a second run of the same source
/// is a hit, counters say so, and the process-wide compilation counters
/// stay frozen.
#[test]
fn second_run_of_the_same_source_does_not_recompile() {
    let session = Session::new();
    let src = "for (i = 0; i < n; i++) { out[i] = i * 3; }";
    let req = RunRequest::new("twice", src).scale(64).threads(2);
    let first = session.run(&req).unwrap();
    assert!(!first.cache_hit);
    let slots_after_first = ss_ir::slots::compilation_count();
    let bc_after_first = ss_ir::bytecode::bytecode_compilation_count();
    let second = session.run(&req).unwrap();
    assert!(second.cache_hit);
    assert_eq!(second.heap, first.heap);
    assert_eq!(
        ss_ir::slots::compilation_count(),
        slots_after_first,
        "second run of the same source must not run the slot pass"
    );
    assert_eq!(
        ss_ir::bytecode::bytecode_compilation_count(),
        bc_after_first,
        "second run of the same source must not run the bytecode pass"
    );
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    assert_eq!(stats.evictions, 0);

    // Same source under a different name is a different content address.
    let renamed = session
        .run(&RunRequest::new("other", src).scale(64))
        .unwrap();
    assert!(!renamed.cache_hit);
    assert_eq!(session.cache_stats().entries, 2);
}

/// Differential validation over the catalogue through the Session API: the
/// matrix labels cover every non-reference engine × level plus the
/// parallel leg, and all heaps match.
#[test]
fn differential_mode_compares_the_whole_registry() {
    let session = Session::new();
    let expected_comparisons: usize = session
        .registry()
        .iter()
        .map(|e| {
            if e.caps().reference {
                0
            } else {
                e.caps().opt_levels.len()
            }
        })
        .sum::<usize>()
        + 1; // the parallel leg
    for kernel in ss_npb::study_kernels().into_iter().take(4) {
        let outcome = session
            .run(
                &RunRequest::new(kernel.name, kernel.source)
                    .scale(32)
                    .seed(5)
                    .threads(2)
                    .validation(ValidationMode::Differential),
            )
            .unwrap();
        assert!(
            outcome.heaps_match(),
            "{}: {:?}",
            kernel.name,
            outcome.mismatches()
        );
        let v = outcome.validation.as_ref().unwrap();
        assert_eq!(
            v.compared.len(),
            expected_comparisons,
            "{}: {:?}",
            kernel.name,
            v.compared
        );
        assert!(outcome.ensure_validated().is_ok());
    }
}

/// Custom registries plug straight into a session: a registry restricted
/// to the reference engine still validates (the matrix degenerates to
/// reference + parallel), and an engine-free registry is unusable in a
/// controlled way.
#[test]
fn custom_registries_drive_sessions() {
    let full = EngineRegistry::builtin();
    let mut only_reference = EngineRegistry::empty();
    only_reference.register(full.reference().unwrap());
    let session = Session::with_registry(only_reference);
    assert_eq!(session.registry().len(), 1);
    let outcome = session
        .run(
            &RunRequest::new("t", "for (i = 0; i < n; i++) { out[i] = i; }")
                .scale(32)
                .threads(2)
                .validation(ValidationMode::Differential),
        )
        .unwrap();
    assert!(outcome.heaps_match());
    assert_eq!(outcome.validation.as_ref().unwrap().compared.len(), 1);
    // Unknown engine names name what exists.
    let err = session
        .run(&RunRequest::new("t", "x = 1;").engine("bytecode"))
        .unwrap_err();
    match err {
        SsError::UnknownEngine { available, .. } => {
            assert_eq!(available.len(), 1);
        }
        other => panic!("expected UnknownEngine, got {other:?}"),
    }
}

/// The verdict summary carries the paper's headline classification
/// (newly-enabled loops) through the stable API.
#[test]
fn verdict_summaries_expose_newly_enabled_loops() {
    let session = Session::new();
    let kernel = ss_npb::study_kernels()
        .into_iter()
        .find(|k| k.name == "fig9_csr_product")
        .unwrap();
    let outcome = session
        .run(
            &RunRequest::new(kernel.name, kernel.source)
                .scale(64)
                .threads(2)
                .validation(ValidationMode::Differential),
        )
        .unwrap();
    let target = outcome
        .verdicts
        .iter()
        .find(|v| v.loop_id.0 == kernel.target_loop)
        .unwrap();
    assert_eq!(target.verdict, VerdictKind::Parallel);
    assert!(
        target.newly_enabled,
        "fig9's product loop is the paper's win"
    );
    assert!(target.dispatched);
    // JSON carries the same facts, machine-readably.
    let j = outcome.to_json();
    assert!(j.contains("\"newly_enabled\":true"), "{j}");
    assert!(
        j.contains(&format!("\"loop\":{}", kernel.target_loop)),
        "{j}"
    );
}

/// Explicit heaps round-trip through the API: what goes in verbatim comes
/// out evolved, under both opt levels, bit-identically.
#[test]
fn explicit_heaps_run_identically_at_both_opt_levels() {
    let session = Session::new();
    let src = r#"
        for (i = 0; i < n; i++) { perm[i] = n - 1 - i; }
        for (i = 0; i < n; i++) { out[perm[i]] = v[i] * 2; }
    "#;
    let n = 128i64;
    let heap = Heap::new()
        .with_scalar("n", n)
        .with_array("perm", vec![0; n as usize])
        .with_array("v", (0..n).collect())
        .with_array("out", vec![0; n as usize]);
    let mut heaps = Vec::new();
    for level in [OptLevel::O0, OptLevel::O1] {
        let outcome = session
            .run(
                &RunRequest::new("roundtrip", src)
                    .initial_heap(heap.clone())
                    .opt_level(level)
                    .threads(2)
                    .validation(ValidationMode::Differential),
            )
            .unwrap();
        assert!(outcome.heaps_match());
        heaps.push(outcome.heap);
    }
    assert_eq!(heaps[0], heaps[1], "O0 and O1 runs must agree bit for bit");
    assert_eq!(heaps[0].arrays["out"].data[0], (n - 1) * 2);
}
