//! Integration test: the compile-time verdicts, the runtime inspectors and
//! the speculative (LRPD) baseline all agree on the catalogued kernels.
//!
//! For every pattern the compile-time analysis parallelizes, the property it
//! relied on must actually hold on the data produced by that pattern's
//! generator (otherwise the analysis would be unsound), and the run-time
//! schemes — which observe the data directly — must reach the same "parallel
//! is safe" conclusion.  The converse is also exercised: on data violating
//! the property, the run-time schemes refuse or roll back, which is exactly
//! the safety net the compile-time approach must never need.

use proptest::prelude::*;
use ss_inspector::executor::{
    run_indirect_scatter, run_range_partitioned, ExecutionStrategy, Mode,
};
use ss_inspector::inspect::{inspect_index_array, inspect_write_conflicts, InspectorConfig};
use ss_inspector::lrpd::lrpd_scatter;
use ss_npb::kernels::{fig2, fig5, fig9, ipvec, is_rank};
use ss_properties::ArrayProperty;
use ss_runtime::CsrMatrix;

#[test]
fn compile_time_claims_hold_at_runtime_for_every_generator() {
    // Figure 2 / cs_ipvec: the analysis relies on injectivity of the map.
    let mt_to_id: Vec<i64> = fig2::generate(20_000, 5)
        .iter()
        .map(|&x| x as i64)
        .collect();
    let report = inspect_index_array(&mt_to_id, &InspectorConfig::serial());
    assert!(report.properties.has(ArrayProperty::Injective));

    let (p, _) = ipvec::generate(20_000, 6);
    let p64: Vec<i64> = p.iter().map(|&x| x as i64).collect();
    assert!(inspect_index_array(&p64, &InspectorConfig::serial())
        .properties
        .has(ArrayProperty::Injective));

    // Figure 9 / IS: the analysis relies on monotonicity of the prefix sums.
    let dense = fig9::generate_dense(300, 400, 0.08, 5);
    let a = CsrMatrix::from_dense(&dense);
    let rowptr: Vec<i64> = a.rowptr.iter().map(|&x| x as i64).collect();
    assert!(inspect_index_array(&rowptr, &InspectorConfig::serial())
        .properties
        .has(ArrayProperty::MonotonicInc));

    let buckets = is_rank::generate(50_000, 128, 64, 5);
    let bp: Vec<i64> = buckets.bucket_ptr.iter().map(|&x| x as i64).collect();
    assert!(inspect_index_array(&bp, &InspectorConfig::serial())
        .properties
        .has(ArrayProperty::MonotonicInc));

    // Figure 5: the analysis relies on injectivity of the guarded subset.
    let jmatch = fig5::generate(20_000, 0.5, 5);
    let conflict_free = inspect_write_conflicts(&jmatch, |i| jmatch[i] >= 0);
    assert!(conflict_free.properties.has(ArrayProperty::Injective));
}

#[test]
fn all_three_schemes_produce_identical_results_on_the_scatter_kernel() {
    let n = 50_000usize;
    let (p, b) = ipvec::generate(n, 11);
    let index: Vec<i64> = p.iter().map(|&x| x as i64).collect();
    let values: Vec<i64> = b.iter().map(|&v| (v * 1e6) as i64).collect();

    let mut serial = vec![0i64; n];
    run_indirect_scatter(
        &mut serial,
        &index,
        |i| values[i],
        |_| true,
        1,
        Mode::Serial,
    );

    let mut compile_time = vec![0i64; n];
    let ct = run_indirect_scatter(
        &mut compile_time,
        &index,
        |i| values[i],
        |_| true,
        4,
        Mode::CompileTime,
    );
    assert_eq!(ct.strategy, ExecutionStrategy::CompileTimeParallel);
    assert_eq!(ct.inspection_seconds, 0.0);

    let mut inspected = vec![0i64; n];
    let ie = run_indirect_scatter(
        &mut inspected,
        &index,
        |i| values[i],
        |_| true,
        4,
        Mode::InspectorExecutor,
    );
    assert_eq!(ie.strategy, ExecutionStrategy::Parallel);

    let mut speculative = vec![0i64; n];
    let sp = lrpd_scatter(&mut speculative, &index, |i| values[i], |_| true, 4);
    assert!(sp.speculation_succeeded);

    assert_eq!(serial, compile_time);
    assert_eq!(serial, inspected);
    assert_eq!(serial, speculative);
}

#[test]
fn range_partitioned_execution_matches_the_fig9_kernel() {
    // The inspector/executor driver and the hand-parallelized fig9 kernel
    // must compute the same product array.
    let dense = fig9::generate_dense(400, 500, 0.06, 13);
    let a = CsrMatrix::from_dense(&dense);
    let vector: Vec<f64> = (0..a.ncols).map(|i| 1.0 + (i % 13) as f64).collect();
    let expected = fig9::product_serial(&a, &vector);

    let bounds: Vec<i64> = std::iter::once(0)
        .chain(a.rowptr.iter().map(|&r| r as i64))
        .collect();
    let values = a.values.clone();
    let vlen = vector.len();
    let row_body = move |_i: usize, j: usize| values[j] * vector[j % vlen];

    for mode in [Mode::Serial, Mode::CompileTime, Mode::InspectorExecutor] {
        let mut data = vec![0.0f64; a.nnz()];
        run_range_partitioned(&mut data, &bounds, &row_body, 4, mode);
        assert_eq!(data, expected, "mode {mode:?} diverged");
    }
}

#[test]
fn runtime_schemes_reject_what_the_compile_time_analysis_would_never_accept() {
    // A histogram index (massively non-injective): the compile-time analysis
    // refuses such loops (see tests/failure_injection.rs); the inspector
    // refuses them at run time; LRPD accepts the work but must roll back.
    let n = 20_000usize;
    let index: Vec<i64> = (0..n).map(|i| (i % 37) as i64).collect();

    let mut inspected = vec![0i64; 37];
    let profile = run_indirect_scatter(
        &mut inspected,
        &index,
        |i| i as i64,
        |_| true,
        4,
        Mode::InspectorExecutor,
    );
    assert_eq!(profile.strategy, ExecutionStrategy::Serial);

    let mut speculative = vec![0i64; 37];
    let outcome = lrpd_scatter(&mut speculative, &index, |i| i as i64, |_| true, 4);
    assert!(!outcome.speculation_succeeded);
    assert!(outcome.conflicting_elements > 0);
    assert_eq!(
        inspected, speculative,
        "both fallbacks preserve serial semantics"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On arbitrary permutations (always injective) every scheme agrees and
    /// parallel execution is always licensed.
    #[test]
    fn schemes_agree_on_random_permutations(n in 1usize..3000, seed in 0u64..500, threads in 1usize..6) {
        let (p, b) = ipvec::generate(n, seed);
        let index: Vec<i64> = p.iter().map(|&x| x as i64).collect();
        let values: Vec<i64> = b.iter().map(|&v| (v * 1e3) as i64).collect();

        let mut serial = vec![0i64; n];
        run_indirect_scatter(&mut serial, &index, |i| values[i], |_| true, 1, Mode::Serial);
        let mut inspected = vec![0i64; n];
        let profile = run_indirect_scatter(&mut inspected, &index, |i| values[i], |_| true, threads, Mode::InspectorExecutor);
        prop_assert_eq!(profile.strategy, ExecutionStrategy::Parallel);
        let mut speculative = vec![0i64; n];
        let outcome = lrpd_scatter(&mut speculative, &index, |i| values[i], |_| true, threads);
        prop_assert!(outcome.speculation_succeeded);
        prop_assert_eq!(&serial, &inspected);
        prop_assert_eq!(&serial, &speculative);
    }

    /// On arbitrary bucket layouts the monotonic bucket pointers license
    /// parallel traversal and all modes agree with the serial result.
    #[test]
    fn bucket_traversal_agrees_for_arbitrary_layouts(
        nkeys in 1usize..5000,
        nbuckets in 1usize..64,
        kpb in 1usize..64,
        seed in 0u64..500,
        threads in 1usize..6,
    ) {
        let buckets = is_rank::generate(nkeys, nbuckets, kpb, seed);
        let serial = is_rank::serial(&buckets, kpb);
        let parallel = is_rank::parallel(&buckets, kpb, threads);
        prop_assert_eq!(&serial, &parallel);
        let bp: Vec<i64> = buckets.bucket_ptr.iter().map(|&x| x as i64).collect();
        let report = inspect_index_array(&bp, &InspectorConfig::serial());
        prop_assert!(report.properties.has(ArrayProperty::MonotonicInc));
    }

    /// LRPD always reproduces serial semantics, whether or not speculation
    /// succeeds (mixed injective / non-injective inputs).
    #[test]
    fn lrpd_is_always_correct(
        n in 1usize..2000,
        m in 1usize..500,
        seed in 0u64..500,
        threads in 1usize..6,
    ) {
        let mut rng_state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        let index: Vec<i64> = (0..n).map(|_| (next() % m as u64) as i64).collect();
        let mut expected = vec![-1i64; m];
        for i in 0..n {
            expected[index[i] as usize] = i as i64;
        }
        let mut target = vec![-1i64; m];
        lrpd_scatter(&mut target, &index, |i| i as i64, |_| true, threads);
        prop_assert_eq!(expected, target);
    }
}
