//! Integration test: the Figure 1 study over the complete kernel catalogue.
//! Every catalogued loop must be parallelized by the extended analysis and
//! rejected by the property-free baseline, and the derived properties must
//! hold on concrete data produced by the runnable kernels.

use ss_bench::run_catalogue_study;
use ss_npb::kernels::{fig2, fig5, fig6};
use ss_properties::concrete;

#[test]
fn every_catalogued_kernel_is_detected_and_none_by_the_baseline() {
    let table = run_catalogue_study();
    for row in &table.rows {
        assert!(
            row.detected || row.wavefront,
            "kernel {} should be parallelized by the extended analysis or \
             marked wavefront-schedulable",
            row.kernel
        );
        assert!(
            !(row.detected && row.wavefront),
            "kernel {}: detected and wavefront are mutually exclusive",
            row.kernel
        );
        assert!(
            !row.baseline_detected,
            "kernel {} should NOT be parallelizable without index-array properties",
            row.kernel
        );
    }
    assert_eq!(
        table.detected_count() + table.wavefront_count(),
        table.rows.len()
    );
    // The carried SpTRSV / Gauss-Seidel kernels are the wavefront rows.
    assert_eq!(table.wavefront_count(), 2);
    assert_eq!(table.baseline_count(), 0);
}

#[test]
fn derived_properties_hold_on_concrete_index_arrays() {
    // Figure 2: the generated mt_to_id really is injective.
    let mt_to_id = fig2::generate(5000, 9);
    let v: Vec<i64> = mt_to_id.iter().map(|&x| x as i64).collect();
    assert!(concrete::is_injective(&v));
    // Figure 5: the non-negative subset of jmatch really is injective.
    let jmatch = fig5::generate(5000, 0.5, 9);
    assert!(concrete::is_injective_subset(&jmatch, |x| x >= 0));
    assert!(concrete::writes_are_conflict_free(
        &jmatch,
        Some(&|x| x >= 0)
    ));
    // Figure 6: r really is monotonic and p injective.
    let (r, p) = fig6::generate(300, 10, 9);
    let ri: Vec<i64> = r.iter().map(|&x| x as i64).collect();
    let pi: Vec<i64> = p.iter().map(|&x| x as i64).collect();
    assert!(concrete::is_monotonic_inc(&ri));
    assert!(concrete::is_injective(&pi));
}

#[test]
fn study_table_renders_for_the_report() {
    let table = run_catalogue_study();
    let txt = table.render();
    assert!(txt.contains("fig2_ua_transfer"));
    assert!(txt.contains("fig9_csr_product"));
    assert!(txt.contains("SuiteSparse"));
}
