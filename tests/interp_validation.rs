//! End-to-end differential validation of the interpreter: every kernel the
//! compile-time analysis proves parallel must execute identically under the
//! serial reference engine and the parallel engine, over the whole built-in
//! catalogue and over randomly generated inputs for the Figure 2 / 5 / 9
//! patterns.  This is the test that turns compile-time verdicts into tested
//! claims — all of it driven through the [`Session`] API.

use proptest::prelude::*;
use ss_interp::{
    ExecMode, ExecutionMode, Heap, RunRequest, ScheduleChoice, Session, ValidationMode,
};
use ss_ir::LoopId;
use ss_runtime::hardware_threads;
use std::sync::OnceLock;

fn session() -> &'static Session {
    static SESSION: OnceLock<Session> = OnceLock::new();
    SESSION.get_or_init(Session::new)
}

fn differential(name: &str, src: &str, threads: usize, schedule: ScheduleChoice) -> RunRequest {
    RunRequest::new(name, src)
        .threads(threads)
        .schedule(schedule)
        .validation(ValidationMode::Differential)
}

/// Every catalogue kernel: the analysis proves its target loop (or, for the
/// carried-wavefront class, the wavefront engine recovers it at run time),
/// the parallel engine dispatches it, and the serial and parallel heaps
/// agree bit for bit.
#[test]
fn whole_catalogue_validates_serial_equals_parallel() {
    for kernel in ss_npb::study_kernels() {
        let carried = kernel.class == ss_npb::PatternClass::CarriedWavefront;
        let request = differential(kernel.name, kernel.source, 3, ScheduleChoice::Auto)
            .scale(48)
            .seed(11);
        let request = if carried {
            request.engine("wavefront")
        } else {
            request
        };
        let outcome = session()
            .run(&request)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert!(
            outcome.heaps_match(),
            "{}: serial and parallel heaps diverge: {:?}",
            kernel.name,
            outcome.mismatches()
        );
        let target = LoopId(kernel.target_loop);
        if carried {
            assert!(
                !outcome.proven_parallel.contains(&target),
                "{}: carried target loop {target} must stay unproven at compile time",
                kernel.name
            );
            let par = outcome.parallel.as_ref().unwrap();
            assert!(
                matches!(par.loops[&target].mode, ExecMode::Parallel { .. }),
                "{}: target loop {target} was not recovered by wavefront scheduling ({:?})",
                kernel.name,
                par.loops[&target].mode
            );
            continue;
        }
        assert!(
            outcome.proven_parallel.contains(&target),
            "{}: target loop {target} not proven parallel ({:?})",
            kernel.name,
            outcome.proven_parallel
        );
        assert!(
            outcome.dispatched.contains(&target),
            "{}: target loop {target} was not dispatched ({:?})",
            kernel.name,
            outcome.dispatched
        );
    }
}

/// On a multicore host, the dispatched loops must actually buy wall-clock
/// time on at least one kernel (the paper's Figure 10 claim, scaled down to
/// the interpreter).  Skipped on single-CPU machines, where threads can
/// only interleave.
#[test]
fn some_kernel_shows_parallel_speedup_on_multicore() {
    if hardware_threads() < 2 {
        eprintln!("skipping speedup check: only one hardware thread available");
        return;
    }
    let threads = hardware_threads().min(4);
    let mut best = 0.0f64;
    for kernel in ["fig9_csr_product", "fig3_cg_colidx", "cg_spmv_rows"] {
        let k = ss_npb::study_kernels()
            .into_iter()
            .find(|k| k.name == kernel)
            .unwrap();
        let outcome = session()
            .run(
                &differential(k.name, k.source, threads, ScheduleChoice::Auto)
                    .scale(400)
                    .seed(2),
            )
            .unwrap();
        assert!(outcome.heaps_match());
        let serial = outcome.serial.as_ref().unwrap();
        for (id, par) in &outcome.parallel.as_ref().unwrap().loops {
            if let Some(ser) = serial.loops.get(id) {
                if matches!(par.mode, ExecMode::Parallel { .. }) && par.seconds > 0.0 {
                    best = best.max(ser.seconds / par.seconds);
                }
            }
        }
    }
    assert!(
        best > 1.0,
        "no dispatched loop ran faster than serial on {threads} threads (best {best:.2}x)"
    );
}

/// Regression: a loop the analysis must *not* parallelize (a histogram — the
/// write index is an arbitrary input, massively non-injective) is never
/// scheduled parallel, and still executes correctly.
#[test]
fn non_parallel_histogram_is_not_scheduled_parallel() {
    let src = "for (i = 0; i < n; i++) { hist[idx[i]] = i; }";
    let artifacts = session().artifacts("hist", src).unwrap();
    assert!(!artifacts.report.loop_report(LoopId(0)).unwrap().parallel);
    assert!(artifacts.report.outermost_parallel_loops().is_empty());

    let outcome = session()
        .run(
            &differential("hist", src, 4, ScheduleChoice::Auto)
                .scale(96)
                .seed(5),
        )
        .unwrap();
    assert!(outcome.dispatched.is_empty(), "histogram must stay serial");
    assert!(outcome.heaps_match());
}

const FIG2_PATTERN: &str = r#"
    for (e = 0; e < nelt; e++) { mt_to_id[e] = nelt - 1 - e; }
    for (miel = 0; miel < nelt; miel++) {
        iel = mt_to_id[miel];
        id_to_mt[iel] = vals[miel];
    }
"#;

const FIG5_PATTERN: &str = r#"
    for (r = 0; r < m; r++) {
        if (matched[r] > 0) {
            jmatch[r] = r;
        } else {
            jmatch[r] = 0 - 1;
        }
    }
    for (i = 0; i < m; i++) {
        if (jmatch[i] >= 0) {
            imatch[jmatch[i]] = i;
        }
    }
"#;

const FIG9_PATTERN: &str = r#"
    index = 0;
    for (i = 0; i < ROWLEN; i++) {
        count = 0;
        for (j = 0; j < COLUMNLEN; j++) {
            if (a[i][j] % 3 != 0) {
                count++;
                value[index] = a[i][j];
                index++;
            }
        }
        rowsize[i] = count;
    }
    rowptr[0] = 0;
    for (i = 1; i < ROWLEN + 1; i++) {
        rowptr[i] = rowptr[i-1] + rowsize[i-1];
    }
    for (i = 0; i < ROWLEN+1; i++) {
        if (i == 0) {
            j1 = i;
        } else {
            j1 = rowptr[i-1];
        }
        for (j = j1; j < rowptr[i]; j++) {
            product_array[j] = value[j] * vector[j];
        }
    }
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Figure 2 pattern (injective map): arbitrary sizes, data seeds, thread
    /// counts and schedules — serial and parallel heaps always agree, and
    /// the scatter loop is always dispatched.
    #[test]
    fn fig2_pattern_equivalence(
        scale in 2i64..300,
        seed in 0u64..1000,
        threads in 2usize..6,
        dynamic in 0u8..2,
    ) {
        let schedule = if dynamic == 1 { ScheduleChoice::Dynamic } else { ScheduleChoice::Static };
        let outcome = session().run(
            &differential("fig2p", FIG2_PATTERN, threads, schedule).scale(scale).seed(seed),
        ).unwrap();
        prop_assert!(outcome.heaps_match(), "{:?}", outcome.mismatches());
        prop_assert!(outcome.dispatched.contains(&LoopId(1)));
    }

    /// Figure 5 pattern (injective subset under a guard): the matched-set
    /// input is random per seed, so the guarded write subset varies.
    #[test]
    fn fig5_pattern_equivalence(
        scale in 2i64..300,
        seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let outcome = session().run(
            &differential("fig5p", FIG5_PATTERN, threads, ScheduleChoice::Auto)
                .scale(scale)
                .seed(seed),
        ).unwrap();
        prop_assert!(outcome.heaps_match(), "{:?}", outcome.mismatches());
        prop_assert!(outcome.dispatched.contains(&LoopId(1)));
    }

    /// Figure 9 pattern (monotonic row pointers from a random matrix): the
    /// nonzero structure — and with it the generated rowptr index array —
    /// varies with every seed.
    #[test]
    fn fig9_pattern_equivalence(
        scale in 2i64..60,
        seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let outcome = session().run(
            &differential("fig9p", FIG9_PATTERN, threads, ScheduleChoice::Auto)
                .scale(scale)
                .seed(seed),
        ).unwrap();
        prop_assert!(outcome.heaps_match(), "{:?}", outcome.mismatches());
        // Loop 3 is the outer product loop (0/1 construction, 2 prefix sum).
        prop_assert!(outcome.dispatched.contains(&LoopId(3)));
    }

    /// Heap-level equivalence on explicitly generated permutations (the
    /// cs_ipvec shape), including the degenerate 1-element case.
    #[test]
    fn explicit_permutation_scatter_equivalence(
        n in 1i64..500,
        rot in 0i64..500,
        threads in 2usize..6,
    ) {
        let src = r#"
            for (k = 0; k < n; k++) { p[k] = (k + rot) % n; }
            for (k = 0; k < n; k++) { x[p[k]] = b[k]; }
        "#;
        let heap = Heap::new()
            .with_scalar("n", n)
            .with_scalar("rot", rot)
            .with_array("p", vec![0; n as usize])
            .with_array("b", (0..n).map(|i| i * 3 + 1).collect())
            .with_array("x", vec![-1; n as usize]);
        let outcome = session().run(
            &differential("ipvec_rot", src, threads, ScheduleChoice::Static)
                .initial_heap(heap),
        ).unwrap();
        prop_assert!(outcome.heaps_match(), "{:?}", outcome.mismatches());
    }
}

/// The inspector baseline three-way comparison: on an opaque permutation the
/// compile-time analysis must stay serial, while the runtime inspector
/// (which sees the data) licenses parallel execution — and on a histogram
/// both refuse.
#[test]
fn inspector_baseline_three_way_comparison() {
    let scatter_src = "for (i = 0; i < n; i++) { x[perm[i]] = i; }";
    let artifacts = session().artifacts("opaque_scatter", scatter_src).unwrap();
    assert!(artifacts.report.outermost_parallel_loops().is_empty());
    let n = 64i64;
    let heap = Heap::new()
        .with_scalar("n", n)
        .with_array("perm", (0..n).rev().collect())
        .with_array("x", vec![0; n as usize]);
    let out = session()
        .run(
            &RunRequest::new("opaque_scatter", scatter_src)
                .initial_heap(heap)
                .threads(4)
                .baseline_inspector(true)
                .mode(ExecutionMode::Parallel),
        )
        .unwrap();
    // The parallel leg ran on the inspector-capable engine, not the default.
    assert_ne!(
        out.parallel_engine.as_deref(),
        Some(out.engine.as_str()),
        "inspector requests redirect the parallel leg"
    );
    assert_eq!(
        out.parallel.as_ref().unwrap().loops[&LoopId(0)].inspector_conflict_free,
        Some(true),
        "inspector sees the permutation is injective"
    );

    let hist_src = "for (i = 0; i < n; i++) { h[k[i]] = i; }";
    let out = session()
        .run(
            &RunRequest::new("hist", hist_src)
                .scale(64)
                .seed(9)
                .threads(4)
                .baseline_inspector(true)
                .mode(ExecutionMode::Parallel),
        )
        .unwrap();
    assert_eq!(
        out.parallel.as_ref().unwrap().loops[&LoopId(0)].inspector_conflict_free,
        Some(false),
        "inspector observes write conflicts on the histogram"
    );
}
