//! Equivalence suite for reduction dispatch: `+`, `*`, `min` and `max`
//! accumulator loops must produce bit-identical heaps across every engine
//! in the registry, serial and parallel (the dispatching engines run them
//! with per-thread partials merged by the combiner), over arbitrary
//! inputs, thread counts and schedules — all driven through the
//! [`Session`] API.  Plus the regressions that keep recognition honest: a
//! histogram's compound array update is *not* a scalar reduction, and an
//! accumulator read outside its update disqualifies the loop.

use proptest::prelude::*;
use ss_interp::{ExecutionMode, Heap, RunRequest, ScheduleChoice, Session, ValidationMode};
use ss_ir::{parse_program, LoopId};
use ss_parallelizer::{parallelize, ReductionOp};
use std::sync::OnceLock;

fn session() -> &'static Session {
    static SESSION: OnceLock<Session> = OnceLock::new();
    SESSION.get_or_init(Session::new)
}

fn differential(name: &str, src: &str, threads: usize, schedule: ScheduleChoice) -> RunRequest {
    RunRequest::new(name, src)
        .threads(threads)
        .schedule(schedule)
        .validation(ValidationMode::Differential)
}

/// `sum += a[k] - 3` starting from a nonzero initial value.
const SUM_KERNEL: &str = r#"
    total = 7;
    for (k = 0; k < n; k++) {
        total += a[k] - 3;
    }
"#;

/// `prod *= 1 + a[k] % 3` starting from a nonzero initial value (the terms
/// stay small-ish but wrap for large n — wrapping products merge exactly).
const PROD_KERNEL: &str = r#"
    prod = 2;
    for (k = 0; k < n; k++) {
        prod *= 1 + a[k] % 3;
    }
"#;

/// Guarded compare-and-assign minimum over an opaque input array.
const MIN_KERNEL: &str = r#"
    for (k = 0; k < n; k++) {
        if (a[k] < best) { best = a[k]; }
    }
"#;

/// The mirror maximum, with the accumulator on the left of the comparison.
const MAX_KERNEL: &str = r#"
    for (k = 0; k < n; k++) {
        if (hi < a[k]) { hi = a[k]; }
    }
"#;

#[test]
fn reduction_kernels_are_recognized_with_the_right_operator() {
    for (src, var, op) in [
        (SUM_KERNEL, "total", ReductionOp::Add),
        (PROD_KERNEL, "prod", ReductionOp::Mul),
        (MIN_KERNEL, "best", ReductionOp::Min),
        (MAX_KERNEL, "hi", ReductionOp::Max),
    ] {
        let p = parse_program("red", src).unwrap();
        let report = parallelize(&p);
        let ids = p.loop_ids();
        let target = *ids.last().unwrap();
        let l = report.loop_report(target).unwrap();
        assert_eq!(l.reductions.len(), 1, "{src}");
        assert_eq!(l.reductions[0].var, var);
        assert_eq!(l.reductions[0].op, op);
        assert!(report.outermost_parallel_loops().contains(&target));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Each reduction kernel validates reference ≡ every serial engine ≡
    /// parallel and is actually dispatched, for arbitrary input scales,
    /// seeds, thread counts and schedules.
    #[test]
    fn reduction_kernels_validate_across_engines(
        scale in 2i64..400,
        seed in 0u64..1000,
        threads in 2usize..6,
        dynamic in 0u8..2,
    ) {
        let schedule = if dynamic == 1 { ScheduleChoice::Dynamic } else { ScheduleChoice::Static };
        for (name, src) in [
            ("sum", SUM_KERNEL),
            ("prod", PROD_KERNEL),
            ("min", MIN_KERNEL),
            ("max", MAX_KERNEL),
        ] {
            let outcome = session().run(
                &differential(name, src, threads, schedule).scale(scale).seed(seed),
            ).unwrap();
            prop_assert!(outcome.heaps_match(), "{name}: {:?}", outcome.mismatches());
            prop_assert!(
                !outcome.dispatched.is_empty(),
                "{name}: reduction loop was not dispatched"
            );
        }
    }

    /// The combiner merge is exact for negative values, wrapping sums,
    /// wrapping products and duplicated minima — explicit heaps, no
    /// synthesis in the way.
    #[test]
    fn explicit_sum_prod_and_min_merges_are_exact(
        n in 2i64..2000,
        bias in -1000i64..1000,
        threads in 2usize..8,
    ) {
        let src = r#"
            total = 0;
            prod = 3;
            for (k = 0; k < n; k++) {
                total += v[k];
                prod *= v[k];
                if (v[k] < lo) { lo = v[k]; }
            }
        "#;
        let artifacts = session().artifacts("exact", src).unwrap();
        prop_assert!(artifacts.report.outermost_parallel_loops().contains(&LoopId(0)));
        prop_assert_eq!(artifacts.report.loop_report(LoopId(0)).unwrap().reductions.len(), 3);
        // Odd values only, so the product never collapses to 0 (or a huge
        // power of two) and keeps wrapping non-trivially as n grows.
        let data: Vec<i64> = (0..n).map(|i| ((i * 131) % 601 - 300 + bias) | 1).collect();
        let heap = Heap::new()
            .with_scalar("n", n)
            .with_scalar("lo", 1 << 40)
            .with_array("v", data);
        let outcome = session().run(
            &differential("exact", src, threads, ScheduleChoice::Static)
                .initial_heap(heap),
        ).unwrap();
        prop_assert!(outcome.heaps_match(), "{:?}", outcome.mismatches());
        prop_assert!(outcome.dispatched.contains(&LoopId(0)));
    }
}

/// Regression: a histogram loop's `hist[a[i]] += 1` is a compound *array*
/// update, not a scalar reduction — the loop stays serial in every engine
/// and still computes the right histogram.
#[test]
fn histogram_compound_update_is_not_a_scalar_reduction() {
    let src = "for (i = 0; i < n; i++) { hist[a[i]] += 1; }";
    let artifacts = session().artifacts("hist", src).unwrap();
    let l = artifacts.report.loop_report(LoopId(0)).unwrap();
    assert!(l.reductions.is_empty(), "must not classify as a reduction");
    assert!(!l.parallel);
    assert!(artifacts.report.outermost_parallel_loops().is_empty());

    let outcome = session()
        .run(
            &differential("hist", src, 4, ScheduleChoice::Auto)
                .scale(64)
                .seed(3),
        )
        .unwrap();
    assert!(outcome.heaps_match(), "{:?}", outcome.mismatches());
    assert!(outcome.dispatched.is_empty(), "histogram must stay serial");
}

/// Regression: reading the accumulator outside its update disqualifies the
/// loop (the intermediate value is observable), and the run is still
/// correct under every engine.
#[test]
fn observable_accumulator_reads_disqualify_reduction() {
    let src = r#"
        total = 0;
        for (k = 0; k < n; k++) {
            total += a[k];
            trace[k] = total;
        }
    "#;
    let artifacts = session().artifacts("prefix", src).unwrap();
    assert!(artifacts
        .report
        .loop_report(LoopId(0))
        .unwrap()
        .reductions
        .is_empty());
    assert!(artifacts.report.outermost_parallel_loops().is_empty());
    let outcome = session()
        .run(
            &differential("prefix", src, 4, ScheduleChoice::Auto)
                .scale(80)
                .seed(5),
        )
        .unwrap();
    assert!(outcome.heaps_match());
    assert!(outcome.dispatched.is_empty());
}

/// Regression: a guarded min over non-negative data with an *uninitialized*
/// accumulator never writes it serially (the guard never fires against the
/// implicit 0), so the scalar must stay absent from the final heap.  A
/// combiner merge-back cannot reproduce that, so the engine declines to
/// dispatch — and the heaps still match bit for bit.
#[test]
fn uninitialized_accumulator_declines_dispatch_and_stays_bit_identical() {
    let src = "for (k = 0; k < n; k++) { if (v[k] < best) { best = v[k]; } }";
    let artifacts = session().artifacts("umin", src).unwrap();
    assert!(artifacts
        .report
        .outermost_parallel_loops()
        .contains(&LoopId(0)));
    // `best` deliberately absent from the heap; every v[k] >= 0.
    let heap = Heap::new()
        .with_scalar("n", 200)
        .with_array("v", (0..200).map(|i| (i * 13) % 101).collect());
    let serial = session()
        .run(
            &RunRequest::new("umin", src)
                .initial_heap(heap.clone())
                .mode(ExecutionMode::Serial),
        )
        .unwrap();
    assert!(
        !serial.heap.scalars.contains_key("best"),
        "serial never writes best"
    );
    let par = session()
        .run(
            &RunRequest::new("umin", src)
                .initial_heap(heap)
                .threads(4)
                .schedule(ScheduleChoice::Static)
                .mode(ExecutionMode::Parallel),
        )
        .unwrap();
    assert_eq!(par.heap, serial.heap);
    assert!(
        par.dispatched.is_empty(),
        "undefined accumulator must not be dispatched"
    );
}

/// The reference engine is valid for reduction programs too: it refuses to
/// dispatch them (no combiner capability) but computes identical heaps.
#[test]
fn reference_engine_runs_reduction_programs_serially_and_identically() {
    let reference = session().registry().reference().unwrap();
    assert!(!reference.caps().reductions);
    let heap = Heap::new()
        .with_scalar("n", 500)
        .with_array("a", (0..500).map(|i| (i * 7) % 97).collect());
    let serial = session()
        .run(
            &RunRequest::new("red", SUM_KERNEL)
                .initial_heap(heap.clone())
                .mode(ExecutionMode::Serial),
        )
        .unwrap();
    let ast_par = session()
        .run(
            &RunRequest::new("red", SUM_KERNEL)
                .engine(reference.name())
                .initial_heap(heap)
                .threads(4)
                .mode(ExecutionMode::Parallel),
        )
        .unwrap();
    assert_eq!(ast_par.heap, serial.heap);
    assert!(ast_par.dispatched.is_empty());
    // The whole suite above ran off one compilation per distinct source.
    let stats = session().cache_stats();
    assert!(
        stats.hits >= stats.misses,
        "repeated runs should be cache hits ({stats:?})"
    );
}
