//! Failure injection: soundness of the analysis under broken filling code
//! and corrupted run-time data.
//!
//! The value of a compile-time parallelizer is measured as much by what it
//! refuses as by what it accepts.  Each test here takes one of the
//! catalogued patterns, perturbs the property-establishing code (or the
//! run-time data) so that the enabling property no longer holds, and checks
//! that the analysis (resp. the runtime machinery) no longer licenses
//! parallel execution.

use ss_inspector::executor::{run_range_partitioned, ExecutionStrategy, Mode};
use ss_inspector::inspect::{inspect_index_array, InspectorConfig};
use ss_ir::LoopId;
use ss_parallelizer::parallelize_source;
use ss_properties::{concrete, ArrayProperty};

fn target_is_parallel(src: &str, target: u32) -> bool {
    let report = parallelize_source("failure_injection", src).expect("source parses");
    report
        .loop_report(LoopId(target))
        .map(|l| l.parallel)
        .unwrap_or(false)
}

/// The intact Figure 9 pattern is accepted; this anchors the negative tests
/// below (they differ from this source by exactly one fault).
#[test]
fn intact_figure9_pattern_is_accepted() {
    let src = r#"
        for (i = 0; i < ROWLEN; i++) {
            count = 0;
            for (j = 0; j < COLUMNLEN; j++) {
                if (a[i][j] != 0) { count++; }
            }
            rowsize[i] = count;
        }
        rowptr[0] = 0;
        for (i = 1; i < ROWLEN + 1; i++) {
            rowptr[i] = rowptr[i-1] + rowsize[i-1];
        }
        for (i = 1; i < ROWLEN + 1; i++) {
            for (j = rowptr[i-1]; j < rowptr[i]; j++) {
                product[j] = value[j] * vector[j];
            }
        }
    "#;
    assert!(target_is_parallel(src, 3));
}

/// Fault: the recurrence increment can be negative (`rowsize[i-1] - 1` is
/// `-1` for empty rows), so `rowptr` is no longer provably monotonic and the
/// product loop must stay serial.
#[test]
fn negative_recurrence_increment_blocks_parallelization() {
    let src = r#"
        for (i = 0; i < ROWLEN; i++) {
            count = 0;
            for (j = 0; j < COLUMNLEN; j++) {
                if (a[i][j] != 0) { count++; }
            }
            rowsize[i] = count;
        }
        rowptr[0] = 0;
        for (i = 1; i < ROWLEN + 1; i++) {
            rowptr[i] = rowptr[i-1] + rowsize[i-1] - 1;
        }
        for (i = 1; i < ROWLEN + 1; i++) {
            for (j = rowptr[i-1]; j < rowptr[i]; j++) {
                product[j] = value[j] * vector[j];
            }
        }
    "#;
    assert!(!target_is_parallel(src, 3));
}

/// Fault: `count` is also decremented in the scanning loop, so its value
/// range is no longer provably non-negative and monotonicity of `rowptr`
/// cannot be established.
#[test]
fn decrementing_counter_blocks_parallelization() {
    let src = r#"
        for (i = 0; i < ROWLEN; i++) {
            count = 0;
            for (j = 0; j < COLUMNLEN; j++) {
                if (a[i][j] != 0) { count++; }
                if (a[i][j] < 0) { count--; }
            }
            rowsize[i] = count;
        }
        rowptr[0] = 0;
        for (i = 1; i < ROWLEN + 1; i++) {
            rowptr[i] = rowptr[i-1] + rowsize[i-1];
        }
        for (i = 1; i < ROWLEN + 1; i++) {
            for (j = rowptr[i-1]; j < rowptr[i]; j++) {
                product[j] = value[j] * vector[j];
            }
        }
    "#;
    assert!(!target_is_parallel(src, 3));
}

/// Fault: `rowsize` is overwritten after the counting loop with data of
/// unknown sign, so the non-negativity that the recurrence needs is lost at
/// the point where `rowptr` is filled.
#[test]
fn clobbering_the_size_array_blocks_parallelization() {
    let src = r#"
        for (i = 0; i < ROWLEN; i++) {
            count = 0;
            for (j = 0; j < COLUMNLEN; j++) {
                if (a[i][j] != 0) { count++; }
            }
            rowsize[i] = count;
        }
        for (i = 0; i < ROWLEN; i++) {
            rowsize[i] = adjustment[i];
        }
        rowptr[0] = 0;
        for (i = 1; i < ROWLEN + 1; i++) {
            rowptr[i] = rowptr[i-1] + rowsize[i-1];
        }
        for (i = 1; i < ROWLEN + 1; i++) {
            for (j = rowptr[i-1]; j < rowptr[i]; j++) {
                product[j] = value[j] * vector[j];
            }
        }
    "#;
    assert!(!target_is_parallel(src, 4));
}

/// Fault (Figure 2 pattern): the index map is filled with a non-injective
/// expression (`e / 2`), so the transfer loop's writes can collide and it
/// must stay serial.
#[test]
fn non_injective_index_map_blocks_the_transfer_loop() {
    let injective = r#"
        for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
        for (miel = 0; miel < nelt; miel++) {
            iel = mt_to_id[miel];
            id_to_mt[iel] = miel;
        }
    "#;
    assert!(target_is_parallel(injective, 1));
    let duplicated = r#"
        for (e = 0; e < nelt; e++) { mt_to_id[e] = e / 2; }
        for (miel = 0; miel < nelt; miel++) {
            iel = mt_to_id[miel];
            id_to_mt[iel] = miel;
        }
    "#;
    assert!(!target_is_parallel(duplicated, 1));
    let constant = r#"
        for (e = 0; e < nelt; e++) { mt_to_id[e] = 7; }
        for (miel = 0; miel < nelt; miel++) {
            iel = mt_to_id[miel];
            id_to_mt[iel] = miel;
        }
    "#;
    assert!(!target_is_parallel(constant, 1));
}

/// Fault (Figure 5 pattern): without the complementary `-1` branch the
/// "non-negative subset is injective" claim is unsound (unmatched rows keep
/// whatever non-negative stale values they held), so the guarded scatter
/// must stay serial.
#[test]
fn missing_negative_branch_blocks_the_guarded_scatter() {
    let sound = r#"
        for (r = 0; r < m; r++) {
            if (matched[r] > 0) {
                jmatch[r] = r;
            } else {
                jmatch[r] = 0 - 1;
            }
        }
        for (i = 0; i < m; i++) {
            if (jmatch[i] >= 0) {
                imatch[jmatch[i]] = i;
            }
        }
    "#;
    assert!(target_is_parallel(sound, 1));
    let unsound = r#"
        for (r = 0; r < m; r++) {
            if (matched[r] > 0) {
                jmatch[r] = r;
            }
        }
        for (i = 0; i < m; i++) {
            if (jmatch[i] >= 0) {
                imatch[jmatch[i]] = i;
            }
        }
    "#;
    assert!(!target_is_parallel(unsound, 1));
}

/// Fault: the index array is modified again *between* the property-creating
/// loop and the consuming loop, through a subscripted subscript the analysis
/// cannot summarize; the consuming loop must then stay serial.
#[test]
fn intervening_unanalyzable_update_blocks_parallelization() {
    let src = r#"
        for (k = 0; k < n; k++) {
            p[k] = k;
        }
        for (t = 0; t < nswaps; t++) {
            p[swap[t]] = other[t];
        }
        for (k = 0; k < n; k++) {
            x[p[k]] = b[k];
        }
    "#;
    assert!(!target_is_parallel(src, 2));
}

/// Run-time counterpart: an inspector looking at corrupted data must refuse
/// what the intact data would have licensed.
#[test]
fn runtime_inspection_refuses_corrupted_index_arrays() {
    // Intact rowptr (monotonic) vs. one with a swapped pair.
    let mut rowptr: Vec<i64> = vec![0, 4, 4, 9, 15, 15, 21];
    let intact = inspect_index_array(&rowptr, &InspectorConfig::serial());
    assert!(intact.properties.has(ArrayProperty::MonotonicInc));
    rowptr.swap(2, 3);
    let corrupted = inspect_index_array(&rowptr, &InspectorConfig::serial());
    assert!(!corrupted.properties.has(ArrayProperty::MonotonicInc));
    assert!(!concrete::is_monotonic_inc(&rowptr));
}

/// Run-time counterpart on the executor: overlapping row ranges force the
/// inspector/executor into its serial fallback, and the result still matches
/// the serial semantics.
#[test]
fn executor_falls_back_to_serial_on_overlapping_ranges() {
    let bounds = vec![0i64, 8, 5, 12]; // ranges of rows 1 and 2 overlap
    let body = |i: usize, j: usize| (i * 100 + j) as f64;
    let mut data = vec![0.0f64; 12];
    let profile = run_range_partitioned(&mut data, &bounds, body, 4, Mode::InspectorExecutor);
    assert_eq!(profile.strategy, ExecutionStrategy::Serial);
    let mut reference = vec![0.0f64; 12];
    run_range_partitioned(&mut reference, &bounds, body, 1, Mode::Serial);
    assert_eq!(data, reference);
}
