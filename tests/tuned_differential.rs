//! The tuner's differential leg: every catalogue kernel, executed under
//! `policy: Tuned`, must stay bit-identical to the reference engine — a
//! tuned policy changes *how* the program runs (engine, schedule, chunk,
//! threads), never *what* it computes.

use ss_interp::{RunPolicy, RunRequest, Session, TunerConfig, ValidationMode};

#[test]
fn tuned_policies_stay_bit_identical_to_reference_over_the_catalogue() {
    let session = Session::new();
    for kernel in ss_npb::study_kernels() {
        // Pre-search with a tight budget so the matrix stays fast; the
        // tuned run below must reapply the persisted winner, not search.
        let request = RunRequest::new(kernel.name, kernel.source)
            .scale(40)
            .threads(2)
            .policy(RunPolicy::Tuned);
        session
            .tune(
                &request,
                &TunerConfig {
                    budget_trials: Some(4),
                    repeats: 1,
                    ..TunerConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: tune failed: {e}", kernel.name));
        let outcome = session
            .run(&request.clone().validation(ValidationMode::Differential))
            .unwrap_or_else(|e| panic!("{}: tuned run failed: {e}", kernel.name));
        assert_eq!(outcome.policy, "tuned", "{}", kernel.name);
        assert_eq!(
            outcome.policy_provenance.as_deref(),
            Some("tuned-cache"),
            "{}: the tuned run must reuse the persisted policy",
            kernel.name
        );
        assert!(
            outcome.heaps_match(),
            "{}: tuned run diverged from reference: {:?}",
            kernel.name,
            outcome.mismatches()
        );
    }
}
