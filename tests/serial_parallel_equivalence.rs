//! Integration test: for every kernel the analysis parallelizes, the
//! parallel execution produces bit-identical (or numerically equivalent)
//! results to the serial execution — the end-to-end correctness argument for
//! the whole system.

use proptest::prelude::*;
use ss_npb::kernels::{fig2, fig3, fig4, fig5, fig6, fig7, fig9, ipvec, is_rank};
use ss_npb::{run_cg_with, CgParams};
use ss_runtime::CsrMatrix;

#[test]
fn cg_serial_and_parallel_agree_and_converge() {
    let params = CgParams {
        na: 800,
        nonzer: 6,
        niter: 2,
        shift: 20.0,
    };
    let serial = run_cg_with(&params, 1, 3);
    assert!(serial.rnorm < 1e-6);
    for threads in [2, 4, 8] {
        let par = run_cg_with(&params, threads, 3);
        assert!(
            (par.zeta - serial.zeta).abs() < 1e-6,
            "zeta diverged at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fig2_equivalence(n in 1usize..4000, seed in 0u64..1000, threads in 2usize..9) {
        let mt_to_id = fig2::generate(n, seed);
        prop_assert_eq!(fig2::parallel(&mt_to_id, threads), fig2::serial(&mt_to_id));
    }

    #[test]
    fn fig5_equivalence(n in 1usize..4000, frac in 0.0f64..1.0, seed in 0u64..1000, threads in 2usize..9) {
        let jmatch = fig5::generate(n, frac, seed);
        prop_assert_eq!(fig5::parallel(&jmatch, n, threads), fig5::serial(&jmatch, n));
    }

    #[test]
    fn fig6_equivalence(nb in 1usize..300, avg in 1usize..20, seed in 0u64..1000, threads in 2usize..9) {
        let (r, p) = fig6::generate(nb, avg, seed);
        prop_assert_eq!(fig6::parallel(&r, &p, threads), fig6::serial(&r, &p));
    }

    #[test]
    fn fig3_equivalence(nrows in 1usize..1500, max_row in 0usize..16, seed in 0u64..1000, threads in 2usize..9) {
        let firstcol = 50;
        let (rowstr, colidx) = fig3::generate(nrows, max_row, 200, firstcol, seed);
        prop_assert_eq!(
            fig3::parallel(&rowstr, &colidx, firstcol, threads),
            fig3::serial(&rowstr, &colidx, firstcol)
        );
    }

    #[test]
    fn fig4_equivalence(nrows in 1usize..1000, max_row in 0usize..12, seed in 0u64..1000, threads in 2usize..9) {
        let input = fig4::generate(nrows, max_row, seed);
        prop_assert_eq!(fig4::parallel(&input, threads), fig4::serial(&input));
    }

    #[test]
    fn fig7_equivalence(num_refine in 1usize..2000, threads in 2usize..9) {
        let front = fig7::generate(num_refine);
        prop_assert_eq!(fig7::parallel(&front, threads), fig7::serial(&front));
    }

    #[test]
    fn is_rank_equivalence(nkeys in 1usize..4000, nbuckets in 1usize..96, kpb in 1usize..96, seed in 0u64..1000, threads in 2usize..9) {
        let buckets = is_rank::generate(nkeys, nbuckets, kpb, seed);
        prop_assert_eq!(is_rank::parallel(&buckets, kpb, threads), is_rank::serial(&buckets, kpb));
    }

    #[test]
    fn ipvec_equivalence(n in 1usize..4000, seed in 0u64..1000, threads in 2usize..9) {
        let (p, b) = ipvec::generate(n, seed);
        prop_assert_eq!(ipvec::parallel(&p, &b, threads), ipvec::serial(&p, &b));
    }

    #[test]
    fn fig9_equivalence(rows in 1usize..120, cols in 1usize..120, density in 0.0f64..0.3, seed in 0u64..1000, threads in 2usize..9) {
        let dense = fig9::generate_dense(rows, cols, density, seed);
        let a = CsrMatrix::from_dense(&dense);
        let vector: Vec<f64> = (0..cols.max(1)).map(|i| i as f64 * 0.5 + 1.0).collect();
        prop_assert_eq!(
            fig9::product_parallel(&a, &vector, threads),
            fig9::product_serial(&a, &vector)
        );
    }
}
