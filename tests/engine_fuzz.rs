//! Generative differential fuzzing of the execution engines — and of the
//! analysis itself.
//!
//! Everything else in this repo tests the engines kernel by kernel; this
//! harness *generates* SS-IR programs — random nested loops, conditionals,
//! subscripted subscripts, compound assignments, reduction shapes (`+` and
//! `*`), loop-local array declarations, `while` loops, deliberately unsafe
//! accesses — compiles each one through the staged pipeline **once** (the
//! shared [`Session`]'s content-addressed cache), and differentially
//! executes it under **every engine in the registry**, serially and in
//! parallel, at every `--opt-level` the engine distinguishes (today: ast,
//! compiled, bytecode-O0, bytecode-O1 — registering a new engine enrolls
//! it in the hunt automatically):
//!
//! * when the reference engine succeeds, every other execution must
//!   succeed with a **bit-identical final heap** (O0 ≡ O1 included — the
//!   optimizer is on trial here too);
//! * when the reference fails, the other serial engines must fail with the
//!   **identical error**, and the parallel engines must fail too (workers
//!   may observe a different failing iteration first, so only the error
//!   *kind-agnostic* fact is asserted for them);
//! * the analysis itself is fuzzed for monotonicity: every loop the
//!   property-free **baseline** proves parallel must also be proven by the
//!   **extended** test (index-array properties only ever add facts —
//!   baseline verdicts ⊆ extended verdicts).
//!
//! Failures shrink: the harness greedily deletes statements (at any
//! nesting depth) while the divergence persists and reports the minimal
//! failing program together with the generator seed, so a red case pastes
//! straight into a regression test.
//!
//! Case count defaults to 256 (the CI floor) and scales with the
//! `ENGINE_FUZZ_CASES` environment variable for long local hunts.

use proptest::prelude::*;
use proptest::TestRng;
use ss_interp::{engine_label, ExecOptions, Heap, Session};
use std::sync::OnceLock;

/// One session for the whole hunt: every generated program compiles once
/// (the matrix and the shrinker re-resolve through the cache), bounded so
/// a 200k-case hunt keeps memory flat.
fn session() -> &'static Session {
    static SESSION: OnceLock<Session> = OnceLock::new();
    SESSION.get_or_init(|| Session::new().with_cache_capacity(256))
}

// ---------------------------------------------------------------------------
// Program model.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Arr {
    name: String,
    dims: Vec<i64>,
}

#[derive(Clone, Debug)]
enum GExpr {
    Const(i64),
    Var(String),
    Read(String, Vec<GExpr>),
    Bin(&'static str, Box<GExpr>, Box<GExpr>),
    Un(&'static str, Box<GExpr>),
}

impl GExpr {
    fn render(&self, out: &mut String) {
        match self {
            GExpr::Const(v) => {
                if *v < 0 {
                    out.push_str(&format!("(0 - {})", -v));
                } else {
                    out.push_str(&v.to_string());
                }
            }
            GExpr::Var(n) => out.push_str(n),
            GExpr::Read(a, idx) => {
                out.push_str(a);
                for e in idx {
                    out.push('[');
                    e.render(out);
                    out.push(']');
                }
            }
            GExpr::Bin(op, a, b) => {
                out.push('(');
                a.render(out);
                out.push_str(&format!(" {op} "));
                b.render(out);
                out.push(')');
            }
            GExpr::Un(op, a) => {
                out.push_str(&format!("{op}("));
                a.render(out);
                out.push(')');
            }
        }
    }
}

#[derive(Clone, Debug)]
enum GStmt {
    /// `name op= expr;`
    Scalar(String, &'static str, GExpr),
    /// `arr[idx…] op= expr;`
    Store(String, Vec<GExpr>, &'static str, GExpr),
    /// `if (cond) { … } else { … }` (else possibly empty).
    If(GExpr, Vec<GStmt>, Vec<GStmt>),
    /// `for (var = 0; var < trip; var++) { [int local[dim];] … }`
    For {
        var: String,
        trip: i64,
        local: Option<(String, i64)>,
        body: Vec<GStmt>,
    },
    /// `var = 0; while (var < trip) { … var = var + 1; }`
    While {
        var: String,
        trip: i64,
        body: Vec<GStmt>,
    },
}

fn render_block(stmts: &[GStmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            GStmt::Scalar(name, op, e) => {
                out.push_str(&format!("{pad}{name} {op} "));
                e.render(out);
                out.push_str(";\n");
            }
            GStmt::Store(arr, idx, op, e) => {
                out.push_str(&format!("{pad}{arr}"));
                for i in idx {
                    out.push('[');
                    i.render(out);
                    out.push(']');
                }
                out.push_str(&format!(" {op} "));
                e.render(out);
                out.push_str(";\n");
            }
            GStmt::If(c, t, f) => {
                out.push_str(&format!("{pad}if ("));
                c.render(out);
                out.push_str(") {\n");
                render_block(t, indent + 1, out);
                if f.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    render_block(f, indent + 1, out);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            GStmt::For {
                var,
                trip,
                local,
                body,
            } => {
                out.push_str(&format!(
                    "{pad}for ({var} = 0; {var} < {trip}; {var}++) {{\n"
                ));
                if let Some((name, dim)) = local {
                    out.push_str(&format!("{pad}    int {name}[{dim}];\n"));
                }
                render_block(body, indent + 1, out);
                out.push_str(&format!("{pad}}}\n"));
            }
            GStmt::While { var, trip, body } => {
                out.push_str(&format!("{pad}{var} = 0;\n"));
                out.push_str(&format!("{pad}while ({var} < {trip}) {{\n"));
                render_block(body, indent + 1, out);
                out.push_str(&format!("{pad}    {var} = {var} + 1;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Generation.
// ---------------------------------------------------------------------------

const SCALARS: [&str; 5] = ["x", "y", "z", "s", "t"];
/// Read-only scalars nobody initializes: undefined-value reads must agree
/// across engines too.
const UNDEFINED: [&str; 2] = ["u0", "u1"];

struct Gen {
    rng: TestRng,
    arrays: Vec<Arr>,
    loop_vars: Vec<String>,
    next_loop_var: usize,
    next_local: usize,
    stmt_budget: usize,
}

impl Gen {
    fn chance(&mut self, percent: usize) -> bool {
        self.rng.below(100) < percent
    }

    fn small_const(&mut self) -> i64 {
        self.rng.below(9) as i64 - 2
    }

    /// An expression guaranteed non-negative given non-negative scope vars
    /// (loop counters, the prelude-filled `idx` contents): safe to reduce
    /// `% dim` into a valid subscript.
    fn nonneg_atom(&mut self) -> GExpr {
        if !self.loop_vars.is_empty() && self.chance(70) {
            let v = self.loop_vars[self.rng.below(self.loop_vars.len())].clone();
            if self.chance(40) {
                GExpr::Bin(
                    "+",
                    Box::new(GExpr::Var(v)),
                    Box::new(GExpr::Const(self.rng.below(4) as i64)),
                )
            } else {
                GExpr::Var(v)
            }
        } else {
            GExpr::Const(self.rng.below(8) as i64)
        }
    }

    /// A subscript expression for extent `dim`: mostly in-bounds shapes
    /// (`v % dim`, `idx[v % 16] % dim` — the subscripted-subscript
    /// pattern), occasionally an arbitrary value expression so
    /// out-of-bounds error agreement is exercised too.
    fn index_expr(&mut self, dim: i64, depth: usize) -> GExpr {
        if self.chance(8) {
            return self.value_expr(depth.min(1));
        }
        let base = if self.chance(35) {
            let inner = self.nonneg_atom();
            GExpr::Read(
                "idx".into(),
                vec![GExpr::Bin("%", Box::new(inner), Box::new(GExpr::Const(16)))],
            )
        } else {
            self.nonneg_atom()
        };
        GExpr::Bin("%", Box::new(base), Box::new(GExpr::Const(dim)))
    }

    fn array_read(&mut self, depth: usize) -> GExpr {
        let arr = self.arrays[self.rng.below(self.arrays.len())].clone();
        let idx = arr
            .dims
            .iter()
            .map(|&d| self.index_expr(d, depth))
            .collect();
        GExpr::Read(arr.name, idx)
    }

    fn value_expr(&mut self, depth: usize) -> GExpr {
        if depth == 0 || self.chance(30) {
            return match self.rng.below(10) {
                0..=3 => GExpr::Const(self.small_const()),
                4..=6 => {
                    let v = if !self.loop_vars.is_empty() && self.chance(50) {
                        self.loop_vars[self.rng.below(self.loop_vars.len())].clone()
                    } else if self.chance(12) {
                        UNDEFINED[self.rng.below(UNDEFINED.len())].to_string()
                    } else {
                        SCALARS[self.rng.below(SCALARS.len())].to_string()
                    };
                    GExpr::Var(v)
                }
                _ => self.array_read(0),
            };
        }
        match self.rng.below(12) {
            0..=6 => {
                let ops = ["+", "-", "*", "<", "<=", "==", "!=", "&&", "||"];
                let op = ops[self.rng.below(ops.len())];
                GExpr::Bin(
                    op,
                    Box::new(self.value_expr(depth - 1)),
                    Box::new(self.value_expr(depth - 1)),
                )
            }
            7 | 8 => {
                // Division and remainder: usually by a non-zero constant,
                // sometimes by an arbitrary expression (division-by-zero
                // agreement).
                let op = if self.chance(50) { "/" } else { "%" };
                let rhs = if self.chance(80) {
                    GExpr::Const([1, 2, 3, 5, 7][self.rng.below(5)])
                } else {
                    self.value_expr(depth - 1)
                };
                GExpr::Bin(op, Box::new(self.value_expr(depth - 1)), Box::new(rhs))
            }
            9 => GExpr::Un(
                if self.chance(50) { "-" } else { "!" },
                Box::new(self.value_expr(depth - 1)),
            ),
            _ => self.array_read(depth - 1),
        }
    }

    fn assign_op(&mut self) -> &'static str {
        match self.rng.below(10) {
            0..=5 => "=",
            6 | 7 => "+=",
            8 => "-=",
            _ => "*=",
        }
    }

    fn stmt(&mut self, nest: usize) -> GStmt {
        if self.stmt_budget > 0 {
            self.stmt_budget -= 1;
        }
        let roll = self.rng.below(100);
        match roll {
            // Scalar assignment (rarely to a live loop counter, which
            // exercises runaway-loop caps and step semantics).
            0..=24 => {
                let name = if !self.loop_vars.is_empty() && self.chance(4) {
                    self.loop_vars[self.rng.below(self.loop_vars.len())].clone()
                } else if self.chance(8) {
                    // Occasionally target a never-initialized scalar: the
                    // defined-flag/heap-write-back semantics (is the name
                    // present in the final heap at all?) must agree across
                    // engines, including self-assignment shapes like
                    // `u0 = u0;`.
                    UNDEFINED[self.rng.below(UNDEFINED.len())].to_string()
                } else {
                    SCALARS[self.rng.below(SCALARS.len())].to_string()
                };
                let e = if self.chance(6) {
                    GExpr::Var(name.clone())
                } else {
                    self.value_expr(2)
                };
                GStmt::Scalar(name, self.assign_op(), e)
            }
            // Array store.
            25..=54 => {
                let arr = self.arrays[self.rng.below(self.arrays.len())].clone();
                let idx = arr.dims.iter().map(|&d| self.index_expr(d, 1)).collect();
                let e = self.value_expr(2);
                GStmt::Store(arr.name, idx, self.assign_op(), e)
            }
            // Conditional.
            55..=69 => {
                let c = self.value_expr(2);
                let t = self.block(nest + 1);
                let f = if self.chance(40) {
                    self.block(nest + 1)
                } else {
                    Vec::new()
                };
                GStmt::If(c, t, f)
            }
            // Counted loop, possibly with a loop-local array.
            70..=92 if nest < 3 => {
                let var = format!("i{}", self.next_loop_var);
                self.next_loop_var += 1;
                // Include the 0- and 1-trip edge cases.
                let trip = match self.rng.below(10) {
                    0 => 0,
                    1 => 1,
                    n => 2 + (n as i64 * 3) % 15,
                };
                let local = if nest == 0 && self.chance(30) {
                    let name = format!("g{}", self.next_local);
                    self.next_local += 1;
                    let dim = 2 + self.rng.below(5) as i64;
                    Some((name, dim))
                } else {
                    None
                };
                self.loop_vars.push(var.clone());
                if let Some((name, dim)) = &local {
                    self.arrays.push(Arr {
                        name: name.clone(),
                        dims: vec![*dim],
                    });
                }
                let mut body = self.block(nest + 1);
                // Reduction shapes, sometimes: s += term, and (rarer) the
                // product accumulator t *= term — when nothing else in the
                // body touches t the loop dispatches as a `*` reduction.
                if self.chance(35) {
                    let term = self.value_expr(1);
                    body.push(GStmt::Scalar("s".into(), "+=", term));
                }
                if self.chance(20) {
                    let term = self.value_expr(1);
                    body.push(GStmt::Scalar("t".into(), "*=", term));
                }
                if local.is_some() {
                    self.arrays.pop();
                }
                self.loop_vars.pop();
                GStmt::For {
                    var,
                    trip,
                    local,
                    body,
                }
            }
            // While loop (bounded by construction; the body may still stall
            // the counter by rewriting it, which the iteration cap catches).
            _ if nest < 3 => {
                let var = format!("w{}", self.next_loop_var);
                self.next_loop_var += 1;
                let trip = 1 + self.rng.below(5) as i64;
                self.loop_vars.push(var.clone());
                let body = self.block(nest + 1);
                self.loop_vars.pop();
                GStmt::While { var, trip, body }
            }
            _ => {
                let e = self.value_expr(1);
                GStmt::Scalar(SCALARS[self.rng.below(SCALARS.len())].to_string(), "=", e)
            }
        }
    }

    fn block(&mut self, nest: usize) -> Vec<GStmt> {
        let want = 1 + self.rng.below(3);
        let mut out = Vec::new();
        for _ in 0..want {
            if self.stmt_budget == 0 {
                break;
            }
            out.push(self.stmt(nest));
        }
        out
    }
}

#[derive(Clone, Debug)]
struct GProgram {
    seed: u64,
    threads: usize,
    body: Vec<GStmt>,
}

impl GProgram {
    fn generate(seed: u64) -> GProgram {
        let mut g = Gen {
            rng: TestRng::from_seed(seed),
            arrays: vec![
                Arr {
                    name: "a".into(),
                    dims: vec![16],
                },
                Arr {
                    name: "b".into(),
                    dims: vec![16],
                },
                Arr {
                    name: "idx".into(),
                    dims: vec![16],
                },
                Arr {
                    name: "out".into(),
                    dims: vec![32],
                },
                Arr {
                    name: "m".into(),
                    dims: vec![4, 8],
                },
            ],
            loop_vars: Vec::new(),
            next_loop_var: 0,
            next_local: 0,
            stmt_budget: 22,
        };
        let threads = 2 + g.rng.below(3);
        let mut body = Vec::new();
        while g.stmt_budget > 0 {
            body.push(g.stmt(0));
        }
        GProgram {
            seed,
            threads,
            body,
        }
    }

    /// The prelude declares and fills every array (so programs are
    /// self-contained: the initial heap is empty) and initializes the named
    /// scalars; `u0`/`u1` stay deliberately undefined.
    fn source(&self) -> String {
        let mut out = String::new();
        let c1 = 1 + (self.seed % 7) as i64;
        let c2 = (self.seed / 7 % 5) as i64;
        out.push_str("int a[16]; int b[16]; int idx[16]; int out[32]; int m[4][8];\n");
        out.push_str(&format!(
            "for (p0 = 0; p0 < 16; p0++) {{\n    a[p0] = p0 * {c1} - 7;\n    b[p0] = p0 + {c2};\n    idx[p0] = (p0 * {c1} + {c2}) % 16;\n}}\n"
        ));
        out.push_str(
            "for (p1 = 0; p1 < 4; p1++) {\n    for (p2 = 0; p2 < 8; p2++) {\n        m[p1][p2] = p1 * 8 + p2;\n    }\n}\n",
        );
        out.push_str("x = 1; y = 2; z = 3; s = 4; t = 5;\n");
        render_block(&self.body, 0, &mut out);
        out
    }

    /// Runs the full differential matrix; `Some(description)` on the first
    /// divergence.
    fn check(&self) -> Option<String> {
        check_source(&self.source(), self.threads)
    }
}

fn opts(threads: usize, opt_level: ss_interp::OptLevel) -> ExecOptions {
    ExecOptions {
        threads,
        opt_level,
        // Small cap so generated runaway loops fail fast — and all engines
        // must agree on the NonTerminating verdict.
        while_cap: 5_000,
        ..ExecOptions::default()
    }
}

/// The differential matrix for one source program, off **one** pipeline
/// invocation (the session cache): every registry engine at every opt
/// level it distinguishes must agree with the reference serially (heap or
/// error), every parallel execution must reproduce the serial heap
/// whenever the serial run succeeds — and the analysis verdicts must be
/// monotone (baseline ⊆ extended).
fn check_source(src: &str, threads: usize) -> Option<String> {
    let registry = session().registry();
    let artifacts = match session().artifacts("fuzz", src) {
        Ok(a) => a,
        Err(e) => return Some(format!("generated program failed to parse: {e}")),
    };
    // Fuzz the analysis itself: index-array properties only ever *add*
    // facts, so a loop the property-free baseline proves parallel must
    // stay parallel under the extended test.
    for l in &artifacts.report.loops {
        if l.baseline_parallel && !l.parallel {
            return Some(format!(
                "analysis monotonicity violated: loop {} is baseline-parallel \
                 but extended-serial (blockers: {:?})",
                l.loop_id.0, l.blockers
            ));
        }
    }
    let reference_engine = registry.reference().expect("a reference engine");
    let ref_level = reference_engine.caps().opt_levels[0];
    let reference = reference_engine.run_serial(&artifacts, Heap::new(), &opts(1, ref_level));
    let ref_name = reference_engine.name();

    for engine in registry.iter() {
        for &level in engine.caps().opt_levels {
            if engine.name() == ref_name {
                continue;
            }
            let label = engine_label(engine.as_ref(), level);
            let got = engine.run_serial(&artifacts, Heap::new(), &opts(1, level));
            match (&reference, &got) {
                (Ok(r), Ok(g)) => {
                    let diffs = r.heap.diff(&g.heap);
                    if !diffs.is_empty() {
                        return Some(format!(
                            "serial {label} heap diverges from serial {ref_name}:\n  {}",
                            diffs.join("\n  ")
                        ));
                    }
                }
                (Err(re), Err(ge)) => {
                    if re != ge {
                        return Some(format!(
                            "serial {label} error {ge:?} != serial {ref_name} error {re:?}"
                        ));
                    }
                }
                (Ok(_), Err(ge)) => {
                    return Some(format!(
                        "serial {label} failed ({ge:?}) where serial {ref_name} succeeded"
                    ));
                }
                (Err(re), Ok(_)) => {
                    return Some(format!(
                        "serial {label} succeeded where serial {ref_name} failed ({re:?})"
                    ));
                }
            }
        }
    }

    for engine in registry.iter() {
        for &level in engine.caps().opt_levels {
            let label = engine_label(engine.as_ref(), level);
            let got = engine.run_parallel(&artifacts, Heap::new(), &opts(threads, level));
            match (&reference, &got) {
                (Ok(r), Ok(g)) => {
                    let diffs = r.heap.diff(&g.heap);
                    if !diffs.is_empty() {
                        return Some(format!(
                            "parallel {label} (threads={threads}) heap diverges from serial:\n  {}",
                            diffs.join("\n  ")
                        ));
                    }
                }
                // Workers may hit a different failing iteration first, so
                // only the failure itself must agree for parallel runs.
                (Err(_), Err(_)) => {}
                (Ok(_), Err(ge)) => {
                    return Some(format!(
                        "parallel {label} failed ({ge:?}) where serial succeeded"
                    ));
                }
                (Err(re), Ok(_)) => {
                    return Some(format!(
                        "parallel {label} succeeded where serial failed ({re:?})"
                    ));
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Shrinking.
// ---------------------------------------------------------------------------

/// Every statement position in the tree, as a path of child indices.
fn collect_paths(stmts: &[GStmt], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    for (k, s) in stmts.iter().enumerate() {
        prefix.push(k);
        out.push(prefix.clone());
        match s {
            GStmt::If(_, t, f) => {
                prefix.push(0);
                collect_paths(t, prefix, out);
                prefix.pop();
                prefix.push(1);
                collect_paths(f, prefix, out);
                prefix.pop();
            }
            GStmt::For { body, .. } | GStmt::While { body, .. } => {
                prefix.push(0);
                collect_paths(body, prefix, out);
                prefix.pop();
            }
            _ => {}
        }
        prefix.pop();
    }
}

/// Removes the statement at `path` (paths alternate statement index and
/// branch selector, mirroring `collect_paths`).
fn remove_at(stmts: &[GStmt], path: &[usize]) -> Vec<GStmt> {
    let mut out = stmts.to_vec();
    if path.len() == 1 {
        out.remove(path[0]);
        return out;
    }
    let (k, rest) = (path[0], &path[1..]);
    match &mut out[k] {
        GStmt::If(_, t, f) => {
            let (branch, rest) = (rest[0], &rest[1..]);
            if branch == 0 {
                *t = remove_at(t, rest);
            } else {
                *f = remove_at(f, rest);
            }
        }
        GStmt::For { body, .. } | GStmt::While { body, .. } => {
            *body = remove_at(body, &rest[1..]);
        }
        _ => unreachable!("path descends into a leaf"),
    }
    out
}

/// Greedy statement deletion: keeps removing any single statement (at any
/// depth) while the divergence persists.  With no upstream shrinking in
/// the vendored proptest, this is the harness's own minimizer.
fn shrink(program: &GProgram) -> GProgram {
    let mut current = program.clone();
    loop {
        let mut paths = Vec::new();
        collect_paths(&current.body, &mut Vec::new(), &mut paths);
        // Longest paths first: empty nested bodies before their parents.
        paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
        let mut reduced = false;
        for path in paths {
            let candidate = GProgram {
                body: remove_at(&current.body, &path),
                ..current.clone()
            };
            if candidate.check().is_some() {
                current = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return current;
        }
    }
}

// ---------------------------------------------------------------------------
// The property.
// ---------------------------------------------------------------------------

fn fuzz_cases() -> u32 {
    std::env::var("ENGINE_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn all_engines_agree_on_generated_programs(seed in 0u64..u64::MAX) {
        let program = GProgram::generate(seed);
        if let Some(msg) = program.check() {
            let minimal = shrink(&program);
            let why = minimal.check().unwrap_or_else(|| msg.clone());
            prop_assert!(
                false,
                "cross-engine divergence (seed {seed}, threads {}):\n{why}\n\
                 minimal failing program:\n{}",
                minimal.threads,
                minimal.source()
            );
        }
    }
}

/// Regression seeds: shapes the generator has produced that exercise the
/// trickiest agreed-upon semantics (undefined scalars feeding stores,
/// loop-local shadowing, runaway-loop caps).  Kept as plain sources so a
/// generator change cannot silently retire them.
#[test]
fn regression_shapes_stay_in_agreement() {
    let cases = [
        // Undefined scalar read flows into a store and a reduction.
        "int out[8];\nfor (i0 = 0; i0 < 8; i0++) { out[i0] = u0 + i0; s += u1; }\n",
        // Loop-local array shadows a global; last-iteration state survives.
        "int g[4];\ng[1] = 9;\nint out[6];\nfor (i0 = 0; i0 < 6; i0++) {\n    int g[3];\n    g[i0 % 3] = i0;\n    out[i0] = g[i0 % 3];\n}\n",
        // Loop counter rewritten inside the body: the cap must fire
        // identically everywhere.
        "for (i0 = 0; i0 < 4; i0++) { i0 = 0; x += 1; }\n",
        // Zero-trip and one-trip loops around a while.
        "w0 = 0;\nwhile (w0 < 3) {\n    for (i0 = 0; i0 < 0; i0++) { x = 99; }\n    w0 = w0 + 1;\n}\n",
        // Division by a value that becomes zero mid-loop.
        "y = 2;\nfor (i0 = 0; i0 < 5; i0++) { y = y - 1; x = 10 / y; }\n",
        // Self-assignment of a heap-absent scalar: every engine must
        // materialize `q` (as 0) in the final heap — the bytecode compiler
        // once elided the no-op copy and dropped the definition.
        "if (x < 0) { q = 1; }\nq = q;\n",
        // Product reduction: dispatched with identity-1 partials merged by
        // wrapping multiplication; must match the serial product exactly
        // (including the wrap for larger n).
        "int a[16];\nfor (p = 0; p < 16; p++) { a[p] = p - 7; }\nprod = 3;\nfor (i0 = 0; i0 < 16; i0++) { prod *= a[i0] * 2 + 1; }\n",
        // The O1 superinstruction shapes in one program: a fused
        // subscripted-subscript load, a compare-and-branch, rank-2 accesses
        // (copy-elided), a constant fold and a division kept unfolded
        // because it traps — O0 and O1 must agree bit for bit, errors
        // included.
        "int a[16]; int b[16]; int m[4][8];\nfor (p = 0; p < 16; p++) { a[p] = p; b[p] = 15 - p; }\nfor (i0 = 0; i0 < 4; i0++) {\n    for (i1 = 0; i1 < 8; i1++) {\n        m[i0][i1] = a[b[i0 + i1]] + (2 + 3);\n        if (m[i0][i1] != 0) { x += m[i0][i1] / (i1 - 3); }\n    }\n}\n",
        // SpTRSV shape: x[i0] rewritten from earlier x entries through an
        // index array — serial-proven, but the wavefront engine inspects
        // it at run time and must still match the reference bit for bit.
        "int idx[12]; int x[6];\nfor (p = 0; p < 12; p++) { idx[p] = (p * 5) % 6; }\nfor (p = 0; p < 6; p++) { x[p] = p + 1; }\nfor (i0 = 1; i0 < 6; i0++) {\n    acc = x[i0];\n    for (k = 0; k < i0; k++) {\n        if (idx[k] < i0) { acc = acc - x[idx[k]]; }\n    }\n    x[i0] = acc;\n}\n",
    ];
    for (k, src) in cases.iter().enumerate() {
        if let Some(msg) = check_source(src, 3) {
            panic!("regression case {k} diverged:\n{msg}\nsource:\n{src}");
        }
    }
}
