//! Golden disassembly snapshots for the bytecode compiler — and for the
//! `--opt-level 1` optimizer.
//!
//! Instruction selection is easy to regress silently — an extra copy per
//! subscript, a constant that stops pooling, a branch target off by one, a
//! fusion that stops firing — and such regressions rarely change
//! *results*, only speed and shape.  These tests pin the full
//! register-machine listing of two catalogue kernels (the Figure 6
//! block-counting fill and the Figure 9 CSR product) at **both** opt
//! levels (`<kernel>.bytecode.txt` for O0, `<kernel>.O1.bytecode.txt` for
//! the optimized stream), so any change to either emitted stream shows up
//! as a readable line diff in review.
//!
//! To bless an intentional change:
//! `UPDATE_GOLDEN=1 cargo test --test bytecode_disasm`.

use ss_ir::opt::{optimize, OptLevel};
use ss_ir::parse_program;
use ss_parallelizer::Artifacts;
use std::path::Path;

fn kernel_artifacts(name: &str) -> Artifacts {
    let kernel = ss_npb::study_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("no catalogue kernel named {name}"));
    let program = parse_program(kernel.name, kernel.source).expect("catalogue kernel parses");
    Artifacts::compile(&program)
}

fn disassemble_kernel(name: &str, level: OptLevel) -> String {
    kernel_artifacts(name).bytecode_at(level).disassemble()
}

fn check_golden(kernel: &str, level: OptLevel) {
    let got = disassemble_kernel(kernel, level);
    let suffix = match level {
        OptLevel::O0 => "bytecode.txt",
        OptLevel::O1 => "O1.bytecode.txt",
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{kernel}.{suffix}"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    if got != want {
        // Pad the shorter side so pure appends/truncations still diff.
        let (w_lines, g_lines): (Vec<&str>, Vec<&str>) =
            (want.lines().collect(), got.lines().collect());
        let diff: Vec<String> = (0..w_lines.len().max(g_lines.len()))
            .filter_map(|k| {
                let w = w_lines.get(k).copied().unwrap_or("<absent>");
                let g = g_lines.get(k).copied().unwrap_or("<absent>");
                (w != g).then(|| format!("line {:>4}:\n  -{w}\n  +{g}", k + 1))
            })
            .take(12)
            .collect();
        panic!(
            "bytecode disassembly of {kernel} changed ({} vs {} lines).\n\
             First differing lines:\n{}\n\
             If the new instruction selection is intentional, bless it with\n\
             UPDATE_GOLDEN=1 cargo test --test bytecode_disasm\n",
            want.lines().count(),
            got.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn fig6_block_fill_disassembly_is_stable() {
    check_golden("fig6_csparse_blocks", OptLevel::O0);
    check_golden("fig6_csparse_blocks", OptLevel::O1);
}

#[test]
fn fig9_csr_product_disassembly_is_stable() {
    check_golden("fig9_csr_product", OptLevel::O0);
    check_golden("fig9_csr_product", OptLevel::O1);
}

#[test]
fn disassembly_reflects_dispatch_facts() {
    // The listing carries the dispatch-relevant loop facts, so a fact
    // regression is visible in the same diff channel — at both levels (the
    // optimizer must carry the facts through unchanged).
    for level in [OptLevel::O0, OptLevel::O1] {
        let d = disassemble_kernel("fig9_csr_product", level);
        assert!(
            d.contains("[skewed]"),
            "CSR traversal loop lost its skew fact at {level}:\n{d}"
        );
        let d = disassemble_kernel("ua_refine_scratch", level);
        assert!(
            d.contains("[locals dominated]") && d.contains("[locals:"),
            "scratch kernel lost its loop-local array facts at {level}:\n{d}"
        );
    }
}

#[test]
fn optimized_stream_carries_the_fused_superinstructions() {
    // The O1 listing of the fig9 fill loop must show the fused shapes the
    // optimizer exists for; the O0 listing must show none of them.
    let o1 = disassemble_kernel("fig9_csr_product", OptLevel::O1);
    assert!(o1.contains("load2"), "rank-2 copy elision regressed:\n{o1}");
    assert!(
        o1.contains("cmpbr"),
        "compare-and-branch fusion regressed:\n{o1}"
    );
    let o0 = disassemble_kernel("fig9_csr_product", OptLevel::O0);
    for fused in ["load2", "store2", "cmpbr", "ldld"] {
        assert!(
            !o0.contains(fused),
            "O0 stream must stay unoptimized:\n{o0}"
        );
    }
    // The optimizer is idempotent on its own output.
    let art = kernel_artifacts("fig9_csr_product");
    let again = optimize(&art.optimized, OptLevel::O1);
    assert_eq!(again.main, art.optimized.main);
    assert_eq!(again.consts, art.optimized.consts);
}
