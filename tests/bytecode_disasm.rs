//! Golden disassembly snapshots for the bytecode compiler.
//!
//! Instruction selection is easy to regress silently — an extra copy per
//! subscript, a constant that stops pooling, a branch target off by one —
//! and such regressions rarely change *results*, only speed and shape.
//! These tests pin the full register-machine listing of two catalogue
//! kernels (the Figure 6 block-counting fill and the Figure 9 CSR
//! product), so any change to the emitted stream shows up as a readable
//! line diff in review.
//!
//! To bless an intentional change:
//! `UPDATE_GOLDEN=1 cargo test --test bytecode_disasm`.

use ss_ir::bytecode::compile_bytecode;
use ss_ir::parse_program;
use ss_ir::slots::compile_program;
use std::path::Path;

fn disassemble_kernel(name: &str) -> String {
    let kernel = ss_npb::study_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("no catalogue kernel named {name}"));
    let program = parse_program(kernel.name, kernel.source).expect("catalogue kernel parses");
    compile_bytecode(&compile_program(&program)).disassemble()
}

fn check_golden(kernel: &str) {
    let got = disassemble_kernel(kernel);
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{kernel}.bytecode.txt"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    if got != want {
        // Pad the shorter side so pure appends/truncations still diff.
        let (w_lines, g_lines): (Vec<&str>, Vec<&str>) =
            (want.lines().collect(), got.lines().collect());
        let diff: Vec<String> = (0..w_lines.len().max(g_lines.len()))
            .filter_map(|k| {
                let w = w_lines.get(k).copied().unwrap_or("<absent>");
                let g = g_lines.get(k).copied().unwrap_or("<absent>");
                (w != g).then(|| format!("line {:>4}:\n  -{w}\n  +{g}", k + 1))
            })
            .take(12)
            .collect();
        panic!(
            "bytecode disassembly of {kernel} changed ({} vs {} lines).\n\
             First differing lines:\n{}\n\
             If the new instruction selection is intentional, bless it with\n\
             UPDATE_GOLDEN=1 cargo test --test bytecode_disasm\n",
            want.lines().count(),
            got.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn fig6_block_fill_disassembly_is_stable() {
    check_golden("fig6_csparse_blocks");
}

#[test]
fn fig9_csr_product_disassembly_is_stable() {
    check_golden("fig9_csr_product");
}

#[test]
fn disassembly_reflects_dispatch_facts() {
    // The listing carries the dispatch-relevant loop facts, so a fact
    // regression is visible in the same diff channel.
    let d = disassemble_kernel("fig9_csr_product");
    assert!(
        d.contains("[skewed]"),
        "CSR traversal loop lost its skew fact:\n{d}"
    );
    let d = disassemble_kernel("ua_refine_scratch");
    assert!(
        d.contains("[locals dominated]") && d.contains("[locals:"),
        "scratch kernel lost its loop-local array facts:\n{d}"
    );
}
