//! Golden level-set schedules for the wavefront execution tier.
//!
//! The schedule — which iterations share a wavefront, and in what order
//! the wavefronts run — is the wavefront engine's whole contract: a
//! regression that merges two dependent iterations into one level is a
//! data race, and one that splits an independent level in two is a silent
//! performance loss.  These tests pin the rendered schedules of the two
//! carried catalogue kernels (sparse triangular solve and Gauss-Seidel
//! sweep) on a fixed synthesized input, so any change to the inspection
//! or the level-set construction shows up as a readable line diff.
//!
//! To bless an intentional change:
//! `UPDATE_GOLDEN=1 cargo test --test levelset_golden`.

use ss_interp::engine::wavefront::wavefront_schedule_dump;
use ss_interp::{synthesize_inputs, ExecOptions, InputSpec};
use ss_ir::parse_program;
use ss_parallelizer::Artifacts;
use std::path::Path;

fn schedule_dump(name: &str) -> String {
    let kernel = ss_npb::study_kernels()
        .into_iter()
        .find(|k| k.name == name)
        .unwrap_or_else(|| panic!("no catalogue kernel named {name}"));
    let program = parse_program(kernel.name, kernel.source).expect("catalogue kernel parses");
    let artifacts = Artifacts::compile(&program);
    let heap =
        synthesize_inputs(&program, &InputSpec { scale: 40, seed: 7 }).expect("inputs synthesize");
    let opts = ExecOptions {
        threads: 4,
        ..ExecOptions::default()
    };
    wavefront_schedule_dump(&artifacts, heap, &opts).expect("wavefront run succeeds")
}

fn check_golden(kernel: &str) {
    let got = schedule_dump(kernel);
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{kernel}.levels.txt"));
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    if got != want {
        let (w_lines, g_lines): (Vec<&str>, Vec<&str>) =
            (want.lines().collect(), got.lines().collect());
        let diff: Vec<String> = (0..w_lines.len().max(g_lines.len()))
            .filter_map(|k| {
                let w = w_lines.get(k).copied().unwrap_or("<absent>");
                let g = g_lines.get(k).copied().unwrap_or("<absent>");
                (w != g).then(|| format!("  line {}:\n    want: {w}\n    got:  {g}", k + 1))
            })
            .collect();
        panic!(
            "level-set schedule for {kernel} diverges from {}:\n{}",
            path.display(),
            diff.join("\n")
        );
    }
}

#[test]
fn sptrsv_levels_schedule_is_stable() {
    check_golden("sptrsv_levels");
}

#[test]
fn gauss_seidel_sweep_schedule_is_stable() {
    check_golden("gauss_seidel_sweep");
}

#[test]
fn schedules_cover_every_iteration_exactly_once() {
    // Structural invariants on top of the golden text: each dump is a
    // permutation of the iteration space, level by level.
    for kernel in ["sptrsv_levels", "gauss_seidel_sweep"] {
        let dump = schedule_dump(kernel);
        for block in dump.split("L").skip(1) {
            let Some(header) = block.lines().find(|l| l.starts_with("iterations")) else {
                continue;
            };
            let n: usize = header
                .split_whitespace()
                .nth(1)
                .and_then(|w| w.parse().ok())
                .expect("iteration count in header");
            let mut seen: Vec<usize> = block
                .lines()
                .filter(|l| l.starts_with("level "))
                .flat_map(|l| {
                    l.split(": ")
                        .nth(1)
                        .unwrap_or("")
                        .split_whitespace()
                        .map(|w| w.parse::<usize>().expect("iteration ordinal"))
                })
                .collect();
            seen.sort_unstable();
            assert_eq!(
                seen,
                (0..n).collect::<Vec<_>>(),
                "{kernel}: levels must partition the iteration space"
            );
        }
    }
}
