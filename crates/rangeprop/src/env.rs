//! The abstract environment of the symbolic range propagation pass.
//!
//! Maps every integer scalar to a symbolic **may**-range and carries the
//! relational assumptions (loop-index ranges, facts established by guards)
//! under which expressions are compared.

use ss_symbolic::{Assumptions, Expr, SymRange};
use std::collections::HashMap;

/// The abstract state at a program point.
#[derive(Debug, Clone, Default)]
pub struct Env {
    /// Value ranges of integer scalars. Scalars not present are *symbolic
    /// inputs*: reading them yields the exact symbolic value `Sym(name)`.
    scalars: HashMap<String, SymRange>,
    /// Element-value ranges known for whole arrays (established by earlier,
    /// already-collapsed loops), e.g. `rowsize: [0 : COLUMNLEN-1]`.
    array_values: HashMap<String, SymRange>,
    /// Relational facts for proving comparisons.
    pub assumptions: Assumptions,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Sets the value range of a scalar.
    pub fn set_scalar(&mut self, name: impl Into<String>, r: SymRange) {
        self.scalars.insert(name.into(), r);
    }

    /// Removes a scalar binding (its reads become symbolic again).
    pub fn clear_scalar(&mut self, name: &str) {
        self.scalars.remove(name);
    }

    /// The value range of a scalar.  Unbound scalars read as their own
    /// symbolic name (they are loop-invariant inputs from the analysis'
    /// point of view).
    pub fn scalar(&self, name: &str) -> SymRange {
        self.scalars
            .get(name)
            .cloned()
            .unwrap_or_else(|| SymRange::exact(Expr::sym(name)))
    }

    /// Whether a scalar has an explicit binding.
    pub fn has_scalar(&self, name: &str) -> bool {
        self.scalars.contains_key(name)
    }

    /// Names of all explicitly bound scalars.
    pub fn scalar_names(&self) -> Vec<&String> {
        let mut v: Vec<&String> = self.scalars.keys().collect();
        v.sort();
        v
    }

    /// Sets the element-value range known for a whole array.
    pub fn set_array_value(&mut self, name: impl Into<String>, r: SymRange) {
        self.array_values.insert(name.into(), r);
    }

    /// The element-value range known for an array, if any.
    pub fn array_value(&self, name: &str) -> Option<&SymRange> {
        self.array_values.get(name)
    }

    /// Forgets everything known about an array's values.
    pub fn clear_array_value(&mut self, name: &str) {
        self.array_values.remove(name);
    }

    /// Merges this environment with the one from another control-flow path:
    /// scalars bound on both sides get the union hull of their ranges,
    /// scalars bound on only one side become unknown-bounded unions with
    /// their symbolic initial value (conservative), array value facts must
    /// agree on both sides to survive.
    pub fn merge(&self, other: &Env) -> Env {
        let mut out = Env {
            scalars: HashMap::new(),
            array_values: HashMap::new(),
            assumptions: self.assumptions.clone(),
        };
        let mut names: Vec<&String> = self.scalars.keys().collect();
        for n in other.scalars.keys() {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        for name in names {
            match (self.scalars.get(name), other.scalars.get(name)) {
                (Some(a), Some(b)) => {
                    out.scalars.insert(name.clone(), a.union(b));
                }
                (Some(a), None) | (None, Some(a)) => {
                    // On the other path the scalar kept its previous
                    // (symbolic) value.
                    let sym = SymRange::exact(Expr::sym(name));
                    out.scalars.insert(name.clone(), a.union(&sym));
                }
                (None, None) => {}
            }
        }
        for (name, r) in &self.array_values {
            if let Some(r2) = other.array_values.get(name) {
                out.array_values.insert(name.clone(), r.union(r2));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_scalars_read_symbolically() {
        let env = Env::new();
        assert_eq!(env.scalar("nelt"), SymRange::exact(Expr::sym("nelt")));
        assert!(!env.has_scalar("nelt"));
    }

    #[test]
    fn set_and_clear() {
        let mut env = Env::new();
        env.set_scalar("count", SymRange::constant(0, 0));
        assert!(env.has_scalar("count"));
        assert_eq!(env.scalar("count"), SymRange::constant(0, 0));
        env.clear_scalar("count");
        assert!(!env.has_scalar("count"));
        env.set_array_value("rowsize", SymRange::constant(0, 9));
        assert_eq!(env.array_value("rowsize"), Some(&SymRange::constant(0, 9)));
        env.clear_array_value("rowsize");
        assert!(env.array_value("rowsize").is_none());
    }

    #[test]
    fn merge_takes_union_and_keeps_common_array_facts() {
        let mut a = Env::new();
        a.set_scalar("x", SymRange::constant(0, 1));
        a.set_scalar("only_a", SymRange::constant(5, 5));
        a.set_array_value("v", SymRange::constant(0, 3));
        a.set_array_value("only_a_arr", SymRange::constant(0, 3));
        let mut b = Env::new();
        b.set_scalar("x", SymRange::constant(3, 4));
        b.set_array_value("v", SymRange::constant(2, 7));
        let m = a.merge(&b);
        assert_eq!(m.scalar("x"), SymRange::constant(0, 4));
        assert_eq!(m.array_value("v"), Some(&SymRange::constant(0, 7)));
        assert!(m.array_value("only_a_arr").is_none());
        // only_a merges with its symbolic initial value
        let r = m.scalar("only_a");
        assert_eq!(r.lo, Expr::Min(vec![Expr::Int(5), Expr::sym("only_a")]));
    }

    #[test]
    fn scalar_names_sorted() {
        let mut env = Env::new();
        env.set_scalar("z", SymRange::constant(0, 0));
        env.set_scalar("a", SymRange::constant(0, 0));
        let names: Vec<&str> = env.scalar_names().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
