//! Evaluation of AST expressions to symbolic value ranges under an
//! environment, and range refinement from branch conditions.

use crate::env::Env;
use ss_ir::ast::{AExpr, BinOp, UnOp};
use ss_ir::convert::{to_symbolic, SymCondition};
use ss_symbolic::{simplify, Expr, SymRange};

/// Evaluates an expression to a **may** value range under the environment.
pub fn eval_range(env: &Env, e: &AExpr) -> SymRange {
    match e {
        AExpr::IntLit(v) => SymRange::constant(*v, *v),
        AExpr::Var(name) => env.scalar(name),
        AExpr::Index(a, idxs) => {
            if idxs.len() != 1 {
                return SymRange::unknown();
            }
            // A known element-value range for the whole array wins.
            if let Some(v) = env.array_value(a) {
                return v.clone();
            }
            let idx = eval_range(env, &idxs[0]);
            match idx.as_exact() {
                Some(i) if *i != Expr::Bottom => {
                    SymRange::exact(Expr::ArrayRef(a.clone(), Box::new(i.clone())))
                }
                _ => SymRange::unknown(),
            }
        }
        AExpr::Binary(op, a, b) => {
            let (x, y) = (eval_range(env, a), eval_range(env, b));
            match op {
                BinOp::Add => x.add(&y),
                BinOp::Sub => x.sub(&y),
                BinOp::Mul => x.mul(&y),
                BinOp::Div => match (x.as_exact(), y.as_exact()) {
                    (Some(a), Some(b)) => SymRange::exact(Expr::div(a.clone(), b.clone())),
                    _ => SymRange::unknown(),
                },
                BinOp::Mod => match (x.as_exact(), y.as_exact()) {
                    (Some(a), Some(b)) => SymRange::exact(Expr::modulo(a.clone(), b.clone())),
                    _ => {
                        // value of `a % m` for constant positive m lies in
                        // [-(m-1), m-1]; with a provably non-negative dividend
                        // it lies in [0, m-1].
                        if let Some((m, m2)) = y.as_const() {
                            if m == m2 && m > 0 {
                                let lo = if env.assumptions.prove_nonneg(&x.lo).is_proven() {
                                    0
                                } else {
                                    -(m - 1)
                                };
                                return SymRange::constant(lo, m - 1);
                            }
                        }
                        SymRange::unknown()
                    }
                },
                _ => SymRange::unknown(),
            }
        }
        AExpr::Unary(UnOp::Neg, a) => eval_range(env, a).scale(-1),
        AExpr::Unary(UnOp::Not, _) => SymRange::unknown(),
    }
}

/// Lowers an AST expression to a single symbolic expression with the
/// environment's *exact* scalar values substituted in (chains such as
/// `iel = mt_to_id[miel]` are followed).  Returns `⊥` when any needed value
/// is not exactly known.
pub fn eval_exact(env: &Env, e: &AExpr) -> Expr {
    let base = to_symbolic(e);
    if base == Expr::Bottom {
        return Expr::Bottom;
    }
    resolve_symbols(env, &base, 0)
}

const MAX_RESOLVE_DEPTH: usize = 16;

fn resolve_symbols(env: &Env, e: &Expr, depth: usize) -> Expr {
    if depth > MAX_RESOLVE_DEPTH {
        return Expr::Bottom;
    }
    let changed = std::cell::Cell::new(false);
    let rewritten = e.rewrite_bottom_up(&|n| match n {
        Expr::Sym(ref name) if env.has_scalar(name) => match env.scalar(name).as_exact() {
            Some(v) if !v.contains_sym(name) => {
                changed.set(true);
                v.clone()
            }
            Some(_) => n.clone(),
            None => Expr::Bottom,
        },
        other => other,
    });
    if rewritten.contains_bottom() {
        return Expr::Bottom;
    }
    if changed.get() {
        resolve_symbols(env, &rewritten, depth + 1)
    } else {
        simplify(&rewritten)
    }
}

/// Refines the environment with the knowledge that `cond` evaluated to
/// `true` (`positive`) or `false` (`!positive`).
///
/// Two kinds of refinement are applied:
///
/// * if one side of the comparison is a scalar variable, its value range is
///   tightened against the other side's range;
/// * the condition is recorded as a relational assumption (e.g.
///   `jmatch[i] >= 0` becomes the fact "`jmatch[i]` is non-negative"), which
///   is how Figure 5's guard feeds the subset-injectivity reasoning.
pub fn refine_with_condition(env: &mut Env, cond: &SymCondition, positive: bool) {
    let c = if positive {
        cond.clone()
    } else {
        cond.negate()
    };
    record_assumption(env, &c);
    tighten_scalar(env, &c);
    // Also tighten when the scalar is on the right: rewrite `a OP x` as the
    // mirrored comparison on x.
    if let Some(mirrored) = mirror(&c) {
        tighten_scalar(env, &mirrored);
    }
}

fn mirror(c: &SymCondition) -> Option<SymCondition> {
    let op = match c.op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        BinOp::Eq => BinOp::Eq,
        BinOp::Ne => BinOp::Ne,
        _ => return None,
    };
    Some(SymCondition {
        lhs: c.rhs.clone(),
        op,
        rhs: c.lhs.clone(),
    })
}

fn record_assumption(env: &mut Env, c: &SymCondition) {
    // lhs OP rhs  =>  record sign fact about (lhs - rhs) or (rhs - lhs).
    let diff_ge0 = |a: &Expr, b: &Expr| simplify(&Expr::sub(a.clone(), b.clone()));
    match c.op {
        BinOp::Ge => {
            env.assumptions.assume_nonneg(diff_ge0(&c.lhs, &c.rhs));
        }
        BinOp::Gt => {
            env.assumptions.assume_positive(diff_ge0(&c.lhs, &c.rhs));
        }
        BinOp::Le => {
            env.assumptions.assume_nonneg(diff_ge0(&c.rhs, &c.lhs));
        }
        BinOp::Lt => {
            env.assumptions.assume_positive(diff_ge0(&c.rhs, &c.lhs));
        }
        BinOp::Eq => {
            env.assumptions.assume_nonneg(diff_ge0(&c.lhs, &c.rhs));
            env.assumptions.assume_nonneg(diff_ge0(&c.rhs, &c.lhs));
        }
        _ => {}
    }
}

fn tighten_scalar(env: &mut Env, c: &SymCondition) {
    let Expr::Sym(name) = &c.lhs else {
        return;
    };
    let current = env.scalar(name);
    // The bound expression must not mention the scalar itself.
    if c.rhs.contains_sym(name) {
        return;
    }
    let bound = c.rhs.clone();
    let refined = match c.op {
        BinOp::Lt => SymRange::new(
            current.lo.clone(),
            upper_min(&current.hi, &simplify(&Expr::sub(bound, Expr::Int(1)))),
        ),
        BinOp::Le => SymRange::new(current.lo.clone(), upper_min(&current.hi, &bound)),
        BinOp::Gt => SymRange::new(
            lower_max(&current.lo, &simplify(&Expr::add(bound, Expr::Int(1)))),
            current.hi.clone(),
        ),
        BinOp::Ge => SymRange::new(lower_max(&current.lo, &bound), current.hi.clone()),
        BinOp::Eq => SymRange::exact(bound),
        _ => return,
    };
    // Never trade an exactly-known value (e.g. the symbolic loop index) for a
    // mere range: exact values are what subscript resolution needs, and the
    // relational fact was already recorded as an assumption above.
    if current.is_exact() && !refined.is_exact() {
        return;
    }
    env.set_scalar(name.clone(), refined);
}

fn upper_min(current: &Expr, new: &Expr) -> Expr {
    if *current == Expr::Bottom {
        new.clone()
    } else if *new == Expr::Bottom {
        current.clone()
    } else {
        simplify(&Expr::min(current.clone(), new.clone()))
    }
}

fn lower_max(current: &Expr, new: &Expr) -> Expr {
    if *current == Expr::Bottom {
        new.clone()
    } else if *new == Expr::Bottom {
        current.clone()
    } else {
        simplify(&Expr::max(current.clone(), new.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::convert::to_condition;
    use ss_ir::parser::parse_expr;

    #[test]
    fn evaluates_literals_and_scalars() {
        let mut env = Env::new();
        env.set_scalar("count", SymRange::constant(0, 5));
        assert_eq!(
            eval_range(&env, &parse_expr("3").unwrap()),
            SymRange::constant(3, 3)
        );
        assert_eq!(
            eval_range(&env, &parse_expr("count + 1").unwrap()),
            SymRange::constant(1, 6)
        );
        // unbound scalar is symbolic
        assert_eq!(
            eval_range(&env, &parse_expr("nelt").unwrap()),
            SymRange::exact(Expr::sym("nelt"))
        );
    }

    #[test]
    fn array_reads_use_known_value_ranges() {
        let mut env = Env::new();
        env.set_array_value("rowsize", SymRange::constant(0, 99));
        let r = eval_range(&env, &parse_expr("rowsize[i-1]").unwrap());
        assert_eq!(r, SymRange::constant(0, 99));
        // unknown array with exact index: symbolic element reference
        let r = eval_range(&env, &parse_expr("rowptr[i-1]").unwrap());
        assert_eq!(
            r,
            SymRange::exact(Expr::array_ref(
                "rowptr",
                Expr::add(Expr::Int(-1), Expr::sym("i"))
            ))
        );
        // non-exact index: unknown
        let mut env2 = Env::new();
        env2.set_scalar("i", SymRange::constant(0, 3));
        assert!(eval_range(&env2, &parse_expr("a[i]").unwrap()).is_unknown());
    }

    #[test]
    fn modulo_ranges() {
        let env = Env::new();
        let r = eval_range(&env, &parse_expr("x % 8").unwrap());
        // exact symbolic form is preserved when both sides are exact
        assert_eq!(
            r,
            SymRange::exact(Expr::modulo(Expr::sym("x"), Expr::int(8)))
        );
        let mut env = Env::new();
        env.set_scalar("x", SymRange::constant(0, 100));
        let r = eval_range(&env, &parse_expr("x % 8").unwrap());
        assert_eq!(r, SymRange::constant(0, 7));
        let mut env = Env::new();
        env.set_scalar("x", SymRange::constant(-100, 100));
        let r = eval_range(&env, &parse_expr("x % 8").unwrap());
        assert_eq!(r, SymRange::constant(-7, 7));
    }

    #[test]
    fn eval_exact_follows_scalar_chains() {
        let mut env = Env::new();
        env.set_scalar(
            "iel",
            SymRange::exact(Expr::array_ref("mt_to_id", Expr::sym("miel"))),
        );
        let e = eval_exact(&env, &parse_expr("iel").unwrap());
        assert_eq!(e, Expr::array_ref("mt_to_id", Expr::sym("miel")));
        // chain of two
        env.set_scalar(
            "ntemp",
            SymRange::exact(simplify(&Expr::mul(
                Expr::sub(Expr::array_ref("front", Expr::sym("miel")), Expr::int(1)),
                Expr::int(7),
            ))),
        );
        env.set_scalar(
            "mielnew",
            SymRange::exact(simplify(&Expr::add(Expr::sym("miel"), Expr::sym("ntemp")))),
        );
        let e = eval_exact(&env, &parse_expr("mielnew").unwrap());
        assert!(e.contains_array_ref("front"));
        assert!(!e.contains_sym("ntemp"));
        // non-exact scalar -> bottom
        env.set_scalar("fuzzy", SymRange::constant(0, 5));
        assert_eq!(
            eval_exact(&env, &parse_expr("fuzzy + 1").unwrap()),
            Expr::Bottom
        );
    }

    #[test]
    fn eval_exact_leaves_inputs_symbolic() {
        let env = Env::new();
        let e = eval_exact(&env, &parse_expr("rowptr[i-1] + rowsize[i-1]").unwrap());
        assert!(e.contains_array_ref("rowptr"));
        assert!(e.contains_array_ref("rowsize"));
        assert_eq!(
            eval_exact(&env, &parse_expr("a[i][j]").unwrap()),
            Expr::Bottom
        );
    }

    #[test]
    fn condition_refinement_tightens_scalars() {
        let mut env = Env::new();
        env.set_scalar("i", SymRange::new(Expr::int(0), Expr::sym("n")));
        let c = to_condition(&parse_expr("i == 0").unwrap()).unwrap();
        let mut then_env = env.clone();
        refine_with_condition(&mut then_env, &c, true);
        assert_eq!(then_env.scalar("i"), SymRange::constant(0, 0));
        // negated: i != 0 does not tighten the range (no hole representation)
        let mut else_env = env.clone();
        refine_with_condition(&mut else_env, &c, false);
        assert_eq!(
            else_env.scalar("i"),
            SymRange::new(Expr::int(0), Expr::sym("n"))
        );
        // i < 10 tightens the upper bound
        let c = to_condition(&parse_expr("i < 10").unwrap()).unwrap();
        let mut env2 = Env::new();
        env2.set_scalar("i", SymRange::constant(0, 100));
        refine_with_condition(&mut env2, &c, true);
        assert_eq!(env2.scalar("i"), SymRange::constant(0, 9));
        // negation: i >= 10
        let mut env3 = Env::new();
        env3.set_scalar("i", SymRange::constant(0, 100));
        refine_with_condition(&mut env3, &c, false);
        assert_eq!(env3.scalar("i"), SymRange::constant(10, 100));
    }

    #[test]
    fn condition_refinement_records_assumptions() {
        let mut env = Env::new();
        let c = to_condition(&parse_expr("jmatch[i] >= 0").unwrap()).unwrap();
        refine_with_condition(&mut env, &c, true);
        let fact = Expr::array_ref("jmatch", Expr::sym("i"));
        assert!(env.assumptions.prove_nonneg(&fact).is_proven());
        // mirrored comparison: `0 <= x` tightens x's lower bound
        let mut env = Env::new();
        env.set_scalar("x", SymRange::constant(-50, 50));
        let c = to_condition(&parse_expr("0 <= x").unwrap()).unwrap();
        refine_with_condition(&mut env, &c, true);
        assert_eq!(env.scalar("x"), SymRange::constant(0, 50));
    }
}
