//! Transfer functions: abstract interpretation of statement sequences.
//!
//! This is the "symbolic range analysis of the loop body" that Phase 1 of
//! the paper's algorithm performs.  The walker tracks scalar value ranges,
//! records every array write it encounters (with its symbolic subscript,
//! value range and guard conditions), and merges branches with the range
//! union.  Nested loops are delegated to a [`LoopHandler`]; loops the handler
//! does not summarize are treated conservatively (everything they write
//! becomes unknown).

use crate::env::Env;
use crate::eval::{eval_exact, eval_range, refine_with_condition};
use ss_ir::ast::{AExpr, AssignOp, LValue, LoopId, Stmt};
use ss_ir::convert::{to_condition, SymCondition};
use ss_symbolic::{Expr, SymRange};

/// One array write observed while interpreting a statement sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRecord {
    /// Written array.
    pub array: String,
    /// Exact symbolic subscript (with local scalar chains resolved), or `⊥`.
    pub subscript: Expr,
    /// May-range of the subscript.
    pub subscript_range: SymRange,
    /// May-range of the written value.
    pub value: SymRange,
    /// Exact symbolic value, or `⊥`.
    pub value_exact: Expr,
    /// Guard conditions (from enclosing `if`s) under which the write occurs.
    pub guards: Vec<SymCondition>,
    /// True if some guard on the path could not be represented.
    pub under_unknown_guard: bool,
}

impl WriteRecord {
    /// True if the write executes unconditionally (no guards at all).
    pub fn is_unconditional(&self) -> bool {
        self.guards.is_empty() && !self.under_unknown_guard
    }
}

/// Hook for nested loops: the aggregation pass registers collapsed loop
/// summaries here so that outer-loop analysis can use them (the paper's
/// "the loop is collapsed, that is, it is substituted by a set of
/// expressions representing the effect of the loop").
pub trait LoopHandler {
    /// Applies the effect of nested loop `id` to the environment and write
    /// list. Returns `false` if no summary is available; the interpreter
    /// then clobbers everything the loop writes.
    fn apply(&self, id: LoopId, env: &mut Env, writes: &mut Vec<WriteRecord>) -> bool;
}

/// A [`LoopHandler`] with no summaries (every nested loop is clobbered).
pub struct NoSummaries;

impl LoopHandler for NoSummaries {
    fn apply(&self, _id: LoopId, _env: &mut Env, _writes: &mut Vec<WriteRecord>) -> bool {
        false
    }
}

/// Result of interpreting a statement sequence.
#[derive(Debug, Clone)]
pub struct BodyResult {
    /// The environment at the end of the sequence.
    pub env: Env,
    /// All array writes, in program order.
    pub writes: Vec<WriteRecord>,
}

impl BodyResult {
    /// The writes that target a given array.
    pub fn writes_to(&self, array: &str) -> Vec<&WriteRecord> {
        self.writes.iter().filter(|w| w.array == array).collect()
    }
}

/// Interprets a statement sequence starting from `env`.
pub fn analyze_block(stmts: &[Stmt], env: Env, handler: &dyn LoopHandler) -> BodyResult {
    let mut state = State {
        env,
        writes: Vec::new(),
        guards: Vec::new(),
        unknown_guard_depth: 0,
    };
    walk(stmts, &mut state, handler);
    BodyResult {
        env: state.env,
        writes: state.writes,
    }
}

struct State {
    env: Env,
    writes: Vec<WriteRecord>,
    guards: Vec<SymCondition>,
    unknown_guard_depth: usize,
}

fn walk(stmts: &[Stmt], state: &mut State, handler: &dyn LoopHandler) {
    for s in stmts {
        walk_stmt(s, state, handler);
    }
}

fn walk_stmt(s: &Stmt, state: &mut State, handler: &dyn LoopHandler) {
    match s {
        Stmt::Decl { name, dims, init } => {
            if dims.is_empty() {
                match init {
                    Some(e) => {
                        let r = eval_range(&state.env, e);
                        state.env.set_scalar(name.clone(), r);
                    }
                    None => state.env.set_scalar(name.clone(), SymRange::unknown()),
                }
            }
        }
        Stmt::Assign { target, op, value } => {
            let rhs = desugar_rhs(target, *op, value);
            apply_assign(target, &rhs, state);
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let sym_cond = to_condition(cond);
            // Then path.
            let mut then_state = State {
                env: state.env.clone(),
                writes: Vec::new(),
                guards: state.guards.clone(),
                unknown_guard_depth: state.unknown_guard_depth,
            };
            match &sym_cond {
                Some(c) => {
                    refine_with_condition(&mut then_state.env, c, true);
                    then_state.guards.push(c.clone());
                }
                None => then_state.unknown_guard_depth += 1,
            }
            walk(then_branch, &mut then_state, handler);
            // Else path.
            let mut else_state = State {
                env: state.env.clone(),
                writes: Vec::new(),
                guards: state.guards.clone(),
                unknown_guard_depth: state.unknown_guard_depth,
            };
            match &sym_cond {
                Some(c) => {
                    refine_with_condition(&mut else_state.env, c, false);
                    else_state.guards.push(c.negate());
                }
                None => else_state.unknown_guard_depth += 1,
            }
            walk(else_branch, &mut else_state, handler);
            // Merge.
            state.env = then_state.env.merge(&else_state.env);
            state.writes.append(&mut then_state.writes);
            state.writes.append(&mut else_state.writes);
        }
        Stmt::For { id, body, var, .. } => {
            if !handler.apply(*id, &mut state.env, &mut state.writes) {
                clobber_loop_effects(body, Some(var), state);
            }
        }
        Stmt::While { id, body, .. } => {
            if !handler.apply(*id, &mut state.env, &mut state.writes) {
                clobber_loop_effects(body, None, state);
            }
        }
    }
}

fn desugar_rhs(target: &LValue, op: AssignOp, value: &AExpr) -> AExpr {
    let read_target = if target.is_scalar() {
        AExpr::Var(target.name.clone())
    } else {
        AExpr::Index(target.name.clone(), target.indices.clone())
    };
    match op {
        AssignOp::Assign => value.clone(),
        AssignOp::AddAssign => AExpr::add(read_target, value.clone()),
        AssignOp::SubAssign => AExpr::sub(read_target, value.clone()),
        AssignOp::MulAssign => AExpr::mul(read_target, value.clone()),
    }
}

fn apply_assign(target: &LValue, rhs: &AExpr, state: &mut State) {
    let value_range = eval_range(&state.env, rhs);
    let value_exact = eval_exact(&state.env, rhs);
    if target.is_scalar() {
        state.env.set_scalar(target.name.clone(), value_range);
        return;
    }
    // Array element write.
    let (subscript, subscript_range) = if target.indices.len() == 1 {
        (
            eval_exact(&state.env, &target.indices[0]),
            eval_range(&state.env, &target.indices[0]),
        )
    } else {
        (Expr::Bottom, SymRange::unknown())
    };
    // Keep whole-array value knowledge sound: widen with the written value
    // when both are known, otherwise forget it.
    match (
        state.env.array_value(&target.name).cloned(),
        value_range.has_unknown_bound(),
    ) {
        (Some(known), false) => {
            let widened = known.union(&value_range);
            state.env.set_array_value(target.name.clone(), widened);
        }
        (Some(_), true) => state.env.clear_array_value(&target.name),
        (None, _) => {}
    }
    state.writes.push(WriteRecord {
        array: target.name.clone(),
        subscript,
        subscript_range,
        value: value_range,
        value_exact,
        guards: state.guards.clone(),
        under_unknown_guard: state.unknown_guard_depth > 0,
    });
}

/// Conservative treatment of a nested loop without a summary: every scalar
/// it assigns becomes unknown, every array it writes is recorded as an
/// unknown-region write and its whole-array value knowledge is dropped.
fn clobber_loop_effects(body: &[Stmt], loop_var: Option<&str>, state: &mut State) {
    let mut scalars = Vec::new();
    let mut arrays = Vec::new();
    collect_written(body, &mut scalars, &mut arrays);
    if let Some(v) = loop_var {
        scalars.push(v.to_string());
    }
    for s in scalars {
        state.env.set_scalar(s, SymRange::unknown());
    }
    for a in arrays {
        state.env.clear_array_value(&a);
        state.writes.push(WriteRecord {
            array: a,
            subscript: Expr::Bottom,
            subscript_range: SymRange::unknown(),
            value: SymRange::unknown(),
            value_exact: Expr::Bottom,
            guards: state.guards.clone(),
            under_unknown_guard: true,
        });
    }
}

fn collect_written(stmts: &[Stmt], scalars: &mut Vec<String>, arrays: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign { target, .. } => {
                if target.is_scalar() {
                    if !scalars.contains(&target.name) {
                        scalars.push(target.name.clone());
                    }
                } else if !arrays.contains(&target.name) {
                    arrays.push(target.name.clone());
                }
            }
            Stmt::Decl { name, dims, .. } => {
                if dims.is_empty() && !scalars.contains(name) {
                    scalars.push(name.clone());
                }
            }
            Stmt::For { var, body, .. } => {
                if !scalars.contains(var) {
                    scalars.push(var.clone());
                }
                collect_written(body, scalars, arrays);
            }
            Stmt::While { body, .. } => collect_written(body, scalars, arrays),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_written(then_branch, scalars, arrays);
                collect_written(else_branch, scalars, arrays);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::parser::parse_program;
    use ss_symbolic::simplify;

    fn body_of_first_loop(src: &str) -> Vec<Stmt> {
        let p = parse_program("t", src).unwrap();
        let Stmt::For { body, .. } = &p.body[0] else {
            panic!("expected for loop");
        };
        body.clone()
    }

    #[test]
    fn straight_line_scalar_tracking() {
        let p = parse_program("t", "count = 0; count++; x = count * 2;").unwrap();
        let out = analyze_block(&p.body, Env::new(), &NoSummaries);
        assert_eq!(out.env.scalar("count"), SymRange::constant(1, 1));
        assert_eq!(out.env.scalar("x"), SymRange::constant(2, 2));
        assert!(out.writes.is_empty());
    }

    #[test]
    fn phase1_of_figure9_inner_loop_body() {
        // Body of the j loop (Figure 9 lines 3–8), analyzed for one iteration
        // with count starting at λ(count).
        let body = body_of_first_loop(
            r#"
            for (j = 0; j < COLUMNLEN; j++) {
                if (a[i][j] != 0) {
                    count++;
                    column_number[index] = j;
                    index++;
                    value[ind] = a[i][j];
                    ind++;
                }
            }
        "#,
        );
        let mut env = Env::new();
        env.set_scalar("count", SymRange::exact(Expr::lambda("count")));
        let out = analyze_block(&body, env, &NoSummaries);
        // count: [λ : λ + 1]  (the paper's Phase 1 result)
        let r = out.env.scalar("count");
        assert_eq!(r.lo, Expr::lambda("count"));
        assert_eq!(
            r.hi,
            simplify(&Expr::add(Expr::lambda("count"), Expr::int(1)))
        );
        // column_number and value are written under an unrepresentable guard
        // (2-D access in the condition) — still recorded, marked unknown-guard.
        let col = out.writes_to("column_number");
        assert_eq!(col.len(), 1);
        assert!(col[0].under_unknown_guard);
        let val = out.writes_to("value");
        assert_eq!(val.len(), 1);
        assert_eq!(val[0].value_exact, Expr::Bottom);
    }

    #[test]
    fn figure9_line14_recurrence_shape() {
        // rowptr[i] = rowptr[i-1] + rowsize[i-1];  with rowsize's value range
        // known from the previous (collapsed) loop.
        let p = parse_program("t", "rowptr[i] = rowptr[i-1] + rowsize[i-1];").unwrap();
        let mut env = Env::new();
        env.set_array_value(
            "rowsize",
            SymRange::new(
                Expr::int(0),
                Expr::sub(Expr::sym("COLUMNLEN"), Expr::int(1)),
            ),
        );
        let out = analyze_block(&p.body, env, &NoSummaries);
        let w = &out.writes[0];
        assert_eq!(w.array, "rowptr");
        assert_eq!(w.subscript, Expr::sym("i"));
        // value range: rowptr[i-1] + [0 : COLUMNLEN-1]
        assert_eq!(
            w.value.lo,
            Expr::array_ref("rowptr", Expr::add(Expr::Int(-1), Expr::sym("i")))
        );
        assert_eq!(
            w.value.hi,
            simplify(&Expr::add(
                Expr::array_ref("rowptr", Expr::sub(Expr::sym("i"), Expr::int(1))),
                Expr::sub(Expr::sym("COLUMNLEN"), Expr::int(1))
            ))
        );
        // the exact symbolic value keeps the recurrence shape (the value-range
        // knowledge about rowsize only affects the range form above)
        assert!(w.value_exact.contains_array_ref("rowptr"));
        assert!(w.value_exact.contains_array_ref("rowsize"));
    }

    #[test]
    fn figure2_body_resolves_scalar_chain() {
        let body = body_of_first_loop(
            r#"
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#,
        );
        let out = analyze_block(&body, Env::new(), &NoSummaries);
        let w = &out.writes[0];
        assert_eq!(w.array, "id_to_mt");
        assert_eq!(w.subscript, Expr::array_ref("mt_to_id", Expr::sym("miel")));
        assert_eq!(w.value_exact, Expr::sym("miel"));
        assert!(w.is_unconditional());
    }

    #[test]
    fn figure8_body_produces_two_guarded_writes() {
        let body = body_of_first_loop(
            r#"
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id_old[miel];
                if (ich[iel] == 4) {
                    ntemp = (front[miel]-1)*7;
                    mielnew = miel + ntemp;
                } else {
                    ntemp = front[miel]*7;
                    mielnew = miel + ntemp;
                }
                mt_to_id[mielnew] = iel;
                ref_front_id[iel] = nelt + ntemp;
            }
        "#,
        );
        let out = analyze_block(&body, Env::new(), &NoSummaries);
        let writes = out.writes_to("mt_to_id");
        assert_eq!(writes.len(), 1);
        // After the merge, mielnew is only known as a range (the union of the
        // two branch values), so the subscript is not exact...
        let w = writes[0];
        assert_eq!(w.array, "mt_to_id");
        // ...but the subscript range's bounds mention front[miel].
        assert!(
            w.subscript_range.lo.contains_array_ref("front")
                || w.subscript_range.hi.contains_array_ref("front")
                || w.subscript == Expr::Bottom
        );
        // The guarded writes inside the branches were scalar assignments, so
        // only the two array writes appear.
        assert_eq!(out.writes.len(), 2);
    }

    #[test]
    fn unsummarized_nested_loops_clobber_their_effects() {
        let p = parse_program(
            "t",
            r#"
            count = 3;
            for (j = 0; j < n; j++) {
                count = count + 1;
                acc[j] = count;
            }
            y = count;
        "#,
        )
        .unwrap();
        let out = analyze_block(&p.body, Env::new(), &NoSummaries);
        assert!(out.env.scalar("count").is_unknown());
        assert!(out.env.scalar("y").is_unknown());
        let w = out.writes_to("acc");
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].subscript, Expr::Bottom);
        assert!(w[0].under_unknown_guard);
    }

    #[test]
    fn guards_are_attached_to_writes() {
        let p = parse_program(
            "t",
            r#"
            if (jmatch[i] >= 0) {
                imatch[jmatch[i]] = i;
            }
        "#,
        )
        .unwrap();
        let out = analyze_block(&p.body, Env::new(), &NoSummaries);
        let w = &out.writes[0];
        assert_eq!(w.guards.len(), 1);
        assert!(!w.under_unknown_guard);
        assert!(!w.is_unconditional());
        assert_eq!(w.subscript, Expr::array_ref("jmatch", Expr::sym("i")));
    }

    #[test]
    fn declarations_initialize_or_clear() {
        let p = parse_program("t", "int x = 4; int y; z = x + 1;").unwrap();
        let out = analyze_block(&p.body, Env::new(), &NoSummaries);
        assert_eq!(out.env.scalar("x"), SymRange::constant(4, 4));
        assert!(out.env.scalar("y").is_unknown());
        assert_eq!(out.env.scalar("z"), SymRange::constant(5, 5));
    }
}
