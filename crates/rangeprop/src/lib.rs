//! # ss-rangeprop — symbolic range propagation over the mini-C IR
//!
//! The substrate of the paper's Phase 1 (Section 3.3): a Blume–Eigenmann
//! style symbolic range analysis that abstractly interprets straight-line
//! code and branches, tracking a **may**-range for every integer scalar and
//! recording every array write with its symbolic subscript, value range and
//! guard conditions.
//!
//! Nested loops are not interpreted here — the aggregation crate collapses
//! them inside-out and registers their summaries through the [`LoopHandler`]
//! hook, exactly mirroring the paper's "after Phase 2, the loop is collapsed"
//! step.
//!
//! ```
//! use ss_ir::parse_program;
//! use ss_rangeprop::{analyze_block, Env, NoSummaries};
//! use ss_symbolic::Expr;
//!
//! let p = parse_program("snippet", "iel = mt_to_id[miel]; id_to_mt[iel] = miel;").unwrap();
//! let out = analyze_block(&p.body, Env::new(), &NoSummaries);
//! // the write's subscript resolves through the scalar chain to mt_to_id[miel]
//! assert_eq!(out.writes[0].subscript, Expr::array_ref("mt_to_id", Expr::sym("miel")));
//! ```

pub mod env;
pub mod eval;
pub mod transfer;

pub use env::Env;
pub use eval::{eval_exact, eval_range, refine_with_condition};
pub use transfer::{analyze_block, BodyResult, LoopHandler, NoSummaries, WriteRecord};
