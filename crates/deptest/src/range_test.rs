//! The extended Range Test (Section 5) and the loop parallelism verdict.
//!
//! For the loop under test, every pair of per-iteration access descriptors
//! that involves a write is compared between an arbitrary iteration `i` and
//! its successor `i+1` (the paper's formulation of the Range Test).  A pair
//! is independent when
//!
//! * both regions advance monotonically with `i` **and** the later
//!   iteration's region starts strictly after the earlier one ends (in either
//!   direction), or
//! * the access is a single point whose subscript provably takes distinct
//!   values in distinct iterations — via strict monotonicity, via an
//!   injective index array (`Figure 2`), via an injective subset under a
//!   matching guard (`Figure 5`), or via an injective index array applied to
//!   disjoint ranges (`Figure 6`).
//!
//! All of these proofs consume the index-array properties derived by the
//! aggregation pass; with an empty property database the test degenerates to
//! what conventional compilers can do (the *baseline* of the evaluation).

use crate::access::{collect_iteration_accesses, AccessRegion, DescriptorSet, IterationAccess};
use crate::monotone::{property_proves_nonneg, property_proves_positive};
use ss_ir::ast::{BinOp, LoopId, Program, Stmt};
use ss_ir::convert::SymCondition;
use ss_ir::loops::{LoopInfo, LoopTree};
use ss_properties::{ArrayProperty, PropertyDatabase, ValueFilter};
use ss_symbolic::relation::{Assumptions, Proof};
use ss_symbolic::simplify::affine_in;
use ss_symbolic::subst::subst_sym;
use ss_symbolic::{simplify, simplify_diff, sym_eq, Expr, SymRange};

/// Configuration of the dependence test.
#[derive(Debug, Clone)]
pub struct RangeTestConfig {
    /// Use the index-array properties derived by the aggregation pass
    /// (the paper's contribution). `false` models conventional compilers
    /// (Cetus / ICC / PGI in the paper's comparison).
    pub use_index_array_properties: bool,
}

impl Default for RangeTestConfig {
    fn default() -> Self {
        RangeTestConfig {
            use_index_array_properties: true,
        }
    }
}

impl RangeTestConfig {
    /// The baseline configuration (no subscripted-subscript reasoning).
    pub fn baseline() -> RangeTestConfig {
        RangeTestConfig {
            use_index_array_properties: false,
        }
    }
}

/// The verdict for one loop.
#[derive(Debug, Clone)]
pub struct LoopVerdict {
    /// The tested loop.
    pub loop_id: LoopId,
    /// True if every cross-iteration dependence was disproven.
    pub parallel: bool,
    /// Why the loop is parallel (one entry per discharged proof obligation).
    pub reasons: Vec<String>,
    /// What blocked parallelization.
    pub blockers: Vec<String>,
    /// Scalars with a carried dependence (read before written in an
    /// iteration); each contributes exactly one entry to `blockers`.  A
    /// later pass may still recognize these as reduction accumulators.
    pub carried_scalars: Vec<String>,
}

impl LoopVerdict {
    fn serial(loop_id: LoopId, blocker: impl Into<String>) -> LoopVerdict {
        LoopVerdict {
            loop_id,
            parallel: false,
            reasons: Vec::new(),
            blockers: vec![blocker.into()],
            carried_scalars: Vec::new(),
        }
    }
}

/// Tests a single loop of a program.
pub fn test_loop(
    program: &Program,
    tree: &LoopTree,
    id: LoopId,
    db: &PropertyDatabase,
    cfg: &RangeTestConfig,
) -> LoopVerdict {
    let Some(info) = tree.get(id) else {
        return LoopVerdict::serial(id, "loop not found");
    };
    if !info.is_normalized {
        return LoopVerdict::serial(id, "not a canonical unit-step counted loop");
    }
    let Some(Stmt::For { body, .. }) = program.find_loop(id) else {
        return LoopVerdict::serial(id, "loop body not found");
    };
    let empty_db = PropertyDatabase::new();
    let db = if cfg.use_index_array_properties {
        db
    } else {
        &empty_db
    };

    let mut verdict = LoopVerdict {
        loop_id: id,
        parallel: true,
        reasons: Vec::new(),
        blockers: Vec::new(),
        carried_scalars: Vec::new(),
    };

    // The index variable is excluded from the privatization test (every
    // iteration writes it by construction) — but only while the *header*
    // is its sole writer.  A body that assigns its own index makes the
    // iteration space non-affine: the next iteration depends on this
    // iteration's write, and a dispatcher that materialized the space from
    // the header would execute different iterations than the serial run
    // (found by the cross-engine fuzz harness, `tests/engine_fuzz.rs`).
    if body_assigns_scalar(body, &info.var) {
        verdict.blockers.push(format!(
            "loop index '{}' is assigned in the body (non-affine iteration space)",
            info.var
        ));
    }

    // Scalar dependences: every scalar assigned in the body must be
    // privatizable (written before read in each iteration).
    for name in non_private_scalars(body, &info.var) {
        verdict.blockers.push(format!(
            "scalar '{name}' is read before written (carried scalar dependence)"
        ));
        verdict.carried_scalars.push(name);
    }

    // Array dependences.  Arrays declared at the top of the loop body are
    // re-initialized by every iteration before any use, so they are
    // per-iteration private — like privatizable scalars, they carry no
    // cross-iteration dependence and are excluded from the test.
    let private_arrays = loop_private_arrays(body);
    let descriptors = collect_iteration_accesses(info, body, tree);
    let mut asm = Assumptions::new();
    asm.assume_range(info.var.clone(), info.index_range());
    for array in descriptors.written_arrays() {
        if private_arrays.contains(&array) {
            let reason =
                format!("array '{array}' is declared in the loop body (private per iteration)");
            if !verdict.reasons.contains(&reason) {
                verdict.reasons.push(reason);
            }
            continue;
        }
        check_array(&descriptors, &array, info, db, &asm, &mut verdict);
    }

    verdict.parallel = verdict.blockers.is_empty();
    verdict
}

/// Tests every loop of a program, returning verdicts in loop-id order.
pub fn test_program(
    program: &Program,
    db_for_loop: &dyn Fn(LoopId) -> PropertyDatabase,
    cfg: &RangeTestConfig,
) -> Vec<LoopVerdict> {
    let tree = LoopTree::build(program);
    tree.loops
        .iter()
        .map(|l| test_loop(program, &tree, l.id, &db_for_loop(l.id), cfg))
        .collect()
}

fn check_array(
    descriptors: &DescriptorSet,
    array: &str,
    info: &LoopInfo,
    db: &PropertyDatabase,
    asm: &Assumptions,
    verdict: &mut LoopVerdict,
) {
    let accesses = descriptors.for_array(array);
    // Every pair (early iteration i, late iteration i+1) involving a write
    // must be independent.
    for early in &accesses {
        for late in &accesses {
            if !early.is_write && !late.is_write {
                continue;
            }
            match pair_independent(early, late, array, info, db, asm) {
                Ok(reason) => {
                    if !verdict.reasons.contains(&reason) {
                        verdict.reasons.push(reason);
                    }
                }
                Err(blocker) => {
                    if !verdict.blockers.contains(&blocker) {
                        verdict.blockers.push(blocker);
                    }
                }
            }
        }
    }
}

/// Shifts an expression from iteration `i` to iteration `i+1`.
fn next_iter(e: &Expr, var: &str) -> Expr {
    simplify(&subst_sym(e, var, &Expr::add(Expr::sym(var), Expr::Int(1))))
}

fn next_iter_range(r: &SymRange, var: &str) -> SymRange {
    SymRange {
        lo: next_iter(&r.lo, var),
        hi: next_iter(&r.hi, var),
    }
}

/// The `[lo : hi]` bounds of a region (points are degenerate ranges).
fn region_bounds(region: &AccessRegion) -> Option<SymRange> {
    match region {
        AccessRegion::Point(p) => Some(SymRange::exact(p.clone())),
        AccessRegion::Range(r) => Some(r.clone()),
        AccessRegion::Indirect { .. } | AccessRegion::Unknown => None,
    }
}

/// Checks whether the guard conditions of an access can hold at iteration
/// `i + shift`. Returns false only when some guard is provably violated.
fn guards_feasible(guards: &[SymCondition], var: &str, shift: i64, asm: &Assumptions) -> bool {
    for g in guards {
        let lhs = if shift == 0 {
            g.lhs.clone()
        } else {
            simplify(&subst_sym(
                &g.lhs,
                var,
                &Expr::add(Expr::sym(var), Expr::Int(shift)),
            ))
        };
        let rhs = if shift == 0 {
            g.rhs.clone()
        } else {
            simplify(&subst_sym(
                &g.rhs,
                var,
                &Expr::add(Expr::sym(var), Expr::Int(shift)),
            ))
        };
        let impossible = match g.op {
            BinOp::Eq => {
                asm.prove_lt(&lhs, &rhs) == Proof::Proven
                    || asm.prove_lt(&rhs, &lhs) == Proof::Proven
            }
            BinOp::Ne => asm.prove_eq(&lhs, &rhs) == Proof::Proven,
            BinOp::Lt => asm.prove_le(&rhs, &lhs) == Proof::Proven,
            BinOp::Le => asm.prove_lt(&rhs, &lhs) == Proof::Proven,
            BinOp::Gt => asm.prove_le(&lhs, &rhs) == Proof::Proven,
            BinOp::Ge => asm.prove_lt(&lhs, &rhs) == Proof::Proven,
            _ => false,
        };
        if impossible {
            return false;
        }
    }
    true
}

fn pair_independent(
    early: &IterationAccess,
    late: &IterationAccess,
    array: &str,
    info: &LoopInfo,
    db: &PropertyDatabase,
    asm: &Assumptions,
) -> Result<String, String> {
    let var = &info.var;
    if early.under_unknown_guard || late.under_unknown_guard {
        // A write under an unrepresentable guard can still be tested — the
        // guard only removes instances, never adds them — so fall through.
    }
    // Vacuous pairs: a guard that cannot hold at the respective iteration.
    if !guards_feasible(&early.guards, var, 0, asm) || !guards_feasible(&late.guards, var, 1, asm) {
        return Ok(format!(
            "accesses to '{array}' cannot co-execute in consecutive iterations (guards exclude them)"
        ));
    }

    // Indirect regions (Figure 6): the image of disjoint argument ranges
    // under an injective index array.
    if let (
        AccessRegion::Indirect {
            array: pa,
            range: ra,
        },
        AccessRegion::Indirect {
            array: pb,
            range: rb,
        },
    ) = (&early.region, &late.region)
    {
        if pa == pb && db.has_property(pa, ArrayProperty::Injective) {
            return check_advancing_ranges(ra, rb, var, db, asm)
                .map(|why| {
                    format!(
                    "writes to '{array}' go through injective index array '{pa}' applied to {why}"
                )
                })
                .map_err(|e| format!("indirect writes to '{array}': {e}"));
        }
        return Err(format!(
            "writes to '{array}' use index array '{pa}' whose injectivity is unknown"
        ));
    }

    let (Some(ra), Some(rb)) = (region_bounds(&early.region), region_bounds(&late.region)) else {
        return Err(format!(
            "an access to '{array}' could not be described as a subscript range"
        ));
    };

    // Same single-point access: injectivity-based reasoning.
    if early == late {
        if let AccessRegion::Point(p) = &early.region {
            if let Some(reason) = injective_subscript(p, var, db, &early.guards) {
                return Ok(format!("write subscript of '{array}' {reason}"));
            }
        }
    }

    check_advancing_ranges(&ra, &rb, var, db, asm)
        .map(|why| format!("accesses to '{array}' touch {why}"))
        .map_err(|e| format!("accesses to '{array}': {e}"))
}

/// Proves that region `ra` (iteration `i`) and region `rb` (iteration `i+1`)
/// cannot overlap, via monotone advancement: both regions move in the same
/// direction with `i` and the later one starts strictly past the earlier one.
fn check_advancing_ranges(
    ra: &SymRange,
    rb: &SymRange,
    var: &str,
    db: &PropertyDatabase,
    asm: &Assumptions,
) -> Result<String, String> {
    let rb_next = next_iter_range(rb, var);
    let ra_next = next_iter_range(ra, var);
    // Increasing direction: regions advance upward and the successor's region
    // begins after the current one ends.
    let advancing_up = property_proves_nonneg(&simplify_diff(&ra_next.lo, &ra.lo), db, asm)
        && property_proves_nonneg(&simplify_diff(&ra_next.hi, &ra.hi), db, asm)
        && property_proves_nonneg(&simplify_diff(&rb_next.lo, &rb.lo), db, asm)
        && property_proves_nonneg(&simplify_diff(&rb_next.hi, &rb.hi), db, asm);
    if advancing_up && property_proves_positive(&simplify_diff(&rb_next.lo, &ra.hi), db, asm) {
        return Ok(
            "non-overlapping, monotonically advancing subscript ranges in consecutive iterations"
                .to_string(),
        );
    }
    // Decreasing direction.
    let advancing_down = property_proves_nonneg(&simplify_diff(&ra.lo, &ra_next.lo), db, asm)
        && property_proves_nonneg(&simplify_diff(&ra.hi, &ra_next.hi), db, asm)
        && property_proves_nonneg(&simplify_diff(&rb.lo, &rb_next.lo), db, asm)
        && property_proves_nonneg(&simplify_diff(&rb.hi, &rb_next.hi), db, asm);
    if advancing_down && property_proves_positive(&simplify_diff(&ra.lo, &rb_next.hi), db, asm) {
        return Ok(
            "non-overlapping, monotonically descending subscript ranges in consecutive iterations"
                .to_string(),
        );
    }
    Err("cannot prove the subscript ranges of consecutive iterations disjoint".to_string())
}

/// Tries to prove that a point subscript takes pairwise-distinct values in
/// distinct iterations.
fn injective_subscript(
    p: &Expr,
    var: &str,
    db: &PropertyDatabase,
    guards: &[SymCondition],
) -> Option<String> {
    // Affine in the loop index with non-zero coefficient.
    if let Some((c, _)) = affine_in(p, var) {
        if c != 0 {
            return Some("is affine in the loop index with non-zero stride".to_string());
        }
        return None;
    }
    // c0 + k * b[inner] with b injective and inner itself injective in i.
    let (k, aref, rest_ok) = decompose_single_array_term(p, var);
    if let Some((b, inner)) = aref {
        if k != 0 && rest_ok {
            let inner_injective = affine_in(&inner, var).map(|(c, _)| c != 0).unwrap_or(false)
                || injective_subscript(&inner, var, db, guards).is_some();
            if inner_injective {
                if db.has_property(&b, ArrayProperty::Injective) {
                    return Some(format!("uses injective index array '{b}'"));
                }
                // Guarded subset injectivity (Figure 5): the access is guarded
                // by `b[inner] >= 0` and the non-negative subset is injective.
                let filter = ValueFilter::non_negative();
                let guard_matches = guards.iter().any(|g| {
                    g.op == BinOp::Ge
                        && g.rhs == Expr::Int(0)
                        && sym_eq(&g.lhs, &Expr::ArrayRef(b.clone(), Box::new(inner.clone())))
                });
                if guard_matches && db.has_property_on_subset(&b, &filter, ArrayProperty::Injective)
                {
                    return Some(format!(
                        "uses index array '{b}' whose guarded (non-negative) subset is injective"
                    ));
                }
            }
        }
    }
    None
}

/// Decomposes `p` as `constant/invariant + k * b[inner]` where the remainder
/// does not mention the loop index or any array. Returns `(k, Some((b,
/// inner)), remainder_ok)`.
fn decompose_single_array_term(p: &Expr, var: &str) -> (i64, Option<(String, Expr)>, bool) {
    let s = simplify(p);
    let terms: Vec<Expr> = match s {
        Expr::Add(xs) => xs,
        other => vec![other],
    };
    let mut aref: Option<(String, Expr)> = None;
    let mut coeff = 0i64;
    let mut rest_ok = true;
    for t in terms {
        match &t {
            Expr::ArrayRef(a, idx) => {
                if aref.is_none() {
                    aref = Some((a.clone(), (**idx).clone()));
                    coeff = 1;
                } else {
                    rest_ok = false;
                }
            }
            Expr::Mul(fs) => {
                let mut k = 1i64;
                let mut inner_ref: Option<(String, Expr)> = None;
                let mut clean = true;
                for f in fs {
                    match f {
                        Expr::Int(v) => k *= v,
                        Expr::ArrayRef(a, idx) if inner_ref.is_none() => {
                            inner_ref = Some((a.clone(), (**idx).clone()))
                        }
                        _ => clean = false,
                    }
                }
                match (clean, inner_ref, &aref) {
                    (true, Some(r), None) => {
                        aref = Some(r);
                        coeff = k;
                    }
                    (true, None, _) => {
                        // pure product of invariants
                        if t.contains_sym(var) {
                            rest_ok = false;
                        }
                    }
                    _ => rest_ok = false,
                }
            }
            other => {
                if other.contains_sym(var) || other.contains_any_array_ref() {
                    rest_ok = false;
                }
            }
        }
    }
    (coeff, aref, rest_ok)
}

/// Arrays whose first mention in the loop body is an *unconditional,
/// top-level* declaration: each iteration allocates fresh zeroed storage
/// before any access, so no value flows between iterations.  Arrays first
/// touched elsewhere (or declared only inside a branch or nested loop) do
/// not qualify — an access before the declaration would read the previous
/// iteration's storage.
fn loop_private_arrays(body: &[Stmt]) -> Vec<String> {
    use std::collections::HashSet;

    fn note_expr(e: &ss_ir::ast::AExpr, mentioned: &mut HashSet<String>) {
        e.for_each(&mut |x| {
            if let ss_ir::ast::AExpr::Index(a, _) = x {
                mentioned.insert(a.clone());
            }
        });
    }

    fn note_stmt(s: &Stmt, mentioned: &mut HashSet<String>) {
        match s {
            Stmt::Decl { name, dims, init } => {
                for d in dims {
                    note_expr(d, mentioned);
                }
                if let Some(e) = init {
                    note_expr(e, mentioned);
                }
                if !dims.is_empty() {
                    mentioned.insert(name.clone());
                }
            }
            Stmt::Assign { target, value, .. } => {
                note_expr(value, mentioned);
                for idx in &target.indices {
                    note_expr(idx, mentioned);
                }
                if !target.is_scalar() {
                    mentioned.insert(target.name.clone());
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                note_expr(cond, mentioned);
                for t in then_branch {
                    note_stmt(t, mentioned);
                }
                for e in else_branch {
                    note_stmt(e, mentioned);
                }
            }
            Stmt::For {
                init,
                bound,
                step,
                body,
                ..
            } => {
                note_expr(init, mentioned);
                note_expr(bound, mentioned);
                note_expr(step, mentioned);
                for b in body {
                    note_stmt(b, mentioned);
                }
            }
            Stmt::While { cond, body, .. } => {
                note_expr(cond, mentioned);
                for b in body {
                    note_stmt(b, mentioned);
                }
            }
        }
    }

    let mut mentioned: HashSet<String> = HashSet::new();
    let mut private = Vec::new();
    for s in body {
        if let Stmt::Decl { name, dims, init } = s {
            if !dims.is_empty() {
                // Extent / initializer expressions are evaluated before the
                // declaration takes effect.
                for d in dims {
                    note_expr(d, &mut mentioned);
                }
                if let Some(e) = init {
                    note_expr(e, &mut mentioned);
                }
                if !mentioned.contains(name) && !private.contains(name) {
                    private.push(name.clone());
                }
                mentioned.insert(name.clone());
                continue;
            }
        }
        note_stmt(s, &mut mentioned);
    }
    private
}

/// Scalars assigned in the loop body that are (possibly) read before being
/// written in an iteration — these carry values across iterations and block
/// parallelization (they are not privatizable).
/// True when any statement of `body` (transitively) assigns the scalar
/// `name` — including a nested `for` header reusing it as an index.
fn body_assigns_scalar(body: &[Stmt], name: &str) -> bool {
    body.iter().any(|s| match s {
        Stmt::Assign { target, .. } => target.is_scalar() && target.name == name,
        Stmt::Decl { name: n, dims, .. } => dims.is_empty() && n == name,
        Stmt::For { var, body, .. } => var == name || body_assigns_scalar(body, name),
        Stmt::While { body, .. } => body_assigns_scalar(body, name),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => body_assigns_scalar(then_branch, name) || body_assigns_scalar(else_branch, name),
    })
}

fn non_private_scalars(body: &[Stmt], loop_var: &str) -> Vec<String> {
    use std::collections::HashSet;
    let written_first: HashSet<String> = HashSet::new();
    let mut read_first: Vec<String> = Vec::new();
    let mut assigned: HashSet<String> = HashSet::new();
    // Collect all assigned scalars first.
    fn collect_assigned(stmts: &[Stmt], out: &mut HashSet<String>) {
        for s in stmts {
            match s {
                Stmt::Assign { target, .. } if target.is_scalar() => {
                    out.insert(target.name.clone());
                }
                Stmt::Decl { name, dims, .. } if dims.is_empty() => {
                    out.insert(name.clone());
                }
                Stmt::For { var, body, .. } => {
                    out.insert(var.clone());
                    collect_assigned(body, out);
                }
                Stmt::While { body, .. } => collect_assigned(body, out),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    collect_assigned(then_branch, out);
                    collect_assigned(else_branch, out);
                }
                _ => {}
            }
        }
    }
    collect_assigned(body, &mut assigned);
    assigned.remove(loop_var);

    // Walk in program order; the first dynamic access decides.
    fn note_reads(
        e: &ss_ir::ast::AExpr,
        assigned: &HashSet<String>,
        written: &HashSet<String>,
        read_first: &mut Vec<String>,
    ) {
        e.for_each(&mut |x| {
            if let ss_ir::ast::AExpr::Var(v) = x {
                if assigned.contains(v) && !written.contains(v) && !read_first.contains(v) {
                    read_first.push(v.clone());
                }
            }
        });
    }
    fn walk(
        stmts: &[Stmt],
        assigned: &HashSet<String>,
        written: &mut HashSet<String>,
        read_first: &mut Vec<String>,
    ) {
        for s in stmts {
            match s {
                Stmt::Decl { name, dims, init } => {
                    if let Some(e) = init {
                        note_reads(e, assigned, written, read_first);
                    }
                    if dims.is_empty() {
                        written.insert(name.clone());
                    }
                }
                Stmt::Assign { target, op, value } => {
                    note_reads(value, assigned, written, read_first);
                    for idx in &target.indices {
                        note_reads(idx, assigned, written, read_first);
                    }
                    if *op != ss_ir::ast::AssignOp::Assign && target.is_scalar() {
                        // compound assignment reads the target first
                        if assigned.contains(&target.name)
                            && !written.contains(&target.name)
                            && !read_first.contains(&target.name)
                        {
                            read_first.push(target.name.clone());
                        }
                    }
                    if target.is_scalar() {
                        written.insert(target.name.clone());
                    }
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    note_reads(cond, assigned, written, read_first);
                    // A write inside a branch only counts as "written before
                    // read" for later code if it happens on both paths; be
                    // conservative and only propagate the intersection.
                    let mut then_written = written.clone();
                    let mut else_written = written.clone();
                    walk(then_branch, assigned, &mut then_written, read_first);
                    walk(else_branch, assigned, &mut else_written, read_first);
                    *written = then_written.intersection(&else_written).cloned().collect();
                }
                Stmt::For {
                    var,
                    init,
                    bound,
                    step,
                    body,
                    ..
                } => {
                    note_reads(init, assigned, written, read_first);
                    note_reads(bound, assigned, written, read_first);
                    note_reads(step, assigned, written, read_first);
                    // The header init always runs, the body may run zero
                    // times: the index var counts as written, the body's
                    // writes do not dominate anything after the loop.
                    // Exposed reads inside the body are still detected
                    // against a scratch copy (found by the cross-engine
                    // fuzz harness: a plain write buried in a 0-trip inner
                    // loop must not make a later compound read look
                    // privatizable).
                    written.insert(var.clone());
                    let mut inner = written.clone();
                    walk(body, assigned, &mut inner, read_first);
                }
                Stmt::While { cond, body, .. } => {
                    note_reads(cond, assigned, written, read_first);
                    let mut inner = written.clone();
                    walk(body, assigned, &mut inner, read_first);
                }
            }
        }
    }
    let mut written: HashSet<String> = HashSet::new();
    walk(body, &assigned, &mut written, &mut read_first);
    let _ = written_first;
    read_first
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_aggregation::analyze_program;
    use ss_ir::parser::parse_program;

    /// Runs the full pipeline (aggregation + extended Range Test) and returns
    /// the verdict for the given loop, plus the baseline verdict.
    fn verdicts(src: &str, loop_id: u32) -> (LoopVerdict, LoopVerdict) {
        let p = parse_program("t", src).unwrap();
        let analysis = analyze_program(&p);
        let tree = LoopTree::build(&p);
        let extended = test_loop(
            &p,
            &tree,
            LoopId(loop_id),
            analysis.db_for_loop(LoopId(loop_id)),
            &RangeTestConfig::default(),
        );
        let baseline = test_loop(
            &p,
            &tree,
            LoopId(loop_id),
            analysis.db_for_loop(LoopId(loop_id)),
            &RangeTestConfig::baseline(),
        );
        (extended, baseline)
    }

    #[test]
    fn loop_local_array_declarations_are_private() {
        // scratch is re-declared every iteration: its writes repeat the same
        // indices across iterations but carry no dependence.
        let src = r#"
            for (i = 0; i < n; i++) {
                int scratch[8];
                for (t = 0; t < 8; t++) {
                    scratch[t] = dense[i][t] * 2;
                }
                for (t = 0; t < 8; t++) {
                    out[i * 8 + t] = scratch[t] + 1;
                }
            }
        "#;
        let (extended, baseline) = verdicts(src, 0);
        assert!(extended.parallel, "blockers: {:?}", extended.blockers);
        assert!(extended
            .reasons
            .iter()
            .any(|r| r.contains("scratch") && r.contains("private")));
        // Privatization is conventional compiler technology, available to
        // the baseline too.
        assert!(baseline.parallel);
    }

    #[test]
    fn arrays_touched_before_their_declaration_are_not_private() {
        // The first mention reads the previous iteration's storage: a real
        // cross-iteration flow the test must keep.
        let src = r#"
            for (i = 0; i < n; i++) {
                out[i] = scratch[0];
                int scratch[8];
                for (t = 0; t < 8; t++) { scratch[t] = i; }
            }
        "#;
        let (extended, _) = verdicts(src, 0);
        assert!(!extended.parallel);
        assert!(extended.blockers.iter().any(|b| b.contains("scratch")));

        // Declared only inside a branch: not unconditional, not private.
        let src = r#"
            for (i = 0; i < n; i++) {
                if (i % 2 == 0) {
                    int scratch[4];
                    scratch[0] = i;
                }
                out[i] = i;
            }
        "#;
        let (extended, _) = verdicts(src, 0);
        assert!(!extended.parallel);
    }

    #[test]
    fn figure2_injective_index_array_enables_parallelization() {
        // Filling code gives mt_to_id a strictly-monotonic (hence injective)
        // content; the transfer loop then writes through it.
        let src = r#"
            for (e = 0; e < nelt; e++) {
                mt_to_id[e] = e;
            }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#;
        let (extended, baseline) = verdicts(src, 1);
        assert!(extended.parallel, "blockers: {:?}", extended.blockers);
        assert!(extended.reasons.iter().any(|r| r.contains("injective")));
        assert!(!baseline.parallel);
    }

    #[test]
    fn figure3_monotonic_rowstr_enables_parallelization() {
        let src = r#"
            rowstr[0] = 0;
            for (r = 1; r <= nrows; r++) {
                rowstr[r] = rowstr[r-1] + rowcount[r-1];
            }
            for (j = 0; j < nrows; j++) {
                for (k = rowstr[j]; k < rowstr[j+1]; k++) {
                    colidx[k] = colidx[k] - firstcol;
                }
            }
        "#;
        // rowcount has no known sign, so first give it one via a counting loop.
        let src_full = format!(
            r#"
            for (i = 0; i < nrows; i++) {{
                cnt = 0;
                for (t = 0; t < ncols; t++) {{
                    if (dense[i][t] != 0) {{ cnt++; }}
                }}
                rowcount[i] = cnt;
            }}
            {src}
        "#
        );
        let (extended, baseline) = verdicts(&src_full, 3);
        assert!(extended.parallel, "blockers: {:?}", extended.blockers);
        assert!(!baseline.parallel);
        // The inner k-loop itself: subscript k is affine in k, parallel even
        // for the baseline.
        let (inner_ext, inner_base) = verdicts(&src_full, 4);
        assert!(inner_ext.parallel);
        assert!(inner_base.parallel);
    }

    #[test]
    fn figure5_guarded_injective_subset() {
        // jmatch gets an injective fill for the matched rows and -1 for the
        // rest — modelled by a guarded identity fill; the compile-time
        // analysis records the guarded-subset injectivity.
        let src = r#"
            for (r = 0; r < m; r++) {
                if (matched[r] > 0) {
                    jmatch[r] = r;
                } else {
                    jmatch[r] = 0 - 1;
                }
            }
            for (i = 0; i < m; i++) {
                if (jmatch[i] >= 0) {
                    imatch[jmatch[i]] = i;
                }
            }
        "#;
        let (extended, baseline) = verdicts(src, 1);
        assert!(!baseline.parallel);
        // The guarded-subset fact requires the subset fill to be recognized;
        // the write through jmatch[i] under the guard jmatch[i] >= 0 is then
        // provably conflict-free.
        assert!(extended.parallel, "blockers: {:?}", extended.blockers);
    }

    #[test]
    fn figure6_simultaneous_monotonic_and_injective() {
        let src = r#"
            for (b = 0; b < nb; b++) {
                bs = 0;
                for (t = 0; t < bmax; t++) {
                    if (members[b][t] > 0) { bs++; }
                }
                blocksize[b] = bs;
            }
            r[0] = 0;
            for (b = 1; b <= nb; b++) {
                r[b] = r[b-1] + blocksize[b-1];
            }
            for (k = 0; k < nzb; k++) {
                p[k] = k;
            }
            for (b = 0; b < nb; b++) {
                for (k = r[b]; k < r[b+1]; k++) {
                    Blk[p[k]] = b;
                }
            }
        "#;
        let (extended, baseline) = verdicts(src, 4);
        assert!(extended.parallel, "blockers: {:?}", extended.blockers);
        assert!(extended
            .reasons
            .iter()
            .any(|r| r.contains("injective index array 'p'")));
        assert!(!baseline.parallel);
    }

    #[test]
    fn figure9_product_loop() {
        let src = r#"
            index = 0;
            ind = 0;
            for (i = 0; i < ROWLEN; i++) {
                count = 0;
                for (j = 0; j < COLUMNLEN; j++) {
                    if (a[i][j] != 0) {
                        count++;
                        column_number[index] = j;
                        index++;
                        value[ind] = a[i][j];
                        ind++;
                    }
                }
                rowsize[i] = count;
            }
            rowptr[0] = 0;
            for (i = 1; i < ROWLEN + 1; i++) {
                rowptr[i] = rowptr[i-1] + rowsize[i-1];
            }
            for (i = 0; i < ROWLEN+1; i++) {
                if (i == 0) {
                    j1 = i;
                } else {
                    j1 = rowptr[i-1];
                }
                for (j = j1; j < rowptr[i]; j++) {
                    product_array[j] = value[j] * vector[j];
                }
            }
        "#;
        let (extended, baseline) = verdicts(src, 3);
        assert!(extended.parallel, "blockers: {:?}", extended.blockers);
        assert!(!baseline.parallel);
    }

    #[test]
    fn output_dependences_are_detected_when_properties_are_absent() {
        // idx has no derivable property (it is read from input): the loop
        // must stay serial even for the extended test.
        let src = r#"
            for (i = 0; i < n; i++) {
                hist[idx[i]] = i;
            }
        "#;
        let (extended, baseline) = verdicts(src, 0);
        assert!(!extended.parallel);
        assert!(!baseline.parallel);
    }

    #[test]
    fn true_dependences_block_parallelization() {
        // A genuine loop-carried flow dependence: a[i] = a[i-1] + 1.
        let src = "for (i = 1; i < n; i++) { a[i] = a[i-1] + 1; }";
        let (extended, _) = verdicts(src, 0);
        assert!(!extended.parallel);
        // A scalar carried across iterations (running sum) also blocks.
        let src = "for (i = 0; i < n; i++) { s = s + b[i]; c[i] = s; }";
        let (extended, _) = verdicts(src, 0);
        assert!(!extended.parallel);
        assert!(extended.blockers.iter().any(|b| b.contains("scalar 's'")));
    }

    #[test]
    fn private_scalars_do_not_block() {
        let src = "for (i = 0; i < n; i++) { t = b[i] * 2; c[i] = t; }";
        let (extended, baseline) = verdicts(src, 0);
        assert!(extended.parallel);
        assert!(baseline.parallel);
    }

    #[test]
    fn figure7_disjoint_strided_expressions() {
        // Simplified Figure 7/8 shape: the write subscript is
        // 7*front[index] + i with front strictly monotonic (filled as a
        // prefix sum of positive counts); successive outer iterations write
        // disjoint 7-element groups.
        let src = r#"
            front[0] = 1;
            for (f = 1; f < num_refine; f++) {
                front[f] = front[f-1] + 1;
            }
            for (idx = 0; idx < num_refine; idx++) {
                nelt = (front[idx] - 1) * 7;
                for (i = 0; i < 7; i++) {
                    tree[nelt + i] = idx + (i + 1) % 8;
                }
            }
        "#;
        let (extended, baseline) = verdicts(src, 1);
        assert!(extended.parallel, "blockers: {:?}", extended.blockers);
        assert!(!baseline.parallel);
    }
}
