//! # ss-deptest — data-dependence testing with index-array properties
//!
//! The extended Range Test of Section 5 of the paper, plus the baseline it is
//! compared against:
//!
//! * [`access`] — per-iteration access descriptors (points, ranges produced
//!   by inner loops, images of index arrays);
//! * [`monotone`] — property-aware sign determination
//!   (`rowstr[i+1] - rowstr[i] >= 0` given `Monotonic_inc`);
//! * [`range_test`] — the per-loop parallel/serial verdict, with
//!   [`range_test::RangeTestConfig::baseline`] modelling what conventional
//!   compilers (Cetus, ICC, PGI in the paper's study) conclude without
//!   subscripted-subscript reasoning.
//!
//! ```
//! use ss_aggregation::analyze_program;
//! use ss_deptest::{test_loop, RangeTestConfig};
//! use ss_ir::{parse_program, LoopId, LoopTree};
//!
//! let p = parse_program("fig2", r#"
//!     for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
//!     for (miel = 0; miel < nelt; miel++) {
//!         iel = mt_to_id[miel];
//!         id_to_mt[iel] = miel;
//!     }
//! "#).unwrap();
//! let analysis = analyze_program(&p);
//! let tree = LoopTree::build(&p);
//! let verdict = test_loop(&p, &tree, LoopId(1), analysis.db_for_loop(LoopId(1)),
//!                         &RangeTestConfig::default());
//! assert!(verdict.parallel);
//! let baseline = test_loop(&p, &tree, LoopId(1), analysis.db_for_loop(LoopId(1)),
//!                          &RangeTestConfig::baseline());
//! assert!(!baseline.parallel);
//! ```

pub mod access;
pub mod monotone;
pub mod range_test;

pub use access::{collect_iteration_accesses, AccessRegion, DescriptorSet, IterationAccess};
pub use monotone::{property_lower_bound, property_proves_nonneg, property_proves_positive};
pub use range_test::{test_loop, test_program, LoopVerdict, RangeTestConfig};
