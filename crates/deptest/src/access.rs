//! Per-iteration access descriptors.
//!
//! For the loop under test, every array access is described by the region it
//! touches *as a function of the loop index* `i`:
//!
//! * [`AccessRegion::Point`] — a single element, e.g. `mt_to_id[miel]` or
//!   `miel + 7*front[miel]`;
//! * [`AccessRegion::Range`] — a contiguous range produced by an inner loop,
//!   e.g. `[rowstr[i] : rowstr[i+1]-1]` (Figure 3 / Figure 9);
//! * [`AccessRegion::Indirect`] — an inner loop writing through an index
//!   array, e.g. `Blk[p[k]]` for `k` in `[r[b] : r[b+1]-1]` (Figure 6): the
//!   touched set is the image of the `k`-range under `p`;
//! * [`AccessRegion::Unknown`] — anything the analysis cannot describe.
//!
//! Scalar chains (`iel = mt_to_id[miel]; id_to_mt[iel] = ...`) are resolved
//! with the symbolic environment, and `if`/`else` statements split the
//! analysis into guarded *configurations* so that conditionally-defined
//! bounds (the `j1` of Figure 9) keep their exact per-branch values.

use ss_ir::ast::{AExpr, AssignOp, Stmt};
use ss_ir::convert::{to_condition, SymCondition};
use ss_ir::loops::{LoopInfo, LoopTree};
use ss_rangeprop::{eval_exact, eval_range, refine_with_condition, Env};
use ss_symbolic::simplify::affine_in;
use ss_symbolic::subst::subst_sym;
use ss_symbolic::{simplify, Expr, SymRange};

/// The elements an access touches in one iteration of the tested loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessRegion {
    /// A single element at the given subscript.
    Point(Expr),
    /// A contiguous subscript range.
    Range(SymRange),
    /// The image of a subscript range under an index array:
    /// `{ array[k] : k in range }`.
    Indirect {
        /// The index array applied to the range.
        array: String,
        /// The range of its arguments.
        range: SymRange,
    },
    /// Not describable.
    Unknown,
}

/// One access (read or write) of one iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationAccess {
    /// Accessed array.
    pub array: String,
    /// Whether the access writes the array.
    pub is_write: bool,
    /// The touched region as a function of the loop index.
    pub region: AccessRegion,
    /// Guard conditions (with resolved operands) under which the access
    /// executes.
    pub guards: Vec<SymCondition>,
    /// True if some guard on the path could not be represented.
    pub under_unknown_guard: bool,
}

/// All per-iteration accesses of a loop.
#[derive(Debug, Clone, Default)]
pub struct DescriptorSet {
    /// The accesses.
    pub accesses: Vec<IterationAccess>,
    /// Human-readable notes about constructs that had to be treated as
    /// unknown.
    pub notes: Vec<String>,
}

impl DescriptorSet {
    /// Arrays written at least once.
    pub fn written_arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        for a in &self.accesses {
            if a.is_write && !out.contains(&a.array) {
                out.push(a.array.clone());
            }
        }
        out
    }

    /// All accesses touching the given array.
    pub fn for_array(&self, array: &str) -> Vec<&IterationAccess> {
        self.accesses.iter().filter(|a| a.array == array).collect()
    }
}

const MAX_CONFIGS: usize = 16;

#[derive(Clone)]
struct Config {
    env: Env,
    guards: Vec<SymCondition>,
    unknown_guard: bool,
}

/// Collects the per-iteration access descriptors of a loop.
pub fn collect_iteration_accesses(
    info: &LoopInfo,
    body: &[Stmt],
    tree: &LoopTree,
) -> DescriptorSet {
    let mut out = DescriptorSet::default();
    let mut env = Env::new();
    env.set_scalar(info.var.clone(), SymRange::exact(Expr::sym(&info.var)));
    if info.first != Expr::Bottom && info.last != Expr::Bottom {
        env.assumptions
            .assume_range(info.var.clone(), info.index_range());
    }
    let mut configs = vec![Config {
        env,
        guards: Vec::new(),
        unknown_guard: false,
    }];
    walk(body, &mut configs, tree, &mut out);
    dedupe(&mut out);
    out
}

fn dedupe(out: &mut DescriptorSet) {
    let mut seen: Vec<IterationAccess> = Vec::new();
    for a in out.accesses.drain(..) {
        if !seen.contains(&a) {
            seen.push(a);
        }
    }
    out.accesses = seen;
}

fn walk(stmts: &[Stmt], configs: &mut Vec<Config>, tree: &LoopTree, out: &mut DescriptorSet) {
    for s in stmts {
        walk_stmt(s, configs, tree, out);
    }
}

fn walk_stmt(s: &Stmt, configs: &mut Vec<Config>, tree: &LoopTree, out: &mut DescriptorSet) {
    match s {
        Stmt::Decl { name, dims, init } => {
            if dims.is_empty() {
                for cfg in configs.iter_mut() {
                    match init {
                        Some(e) => {
                            record_reads(e, cfg, out);
                            let r = eval_range(&cfg.env, e);
                            cfg.env.set_scalar(name.clone(), r);
                        }
                        None => cfg.env.set_scalar(name.clone(), SymRange::unknown()),
                    }
                }
            }
        }
        Stmt::Assign { target, op, value } => {
            for cfg in configs.iter_mut() {
                // Reads: RHS, target indices, and the target itself for
                // compound assignments.
                record_reads(value, cfg, out);
                for idx in &target.indices {
                    record_reads(idx, cfg, out);
                }
                let read_target = if target.is_scalar() {
                    AExpr::Var(target.name.clone())
                } else {
                    AExpr::Index(target.name.clone(), target.indices.clone())
                };
                if *op != AssignOp::Assign && !target.is_scalar() {
                    record_access(&target.name, &target.indices, false, cfg, out);
                }
                let rhs = match op {
                    AssignOp::Assign => value.clone(),
                    AssignOp::AddAssign => AExpr::add(read_target.clone(), value.clone()),
                    AssignOp::SubAssign => AExpr::sub(read_target.clone(), value.clone()),
                    AssignOp::MulAssign => AExpr::mul(read_target.clone(), value.clone()),
                };
                if target.is_scalar() {
                    let r = eval_range(&cfg.env, &rhs);
                    cfg.env.set_scalar(target.name.clone(), r);
                } else {
                    record_access(&target.name, &target.indices, true, cfg, out);
                }
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            for cfg in configs.iter_mut() {
                record_reads(cond, cfg, out);
            }
            let sym_cond = to_condition(cond);
            let representable = sym_cond.is_some() && configs.len() * 2 <= MAX_CONFIGS;
            if representable {
                let c = sym_cond.unwrap();
                let mut then_configs: Vec<Config> = configs
                    .iter()
                    .map(|cfg| {
                        let mut t = cfg.clone();
                        refine_with_condition(&mut t.env, &c, true);
                        t.guards.push(resolve_condition(&cfg.env, &c));
                        t
                    })
                    .collect();
                let mut else_configs: Vec<Config> = configs
                    .iter()
                    .map(|cfg| {
                        let mut e = cfg.clone();
                        refine_with_condition(&mut e.env, &c, false);
                        e.guards.push(resolve_condition(&cfg.env, &c).negate());
                        e
                    })
                    .collect();
                walk(then_branch, &mut then_configs, tree, out);
                walk(else_branch, &mut else_configs, tree, out);
                configs.clear();
                configs.append(&mut then_configs);
                configs.append(&mut else_configs);
            } else {
                // Unrepresentable or too many configurations: analyze both
                // branches under an unknown guard without splitting.
                let mut marked: Vec<Config> = configs
                    .iter()
                    .map(|cfg| {
                        let mut m = cfg.clone();
                        m.unknown_guard = true;
                        m
                    })
                    .collect();
                walk(then_branch, &mut marked, tree, out);
                walk(else_branch, &mut marked, tree, out);
                // Scalar values after the branches are uncertain; merge the
                // branch environments into the originals conservatively.
                for (orig, m) in configs.iter_mut().zip(marked.iter()) {
                    orig.env = orig.env.merge(&m.env);
                }
            }
        }
        Stmt::For { id, var, body, .. } => {
            let info = tree.get(*id).cloned();
            for cfg in configs.iter_mut() {
                match &info {
                    Some(inner) if inner.is_normalized => {
                        summarize_inner_loop(inner, body, cfg, tree, out);
                    }
                    _ => {
                        mark_unknown_writes(body, cfg, out);
                        out.notes
                            .push(format!("inner loop {id} is not a canonical counted loop"));
                    }
                }
                // Scalars the inner loop modifies have unknown values after it.
                for name in scalars_assigned_in(body) {
                    cfg.env.set_scalar(name, SymRange::unknown());
                }
                cfg.env.set_scalar(var.clone(), SymRange::unknown());
            }
        }
        Stmt::While { body, .. } => {
            for cfg in configs.iter_mut() {
                mark_unknown_writes(body, cfg, out);
                for name in scalars_assigned_in(body) {
                    cfg.env.set_scalar(name, SymRange::unknown());
                }
            }
            out.notes.push("while loop treated as unknown".to_string());
        }
    }
}

/// Resolves the operands of a guard condition with the configuration's
/// current scalar values, so the guard stays meaningful after the scalars go
/// out of scope.
fn resolve_condition(env: &Env, c: &SymCondition) -> SymCondition {
    let resolve = |e: &Expr| -> Expr {
        let mut cur = e.clone();
        for name in e.symbols() {
            if env.has_scalar(&name) {
                if let Some(v) = env.scalar(&name).as_exact() {
                    cur = subst_sym(&cur, &name, v);
                }
            }
        }
        simplify(&cur)
    };
    SymCondition {
        lhs: resolve(&c.lhs),
        op: c.op,
        rhs: resolve(&c.rhs),
    }
}

fn record_reads(e: &AExpr, cfg: &Config, out: &mut DescriptorSet) {
    match e {
        AExpr::IntLit(_) | AExpr::Var(_) => {}
        AExpr::Index(a, idxs) => {
            for idx in idxs {
                record_reads(idx, cfg, out);
            }
            record_access(a, idxs, false, cfg, out);
        }
        AExpr::Binary(_, x, y) => {
            record_reads(x, cfg, out);
            record_reads(y, cfg, out);
        }
        AExpr::Unary(_, x) => record_reads(x, cfg, out),
    }
}

fn record_access(
    array: &str,
    indices: &[AExpr],
    is_write: bool,
    cfg: &Config,
    out: &mut DescriptorSet,
) {
    let region = if indices.len() == 1 {
        let exact = eval_exact(&cfg.env, &indices[0]);
        if exact != Expr::Bottom {
            AccessRegion::Point(exact)
        } else {
            let r = eval_range(&cfg.env, &indices[0]);
            if r.has_unknown_bound() {
                AccessRegion::Unknown
            } else {
                AccessRegion::Range(r)
            }
        }
    } else {
        AccessRegion::Unknown
    };
    out.accesses.push(IterationAccess {
        array: array.to_string(),
        is_write,
        region,
        guards: cfg.guards.clone(),
        under_unknown_guard: cfg.unknown_guard,
    });
}

/// Summarizes the accesses of a (normalized) inner loop as regions over the
/// outer iteration.
fn summarize_inner_loop(
    inner: &LoopInfo,
    body: &[Stmt],
    cfg: &Config,
    tree: &LoopTree,
    out: &mut DescriptorSet,
) {
    // Resolve the inner bounds with the outer configuration's scalar values.
    let lo = resolve_expr(&cfg.env, &inner.first);
    let hi = resolve_expr(&cfg.env, &inner.last);
    if lo == Expr::Bottom || hi == Expr::Bottom {
        mark_unknown_writes(body, cfg, out);
        out.notes.push(format!(
            "bounds of inner loop {} could not be resolved",
            inner.id
        ));
        return;
    }
    // Collect the inner loop's own per-iteration accesses (in terms of the
    // inner index), then map them through the inner iteration range.
    let mut inner_env = cfg.env.clone();
    // Scalars the inner body itself modifies do not have a single value
    // across its iterations; subscripts through them are unknown.
    for name in scalars_assigned_in(body) {
        if name != inner.var {
            inner_env.set_scalar(name, SymRange::unknown());
        }
    }
    inner_env.set_scalar(inner.var.clone(), SymRange::exact(Expr::sym(&inner.var)));
    inner_env
        .assumptions
        .assume_range(inner.var.clone(), SymRange::new(lo.clone(), hi.clone()));
    let mut inner_configs = vec![Config {
        env: inner_env,
        guards: cfg.guards.clone(),
        unknown_guard: cfg.unknown_guard,
    }];
    let mut inner_set = DescriptorSet::default();
    walk(body, &mut inner_configs, tree, &mut inner_set);
    out.notes.append(&mut inner_set.notes);
    for acc in inner_set.accesses {
        let region = project_region(&acc.region, &inner.var, &lo, &hi);
        out.accesses.push(IterationAccess {
            array: acc.array,
            is_write: acc.is_write,
            region,
            guards: acc.guards,
            under_unknown_guard: acc.under_unknown_guard,
        });
    }
}

/// Maps a region expressed over an inner index `k ∈ [lo : hi]` to a region
/// over the outer iteration.
fn project_region(region: &AccessRegion, var: &str, lo: &Expr, hi: &Expr) -> AccessRegion {
    match region {
        AccessRegion::Unknown => AccessRegion::Unknown,
        AccessRegion::Point(p) => {
            if !p.contains_sym(var) {
                return AccessRegion::Point(p.clone());
            }
            if let Some((coeff, _)) = affine_in(p, var) {
                let at_lo = simplify(&subst_sym(p, var, lo));
                let at_hi = simplify(&subst_sym(p, var, hi));
                return if coeff >= 0 {
                    AccessRegion::Range(SymRange::new(at_lo, at_hi))
                } else {
                    AccessRegion::Range(SymRange::new(at_hi, at_lo))
                };
            }
            // The Figure 6 shape: an index array applied to the inner index.
            if let Expr::ArrayRef(a, idx) = p {
                if let Some((coeff, _)) = affine_in(idx, var) {
                    let at_lo = simplify(&subst_sym(idx, var, lo));
                    let at_hi = simplify(&subst_sym(idx, var, hi));
                    let range = if coeff >= 0 {
                        SymRange::new(at_lo, at_hi)
                    } else {
                        SymRange::new(at_hi, at_lo)
                    };
                    return AccessRegion::Indirect {
                        array: a.clone(),
                        range,
                    };
                }
            }
            AccessRegion::Unknown
        }
        AccessRegion::Range(r) => {
            let ok = |b: &Expr| -> bool {
                !b.contains_sym(var) || affine_in(b, var).map(|(c, _)| c >= 0).unwrap_or(false)
            };
            if ok(&r.lo) && ok(&r.hi) {
                AccessRegion::Range(SymRange::new(
                    simplify(&subst_sym(&r.lo, var, lo)),
                    simplify(&subst_sym(&r.hi, var, hi)),
                ))
            } else {
                AccessRegion::Unknown
            }
        }
        AccessRegion::Indirect { array, range } => {
            let ok = |b: &Expr| -> bool {
                !b.contains_sym(var) || affine_in(b, var).map(|(c, _)| c >= 0).unwrap_or(false)
            };
            if ok(&range.lo) && ok(&range.hi) {
                AccessRegion::Indirect {
                    array: array.clone(),
                    range: SymRange::new(
                        simplify(&subst_sym(&range.lo, var, lo)),
                        simplify(&subst_sym(&range.hi, var, hi)),
                    ),
                }
            } else {
                AccessRegion::Unknown
            }
        }
    }
}

/// Resolves a symbolic expression with a configuration's exactly-known
/// scalar values.
fn resolve_expr(env: &Env, e: &Expr) -> Expr {
    if *e == Expr::Bottom {
        return Expr::Bottom;
    }
    let mut cur = e.clone();
    for _ in 0..8 {
        let mut changed = false;
        for name in cur.clone().symbols() {
            if env.has_scalar(&name) {
                match env.scalar(&name).as_exact() {
                    Some(v) if !v.contains_sym(&name) => {
                        cur = subst_sym(&cur, &name, v);
                        changed = true;
                    }
                    Some(_) => {}
                    None => return Expr::Bottom,
                }
            }
        }
        if !changed {
            break;
        }
    }
    simplify(&cur)
}

/// Names of scalars assigned anywhere in a statement list.
fn scalars_assigned_in(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn rec(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Assign { target, .. }
                    if target.is_scalar() && !out.contains(&target.name) =>
                {
                    out.push(target.name.clone());
                }
                Stmt::Decl { name, dims, .. } if dims.is_empty() && !out.contains(name) => {
                    out.push(name.clone());
                }
                Stmt::For { var, body, .. } => {
                    if !out.contains(var) {
                        out.push(var.clone());
                    }
                    rec(body, out);
                }
                Stmt::While { body, .. } => rec(body, out),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    rec(then_branch, out);
                    rec(else_branch, out);
                }
                _ => {}
            }
        }
    }
    rec(stmts, &mut out);
    out
}

/// Records every array written in an unanalyzable construct as an unknown
/// write.
fn mark_unknown_writes(stmts: &[Stmt], cfg: &Config, out: &mut DescriptorSet) {
    for s in stmts {
        match s {
            Stmt::Assign { target, .. } if !target.is_scalar() => {
                out.accesses.push(IterationAccess {
                    array: target.name.clone(),
                    is_write: true,
                    region: AccessRegion::Unknown,
                    guards: cfg.guards.clone(),
                    under_unknown_guard: true,
                });
            }
            _ => {
                for block in s.child_blocks() {
                    mark_unknown_writes(block, cfg, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::ast::{BinOp, LoopId};
    use ss_ir::parser::parse_program;

    fn descriptors(src: &str) -> DescriptorSet {
        let p = parse_program("t", src).unwrap();
        let tree = LoopTree::build(&p);
        let info = tree.get(LoopId(0)).unwrap();
        let ss_ir::Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        collect_iteration_accesses(info, body, &tree)
    }

    #[test]
    fn figure2_point_write_through_index_array() {
        let d = descriptors(
            r#"
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#,
        );
        let writes: Vec<_> = d.for_array("id_to_mt");
        assert_eq!(writes.len(), 1);
        assert_eq!(
            writes[0].region,
            AccessRegion::Point(Expr::array_ref("mt_to_id", Expr::sym("miel")))
        );
        assert!(writes[0].is_write);
        // mt_to_id itself is only read
        assert!(d.for_array("mt_to_id").iter().all(|a| !a.is_write));
    }

    #[test]
    fn figure3_inner_loop_becomes_a_range() {
        let d = descriptors(
            r#"
            for (j = 0; j < nrows; j++) {
                for (k = rowstr[j]; k < rowstr[j+1]; k++) {
                    colidx[k] = colidx[k] - firstcol;
                }
            }
        "#,
        );
        let accs = d.for_array("colidx");
        // one read and one write, both covering [rowstr[j] : rowstr[j+1]-1]
        assert_eq!(accs.len(), 2);
        for a in accs {
            let AccessRegion::Range(r) = &a.region else {
                panic!("expected range, got {:?}", a.region);
            };
            assert_eq!(r.lo, Expr::array_ref("rowstr", Expr::sym("j")));
            assert_eq!(
                r.hi,
                simplify(&Expr::sub(
                    Expr::array_ref("rowstr", Expr::add(Expr::sym("j"), Expr::int(1))),
                    Expr::int(1)
                ))
            );
        }
    }

    #[test]
    fn figure5_guarded_point_write() {
        let d = descriptors(
            r#"
            for (i = 0; i < m; i++) {
                if (jmatch[i] >= 0) {
                    imatch[jmatch[i]] = i;
                }
            }
        "#,
        );
        let w = &d.for_array("imatch")[0];
        assert!(w.is_write);
        assert_eq!(
            w.region,
            AccessRegion::Point(Expr::array_ref("jmatch", Expr::sym("i")))
        );
        assert_eq!(w.guards.len(), 1);
        assert_eq!(w.guards[0].op, BinOp::Ge);
    }

    #[test]
    fn figure6_indirect_region() {
        let d = descriptors(
            r#"
            for (b = 0; b < nb; b++) {
                for (k = r[b]; k < r[b+1]; k++) {
                    Blk[p[k]] = b;
                }
            }
        "#,
        );
        let w = &d.for_array("Blk")[0];
        let AccessRegion::Indirect { array, range } = &w.region else {
            panic!("expected indirect region, got {:?}", w.region);
        };
        assert_eq!(array, "p");
        assert_eq!(range.lo, Expr::array_ref("r", Expr::sym("b")));
    }

    #[test]
    fn figure9_product_loop_splits_on_the_first_iteration_guard() {
        let d = descriptors(
            r#"
            for (i = 0; i < ROWLEN+1; i++) {
                if (i == 0) {
                    j1 = i;
                } else {
                    j1 = rowptr[i-1];
                }
                for (j = j1; j < rowptr[i]; j++) {
                    product_array[j] = value[j] * vector[j];
                }
            }
        "#,
        );
        let writes: Vec<_> = d
            .for_array("product_array")
            .into_iter()
            .filter(|a| a.is_write)
            .collect();
        // Two configurations: i == 0 (j1 = i, and i is pinned to 0) and
        // i != 0 (j1 = rowptr[i-1]).
        assert_eq!(writes.len(), 2);
        let first_iter = writes
            .iter()
            .find(|w| w.guards[0].op == BinOp::Eq)
            .expect("i == 0 configuration");
        let AccessRegion::Range(r0) = &first_iter.region else {
            panic!()
        };
        assert_eq!(r0.lo, Expr::Int(0));
        assert_eq!(
            r0.hi,
            simplify(&Expr::sub(
                Expr::array_ref("rowptr", Expr::int(0)),
                Expr::int(1)
            ))
        );
        let rest = writes
            .iter()
            .find(|w| w.guards[0].op == BinOp::Ne)
            .expect("i != 0 configuration");
        let AccessRegion::Range(r1) = &rest.region else {
            panic!()
        };
        assert_eq!(
            r1.lo,
            Expr::array_ref("rowptr", Expr::add(Expr::Int(-1), Expr::sym("i")))
        );
        assert_eq!(
            r1.hi,
            simplify(&Expr::sub(
                Expr::array_ref("rowptr", Expr::sym("i")),
                Expr::int(1)
            ))
        );
    }

    #[test]
    fn unknown_constructs_are_marked() {
        let d = descriptors(
            r#"
            for (i = 0; i < n; i++) {
                while (q[i] > 0) {
                    out[q[i]] = i;
                }
            }
        "#,
        );
        let w = &d.for_array("out")[0];
        assert_eq!(w.region, AccessRegion::Unknown);
        assert!(!d.notes.is_empty());
    }

    #[test]
    fn two_dimensional_targets_are_unknown() {
        let d = descriptors("for (i = 0; i < n; i++) { grid[i][0] = 1; }");
        assert_eq!(d.for_array("grid")[0].region, AccessRegion::Unknown);
    }
}
