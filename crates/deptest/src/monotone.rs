//! Property-aware sign determination.
//!
//! The extended Range Test must bound differences such as
//! `rowstr[i+1] - rowstr[i]` or `7*front[i+1] - 7*front[i] + 1`.  Plain
//! interval reasoning cannot: the array elements are unknown.  What it *can*
//! use are the index-array properties derived by the aggregation pass:
//! if `rowstr` is `Monotonic_inc`, then `rowstr[x] - rowstr[y] >= 0` whenever
//! `x >= y` (and `>= x - y` when strictly monotonic).
//!
//! [`property_lower_bound`] computes a conservative constant lower bound of a
//! difference expression by pairing up positive and negative references to
//! the same array and discharging each pair with the database's properties.

use ss_properties::{ArrayProperty, PropertyDatabase};
use ss_symbolic::relation::Assumptions;
use ss_symbolic::{simplify, simplify_diff, Expr};

/// Computes a conservative constant lower bound for `e`, using both the
/// relational assumptions and the index-array properties in `db`.
/// Returns `None` if no bound can be established.
pub fn property_lower_bound(e: &Expr, db: &PropertyDatabase, asm: &Assumptions) -> Option<i64> {
    let s = simplify(e);
    if s == Expr::Bottom {
        return None;
    }
    if let Some(v) = asm.lower_bound(&s) {
        return Some(v);
    }
    // Decompose into terms; try to pair +k*a[x] with -k*a[y].
    let Expr::Add(terms) = s.clone() else {
        return single_term_bound(&s, db, asm);
    };
    let mut parsed: Vec<ParsedTerm> = Vec::new();
    for t in &terms {
        parsed.push(parse_term(t));
    }
    let mut used = vec![false; parsed.len()];
    let mut total: i64 = 0;
    // Pair array-reference terms of opposite sign on the same array.
    for i in 0..parsed.len() {
        if used[i] {
            continue;
        }
        let (ci, Some((ai, xi)), _) = &parsed[i] else {
            continue;
        };
        for j in 0..parsed.len() {
            if i == j || used[j] {
                continue;
            }
            let (cj, Some((aj, xj)), _) = &parsed[j] else {
                continue;
            };
            if ai != aj || *ci != -*cj || *ci == 0 {
                continue;
            }
            // ci*a[xi] + cj*a[xj] with cj = -ci.
            // For ci > 0 this is ci*(a[xi] - a[xj]).
            let (pos_idx, neg_idx, mag) = if *ci > 0 {
                (xi.clone(), xj.clone(), *ci)
            } else {
                (xj.clone(), xi.clone(), -*ci)
            };
            if let Some(b) = pair_lower_bound(ai, &pos_idx, &neg_idx, mag, db, asm) {
                total = total.saturating_add(b);
                used[i] = true;
                used[j] = true;
                break;
            }
        }
    }
    // Remaining terms must be bounded by plain interval reasoning.
    for (idx, t) in terms.iter().enumerate() {
        if used[idx] {
            continue;
        }
        let b = asm
            .lower_bound(t)
            .or_else(|| single_term_bound(&simplify(t), db, asm))?;
        total = total.saturating_add(b);
    }
    Some(total)
}

/// Proves `e >= 1` using properties (convenience wrapper).
pub fn property_proves_positive(e: &Expr, db: &PropertyDatabase, asm: &Assumptions) -> bool {
    property_lower_bound(e, db, asm)
        .map(|b| b >= 1)
        .unwrap_or(false)
}

/// Proves `e >= 0` using properties (convenience wrapper).
pub fn property_proves_nonneg(e: &Expr, db: &PropertyDatabase, asm: &Assumptions) -> bool {
    property_lower_bound(e, db, asm)
        .map(|b| b >= 0)
        .unwrap_or(false)
}

/// Lower bound of a single (non-sum) term: uses the database's element-value
/// ranges for array references (`k * a[x] >= k * lo(a)` for positive `k`).
fn single_term_bound(t: &Expr, db: &PropertyDatabase, asm: &Assumptions) -> Option<i64> {
    let (coeff, aref, _) = parse_term(t);
    let (array, _) = aref?;
    if coeff == 0 {
        return None;
    }
    let vr = db.value_range(&array)?;
    if coeff > 0 {
        let lo = asm.lower_bound(&vr.lo)?;
        Some(coeff.saturating_mul(lo))
    } else {
        let hi = asm.upper_bound(&vr.hi)?;
        Some(coeff.saturating_mul(hi))
    }
}

/// Splits a term into `(integer coefficient, array reference, original)`.
/// Terms that are not of the form `k * a[x]` (or `a[x]`) report `None` for
/// the array part.
/// One additive term, decomposed: `(sign/coefficient, array reference if
/// the term is `k * a[x]`, the residual expression)`.
type ParsedTerm = (i64, Option<(String, Expr)>, Expr);

fn parse_term(t: &Expr) -> ParsedTerm {
    match t {
        Expr::ArrayRef(a, idx) => (1, Some((a.clone(), (**idx).clone())), t.clone()),
        Expr::Mul(factors) => {
            let mut coeff = 1i64;
            let mut aref: Option<(String, Expr)> = None;
            let mut ok = true;
            for f in factors {
                match f {
                    Expr::Int(v) => coeff *= v,
                    Expr::ArrayRef(a, idx) if aref.is_none() => {
                        aref = Some((a.clone(), (**idx).clone()))
                    }
                    _ => ok = false,
                }
            }
            if ok {
                (coeff, aref, t.clone())
            } else {
                (0, None, t.clone())
            }
        }
        other => (0, None, other.clone()),
    }
}

/// Lower bound of `mag * (a[pos] - a[neg])` given `a`'s properties.
fn pair_lower_bound(
    array: &str,
    pos: &Expr,
    neg: &Expr,
    mag: i64,
    db: &PropertyDatabase,
    asm: &Assumptions,
) -> Option<i64> {
    let idx_diff = simplify_diff(pos, neg);
    let diff_lb = asm.lower_bound(&idx_diff);
    let diff_ub = asm.upper_bound(&idx_diff);
    if db.has_property(array, ArrayProperty::StrictMonotonicInc) {
        if let Some(d) = diff_lb {
            if d >= 0 {
                // a[pos] - a[neg] >= pos - neg  (integer strict monotonicity)
                return Some(mag.saturating_mul(d));
            }
        }
    }
    if db.has_property(array, ArrayProperty::MonotonicInc) {
        if let Some(d) = diff_lb {
            if d >= 0 {
                return Some(0);
            }
        }
    }
    if db.has_property(array, ArrayProperty::StrictMonotonicDec) {
        if let Some(d) = diff_ub {
            if d <= 0 {
                return Some(mag.saturating_mul(-d));
            }
        }
    }
    if db.has_property(array, ArrayProperty::MonotonicDec) {
        if let Some(d) = diff_ub {
            if d <= 0 {
                return Some(0);
            }
        }
    }
    // Identical indices cancel regardless of properties.
    if idx_diff == Expr::Int(0) {
        return Some(0);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_properties::ArrayFact;
    use ss_symbolic::SymRange;

    fn db_with(array: &str, prop: ArrayProperty) -> PropertyDatabase {
        let mut db = PropertyDatabase::new();
        db.insert(
            ArrayFact::new(array, SymRange::new(Expr::int(0), Expr::sym("N"))).with_property(prop),
        );
        db
    }

    fn asm_i() -> Assumptions {
        let mut a = Assumptions::new();
        a.assume_range("i", SymRange::new(Expr::int(0), Expr::sym("N")));
        a
    }

    #[test]
    fn monotonic_array_difference_is_nonnegative() {
        // rowstr[i+1] - rowstr[i] >= 0 given Monotonic_inc
        let db = db_with("rowstr", ArrayProperty::MonotonicInc);
        let e = Expr::sub(
            Expr::array_ref("rowstr", Expr::add(Expr::sym("i"), Expr::int(1))),
            Expr::array_ref("rowstr", Expr::sym("i")),
        );
        assert!(property_proves_nonneg(&e, &db, &asm_i()));
        assert!(!property_proves_positive(&e, &db, &asm_i()));
        // without the property, nothing is provable
        assert!(!property_proves_nonneg(
            &e,
            &PropertyDatabase::new(),
            &asm_i()
        ));
        // and the difference in the wrong direction is not provable either
        let wrong = Expr::sub(
            Expr::array_ref("rowstr", Expr::sym("i")),
            Expr::array_ref("rowstr", Expr::add(Expr::sym("i"), Expr::int(1))),
        );
        assert!(!property_proves_nonneg(&wrong, &db, &asm_i()));
    }

    #[test]
    fn strict_monotonicity_gives_index_distance() {
        // front strictly increasing: 7*front[i+1] - 7*front[i] + 1 - 7 >= 1
        let db = db_with("front", ArrayProperty::StrictMonotonicInc);
        let e = simplify(&Expr::add(
            Expr::sub(
                Expr::mul(
                    Expr::int(7),
                    Expr::array_ref("front", Expr::add(Expr::sym("i"), Expr::int(1))),
                ),
                Expr::mul(Expr::int(7), Expr::array_ref("front", Expr::sym("i"))),
            ),
            Expr::int(-6),
        ));
        let lb = property_lower_bound(&e, &db, &asm_i()).unwrap();
        assert!(lb >= 1, "lower bound {lb}");
        // with only non-strict monotonicity the -6 cannot be absorbed
        let db2 = db_with("front", ArrayProperty::MonotonicInc);
        let lb2 = property_lower_bound(&e, &db2, &asm_i()).unwrap();
        assert_eq!(lb2, -6);
    }

    #[test]
    fn plain_terms_fall_back_to_interval_reasoning() {
        let db = db_with("rowstr", ArrayProperty::MonotonicInc);
        let mut asm = asm_i();
        asm.assume_range("k", SymRange::constant(2, 5));
        // rowstr[i+1] - rowstr[i] + k >= 2
        let e = Expr::add(
            Expr::sub(
                Expr::array_ref("rowstr", Expr::add(Expr::sym("i"), Expr::int(1))),
                Expr::array_ref("rowstr", Expr::sym("i")),
            ),
            Expr::sym("k"),
        );
        assert_eq!(property_lower_bound(&e, &db, &asm), Some(2));
        // an unpaired array reference blocks the bound
        let e = Expr::add(Expr::array_ref("other", Expr::sym("i")), Expr::int(3));
        assert_eq!(property_lower_bound(&e, &db, &asm), None);
    }

    #[test]
    fn decreasing_arrays_are_supported() {
        let db = db_with("d", ArrayProperty::StrictMonotonicDec);
        // d[i] - d[i+1] >= 1 for strictly decreasing d
        let e = Expr::sub(
            Expr::array_ref("d", Expr::sym("i")),
            Expr::array_ref("d", Expr::add(Expr::sym("i"), Expr::int(1))),
        );
        assert!(property_proves_positive(&e, &db, &asm_i()));
    }

    #[test]
    fn constant_expressions_do_not_need_the_database() {
        let db = PropertyDatabase::new();
        assert_eq!(
            property_lower_bound(&Expr::int(4), &db, &Assumptions::new()),
            Some(4)
        );
        assert!(property_proves_positive(
            &Expr::int(1),
            &db,
            &Assumptions::new()
        ));
        assert!(!property_proves_positive(
            &Expr::Bottom,
            &db,
            &Assumptions::new()
        ));
    }
}
