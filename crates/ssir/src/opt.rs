//! The optimizing bytecode pass: peephole and superinstruction fusion over
//! the register-machine stream of [`crate::bytecode`].
//!
//! The base compiler ([`crate::bytecode::compile_bytecode`]) is a faithful
//! lowering: one instruction per slot-pass operation, subscripts copied
//! into consecutive registers, every comparison materialized before its
//! branch.  This pass — gated behind [`OptLevel::O1`], the default — runs
//! three rewrites to a fixed point over every straight-line block:
//!
//! * **constant folding** — a per-block constant lattice (reset at every
//!   jump target, and after structured loops) turns `Const`-fed `Copy`,
//!   `Bin`, `Neg` and `Not` instructions into pool loads.  Arithmetic folds
//!   go through [`ss_symbolic`]'s checked evaluator, whose overflow and
//!   division-by-zero *errors* simply veto the fold — the instruction stays
//!   and fails (or wraps) at runtime exactly like the unoptimized stream;
//! * **superinstruction fusion** — three shapes the interpreter otherwise
//!   pays one dispatch each for:
//!   [`Instr::LoadLoad`] (`a[b[i]]`, the paper's subscripted subscript, as
//!   one instruction), [`Instr::CmpBranch`] (compare feeding an adjacent
//!   conditional jump), and [`Instr::Load2`]/[`Instr::Store2`] (rank-2
//!   accesses reading two arbitrary registers, eliding the
//!   consecutive-register subscript copies);
//! * **dead-store elimination** — pure instructions (`Const`, `Copy`,
//!   `Neg`, `Not`, non-dividing `Bin`) whose destination is an expression
//!   temporary nobody reads are dropped.  Writes to *scalar* registers are
//!   never dropped: they are observable (defined-ness tracking, final-heap
//!   write-back).
//!
//! Every rewrite preserves semantics instruction for instruction —
//! evaluation order, error points, wrapping arithmetic, defined-flag
//! effects — so O0 and O1 streams produce bit-identical heaps (and
//! identical errors), which `ss-interp`'s `validate` and the cross-engine
//! fuzz harness assert on every run.  Deleting and fusing instructions
//! renumbers the stream, so all absolute jump targets are remapped through
//! an old-index → new-index table; a fusion never consumes an instruction
//! that is itself a jump target.  A final pass compacts the constant pool
//! to the surviving `Const` loads.

use crate::ast::BinOp;
use crate::bytecode::{BcExpr, BcFor, BytecodeProgram, HeaderFast, Instr, Reg};
use std::collections::{HashMap, HashSet};

/// How much optimization the pipeline's `opt` stage applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// The base compiler's stream, untouched.
    O0,
    /// Constant folding, superinstruction fusion and dead-store
    /// elimination (the default).
    #[default]
    O1,
}

impl OptLevel {
    /// Parses a `--opt-level` flag value (`"0"` or `"1"`).
    pub fn from_flag(s: &str) -> Option<OptLevel> {
        match s {
            "0" => Some(OptLevel::O0),
            "1" => Some(OptLevel::O1),
            _ => None,
        }
    }

    /// `"O0"` / `"O1"`.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Optimizes a bytecode program at `level`.  [`OptLevel::O0`] returns the
/// input unchanged; [`OptLevel::O1`] rewrites every block (the top-level
/// stream and, recursively, every structured loop's header blocks and
/// body) and compacts the constant pool.
pub fn optimize(bc: &BytecodeProgram, level: OptLevel) -> BytecodeProgram {
    if level == OptLevel::O0 {
        return bc.clone();
    }
    let mut o = Optimizer {
        consts: bc.consts.clone(),
        const_ids: bc
            .consts
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, k as u32))
            .collect(),
        nscalars: bc.slots.scalar_count(),
        nregs: bc.nregs,
    };
    let main = o.opt_code(&bc.main, None);
    let mut out = BytecodeProgram {
        main,
        consts: o.consts,
        nregs: bc.nregs,
        slots: bc.slots.clone(),
    };
    compact_pool(&mut out);
    pack_registers(&mut out);
    out
}

struct Optimizer {
    consts: Vec<i64>,
    const_ids: HashMap<i64, u32>,
    nscalars: usize,
    nregs: usize,
}

/// Per-instruction liveness of the *temporary* registers (scalar registers
/// are always observable and never touched by DSE or fusion).  Computed by
/// a backward fixpoint over the block's instruction-level control flow, so
/// a temporary consumed on a jump path counts as live at the jump — no
/// reliance on the compiler's def-before-use convention.
struct Liveness {
    nscalars: u32,
    words: usize,
    /// `live_in[pc]`; index `len` is the block exit (holding the protected
    /// result register of expression blocks).
    live_in: Vec<u64>,
}

impl Liveness {
    fn compute(code: &[Instr], nscalars: usize, nregs: usize, protected: Option<Reg>) -> Liveness {
        let ntemps = nregs.saturating_sub(nscalars).max(1);
        let words = ntemps.div_ceil(64);
        let n = code.len();
        let mut lv = Liveness {
            nscalars: nscalars as u32,
            words,
            live_in: vec![0u64; (n + 1) * words],
        };
        if let Some(r) = protected {
            if let Some((w, bit)) = lv.temp_bit(r) {
                lv.live_in[n * words + w] |= bit;
            }
        }
        let mut reads: Vec<Reg> = Vec::new();
        loop {
            let mut changed = false;
            for pc in (0..n).rev() {
                let mut row = lv.out_row(code, pc);
                // Kill the write, add the reads.
                if let Some(dst) = instr_write(&code[pc]) {
                    if let Some((w, bit)) = lv.temp_bit(dst) {
                        row[w] &= !bit;
                    }
                }
                if matches!(code[pc], Instr::For(_)) {
                    // A structured loop's inner blocks recycle the whole
                    // temporary file: it clobbers every temp and reads none
                    // from the enclosing block.
                    row.iter_mut().for_each(|w| *w = 0);
                }
                reads.clear();
                instr_reads(&code[pc], &mut reads);
                for r in &reads {
                    if let Some((w, bit)) = lv.temp_bit(*r) {
                        row[w] |= bit;
                    }
                }
                let slot = &mut lv.live_in[pc * words..(pc + 1) * words];
                if slot != row.as_slice() {
                    slot.copy_from_slice(&row);
                    changed = true;
                }
            }
            if !changed {
                return lv;
            }
        }
    }

    fn temp_bit(&self, r: Reg) -> Option<(usize, u64)> {
        let t = r.0.checked_sub(self.nscalars)? as usize;
        Some((t / 64, 1u64 << (t % 64)))
    }

    /// `live_out[pc]` = union of `live_in` over the successors.
    fn out_row(&self, code: &[Instr], pc: usize) -> Vec<u64> {
        let mut row = vec![0u64; self.words];
        let mut add = |succ: usize| {
            let s = &self.live_in[succ * self.words..(succ + 1) * self.words];
            row.iter_mut().zip(s).for_each(|(a, b)| *a |= b);
        };
        match &code[pc] {
            Instr::Jump { target } => add(*target as usize),
            Instr::Jz { target, .. }
            | Instr::Jnz { target, .. }
            | Instr::CmpBranch { target, .. } => {
                add(*target as usize);
                add(pc + 1);
            }
            _ => add(pc + 1),
        }
        row
    }

    /// True when the temporary `r` is dead after instruction `pc` (on every
    /// outgoing path).  Scalar registers are never dead.
    fn dead_after(&self, code: &[Instr], pc: usize, r: Reg) -> bool {
        match self.temp_bit(r) {
            Some((w, bit)) => self.out_row(code, pc)[w] & bit == 0,
            None => false,
        }
    }
}

impl Optimizer {
    fn pool(&mut self, v: i64) -> u32 {
        if let Some(&id) = self.const_ids.get(&v) {
            return id;
        }
        let id = self.consts.len() as u32;
        self.consts.push(v);
        self.const_ids.insert(v, id);
        id
    }

    fn is_temp(&self, r: Reg) -> bool {
        r.index() >= self.nscalars
    }

    /// Optimizes one flat block.  `protected` is the block's result
    /// register (for expression blocks): it counts as live at block exit.
    fn opt_code(&mut self, code: &[Instr], protected: Option<Reg>) -> Vec<Instr> {
        // Structured loops first, so the passes below see them as opaque.
        let mut code: Vec<Instr> = code
            .iter()
            .map(|i| match i {
                Instr::For(f) => Instr::For(Box::new(self.opt_for(f))),
                other => other.clone(),
            })
            .collect();
        loop {
            let mut changed = self.fold_pass(&mut code);
            let (fused, ch) = self.fuse_pass(code, protected);
            code = fused;
            changed |= ch;
            let (swept, ch) = self.dse_pass(code, protected);
            code = swept;
            changed |= ch;
            if !changed {
                return code;
            }
        }
    }

    fn opt_for(&mut self, f: &BcFor) -> BcFor {
        let init = self.opt_expr(&f.init);
        let bound = self.opt_expr(&f.bound);
        let step = self.opt_expr(&f.step);
        let init_fast = self.header_fast(&init);
        let mut bound_fast = self.header_fast(&bound);
        let mut step_fast = self.header_fast(&step);
        let body = self.opt_code(&f.body, None);
        // Cross-iteration invariant hoisting: between two evaluations of
        // the bound (or step) block only the body, the sibling header block
        // and the index-variable update run.  When none of those can feed
        // the block — no clobbered register flows in, no loaded array is
        // stored to — one evaluation per loop entry is exact (same value,
        // same error, at the same first-iteration program point), so the
        // executors may cache it.  This is what hoists the CSR-traversal
        // bound `rowptr[i + 1]` out of the inner product loop.
        let mut clobbered: HashSet<u32> = HashSet::new();
        clobbered.insert(f.var.0);
        collect_reg_writes(&body, &mut clobbered);
        collect_reg_writes(&bound.code, &mut clobbered);
        collect_reg_writes(&step.code, &mut clobbered);
        let mut stored: HashSet<u32> = HashSet::new();
        collect_array_stores(&body, &mut stored);
        if bound_fast == HeaderFast::Eval && self.invariant_block(&bound, &clobbered, &stored) {
            bound_fast = HeaderFast::EvalOnce;
        }
        if step_fast == HeaderFast::Eval && self.invariant_block(&step, &clobbered, &stored) {
            step_fast = HeaderFast::EvalOnce;
        }
        BcFor {
            id: f.id,
            var: f.var,
            init,
            cond_op: f.cond_op,
            bound,
            step,
            init_fast,
            bound_fast,
            step_fast,
            body,
            local_arrays: f.local_arrays.clone(),
            locals_dominated: f.locals_dominated,
            skewed: f.skewed,
        }
    }

    /// True when re-evaluating the expression block anywhere in the loop is
    /// guaranteed to reproduce the first evaluation bit for bit: the block
    /// is pure (only register-file temp writes and array *reads* — which is
    /// what the expression compiler emits, but checked rather than
    /// trusted), none of its inputs (scalars it reads, temporaries live at
    /// block entry) is in `clobbered`, and no array it loads is in
    /// `stored`.
    fn invariant_block(&self, e: &BcExpr, clobbered: &HashSet<u32>, stored: &HashSet<u32>) -> bool {
        let mut reads: Vec<Reg> = Vec::new();
        for i in &e.code {
            match i {
                Instr::Store { .. }
                | Instr::Store2 { .. }
                | Instr::DeclArray { .. }
                | Instr::For(_)
                | Instr::WhileEnter { .. }
                | Instr::WhileIter { .. }
                | Instr::WhileExit { .. } => return false,
                _ => {}
            }
            if instr_write(i).is_some_and(|d| !self.is_temp(d)) {
                return false;
            }
            instr_reads(i, &mut reads);
            match i {
                Instr::Load { array, .. } | Instr::Load2 { array, .. }
                    if stored.contains(&array.0) =>
                {
                    return false;
                }
                Instr::LoadLoad { outer, inner, .. }
                    if stored.contains(&outer.0) || stored.contains(&inner.0) =>
                {
                    return false;
                }
                _ => {}
            }
        }
        // Scalar reads are always inputs (the block never writes scalars).
        if reads
            .iter()
            .any(|r| !self.is_temp(*r) && clobbered.contains(&r.0))
        {
            return false;
        }
        // Temporaries live at block entry (read before any block-local
        // definition on some path) are inputs too.  The compiler never
        // emits that shape, but the analysis must not rely on it.
        let live = Liveness::compute(&e.code, self.nscalars, self.nregs, Some(e.result));
        for (w, bits) in live.live_in[0..live.words].iter().enumerate() {
            let mut bits = *bits;
            while bits != 0 {
                let t = (w as u32) * 64 + bits.trailing_zeros();
                if clobbered.contains(&(self.nscalars as u32 + t)) {
                    return false;
                }
                bits &= bits - 1;
            }
        }
        true
    }

    /// Derives the header fast path of an optimized expression block: an
    /// empty block is a plain register read, a single constant load is the
    /// constant itself.  Both are side-effect- and error-free, so the
    /// executor may skip the block — the code stays alongside, and running
    /// it instead is always still correct.
    fn header_fast(&self, e: &BcExpr) -> HeaderFast {
        match e.code.as_slice() {
            [] => HeaderFast::Reg(e.result),
            [Instr::Const { dst, pool }] if *dst == e.result => {
                HeaderFast::Const(self.consts[*pool as usize])
            }
            _ => HeaderFast::Eval,
        }
    }

    fn opt_expr(&mut self, e: &BcExpr) -> BcExpr {
        BcExpr {
            code: self.opt_code(&e.code, Some(e.result)),
            result: e.result,
        }
    }

    // -----------------------------------------------------------------------
    // Constant folding.
    // -----------------------------------------------------------------------

    fn fold_pass(&mut self, code: &mut [Instr]) -> bool {
        let targets = jump_targets(code);
        let mut known: HashMap<u32, i64> = HashMap::new();
        let mut changed = false;
        for pc in 0..code.len() {
            if targets[pc] {
                known.clear();
            }
            match code[pc].clone() {
                Instr::Const { dst, pool } => {
                    known.insert(dst.0, self.consts[pool as usize]);
                }
                Instr::Copy { dst, src } => match known.get(&src.0).copied() {
                    Some(v) => {
                        let pool = self.pool(v);
                        if code[pc] != (Instr::Const { dst, pool }) {
                            code[pc] = Instr::Const { dst, pool };
                            changed = true;
                        }
                        known.insert(dst.0, v);
                    }
                    None => {
                        known.remove(&dst.0);
                    }
                },
                Instr::Bin { op, dst, a, b } => {
                    match (known.get(&a.0).copied(), known.get(&b.0).copied()) {
                        (Some(x), Some(y)) => match fold_binop(op, x, y) {
                            Some(v) => {
                                let pool = self.pool(v);
                                code[pc] = Instr::Const { dst, pool };
                                known.insert(dst.0, v);
                                changed = true;
                            }
                            None => {
                                known.remove(&dst.0);
                            }
                        },
                        _ => {
                            known.remove(&dst.0);
                        }
                    }
                }
                Instr::Neg { dst, src } => match known.get(&src.0).copied() {
                    // i64::MIN negates to itself under wrapping; folding it
                    // is still exact, so no guard is needed.
                    Some(v) => {
                        let pool = self.pool(v.wrapping_neg());
                        code[pc] = Instr::Const { dst, pool };
                        known.insert(dst.0, v.wrapping_neg());
                        changed = true;
                    }
                    None => {
                        known.remove(&dst.0);
                    }
                },
                Instr::Not { dst, src } => match known.get(&src.0).copied() {
                    Some(v) => {
                        let folded = (v == 0) as i64;
                        let pool = self.pool(folded);
                        code[pc] = Instr::Const { dst, pool };
                        known.insert(dst.0, folded);
                        changed = true;
                    }
                    None => {
                        known.remove(&dst.0);
                    }
                },
                // A structured loop writes its index variable and whatever
                // its body touches: forget everything.
                Instr::For(_) => known.clear(),
                other => {
                    if let Some(dst) = instr_write(&other) {
                        known.remove(&dst.0);
                    }
                }
            }
        }
        changed
    }

    // -----------------------------------------------------------------------
    // Superinstruction fusion.
    // -----------------------------------------------------------------------

    fn fuse_pass(&mut self, code: Vec<Instr>, protected: Option<Reg>) -> (Vec<Instr>, bool) {
        let targets = jump_targets(&code);
        let live = Liveness::compute(&code, self.nscalars, self.nregs, protected);
        // A temporary written at `def` and consumed at `consumer` may be
        // elided iff nothing can read it after the consumer.
        let consumed =
            |consumer: usize, t: Reg| self.is_temp(t) && live.dead_after(&code, consumer, t);
        let mut out = Vec::with_capacity(code.len());
        let mut map = vec![0u32; code.len() + 1];
        let mut i = 0usize;
        while i < code.len() {
            let pos = out.len() as u32;
            // a[b[i]]: inner rank-1 load into a temp consumed only by the
            // adjacent outer rank-1 load.
            if i + 1 < code.len() && !targets[i + 1] {
                if let (
                    Instr::Load {
                        dst: t,
                        array: inner,
                        idx: r,
                        rank: 1,
                    },
                    Instr::Load {
                        dst,
                        array: outer,
                        idx,
                        rank: 1,
                    },
                ) = (&code[i], &code[i + 1])
                {
                    if idx == t && consumed(i + 1, *t) {
                        out.push(Instr::LoadLoad {
                            dst: *dst,
                            outer: *outer,
                            inner: *inner,
                            idx: *r,
                        });
                        map[i] = pos;
                        map[i + 1] = pos;
                        i += 2;
                        continue;
                    }
                }
                // Relational compare feeding the adjacent conditional jump.
                if let Instr::Bin { op, dst: t, a, b } = &code[i] {
                    if is_relational(*op) && consumed(i + 1, *t) {
                        let fused = match &code[i + 1] {
                            Instr::Jz { cond, target } if cond == t => Some((*target, false)),
                            Instr::Jnz { cond, target } if cond == t => Some((*target, true)),
                            _ => None,
                        };
                        if let Some((target, jump_if)) = fused {
                            out.push(Instr::CmpBranch {
                                op: *op,
                                a: *a,
                                b: *b,
                                target,
                                jump_if,
                            });
                            map[i] = pos;
                            map[i + 1] = pos;
                            i += 2;
                            continue;
                        }
                    }
                }
            }
            // Rank-2 access whose two subscript copies exist only to make
            // the registers consecutive.  The alias checks exclude the
            // ordering hazards the fusion would otherwise introduce: a copy
            // source aliasing the other copy's destination (the fused form
            // reads both sources at access time, after both copies would
            // have run), or the store's value register aliasing an elided
            // destination.
            if i + 2 < code.len() && !targets[i + 1] && !targets[i + 2] {
                if let (Instr::Copy { dst: t0, src: s0 }, Instr::Copy { dst: t1, src: s1 }) =
                    (&code[i], &code[i + 1])
                {
                    if t1.0 == t0.0 + 1
                        && s0 != t1
                        && s1 != t0
                        && consumed(i + 2, *t0)
                        && consumed(i + 2, *t1)
                    {
                        let fused = match &code[i + 2] {
                            Instr::Load {
                                dst,
                                array,
                                idx,
                                rank: 2,
                            } if idx == t0 => Some(Instr::Load2 {
                                dst: *dst,
                                array: *array,
                                i0: *s0,
                                i1: *s1,
                            }),
                            Instr::Store {
                                array,
                                idx,
                                rank: 2,
                                src,
                            } if idx == t0 && src != t0 && src != t1 => Some(Instr::Store2 {
                                array: *array,
                                i0: *s0,
                                i1: *s1,
                                src: *src,
                            }),
                            _ => None,
                        };
                        if let Some(instr) = fused {
                            out.push(instr);
                            map[i] = pos;
                            map[i + 1] = pos;
                            map[i + 2] = pos;
                            i += 3;
                            continue;
                        }
                    }
                }
            }
            map[i] = pos;
            out.push(code[i].clone());
            i += 1;
        }
        map[code.len()] = out.len() as u32;
        let changed = out.len() != code.len();
        if changed {
            retarget(&mut out, &map);
        }
        (out, changed)
    }

    // -----------------------------------------------------------------------
    // Dead-store elimination.
    // -----------------------------------------------------------------------

    fn dse_pass(&mut self, code: Vec<Instr>, protected: Option<Reg>) -> (Vec<Instr>, bool) {
        let live = Liveness::compute(&code, self.nscalars, self.nregs, protected);
        let removable = |pc: usize, i: &Instr| -> bool {
            let pure = match i {
                Instr::Const { .. }
                | Instr::Copy { .. }
                | Instr::Neg { .. }
                | Instr::Not { .. } => true,
                // Division and remainder can fail at runtime; every other
                // operator is total.
                Instr::Bin { op, .. } => !matches!(op, BinOp::Div | BinOp::Mod),
                _ => false,
            };
            pure && instr_write(i)
                .is_some_and(|dst| self.is_temp(dst) && live.dead_after(&code, pc, dst))
        };
        if !code.iter().enumerate().any(|(pc, i)| removable(pc, i)) {
            return (code, false);
        }
        let mut out = Vec::with_capacity(code.len());
        let mut map = vec![0u32; code.len() + 1];
        for (k, instr) in code.iter().enumerate() {
            map[k] = out.len() as u32;
            if !removable(k, instr) {
                out.push(instr.clone());
            }
        }
        map[code.len()] = out.len() as u32;
        retarget(&mut out, &map);
        (out, true)
    }
}

/// Folds one non-short-circuit binary operation, or `None` when the fold
/// would change runtime behavior (overflow wraps at runtime, division by
/// zero errors at runtime).  Arithmetic goes through `ss_symbolic`'s
/// checked evaluator: any evaluation error vetoes the fold.
fn fold_binop(op: BinOp, x: i64, y: i64) -> Option<i64> {
    use ss_symbolic::{Expr, Valuation};
    let v = Valuation::new();
    let (a, b) = (Expr::int(x), Expr::int(y));
    match op {
        BinOp::Add => v.eval(&Expr::add(a, b)).ok(),
        BinOp::Sub => v.eval(&Expr::sub(a, b)).ok(),
        BinOp::Mul => v.eval(&Expr::mul(a, b)).ok(),
        // i64::MIN / -1 overflows: leave it to the runtime's checked path.
        BinOp::Div if y != 0 && !(x == i64::MIN && y == -1) => v.eval(&Expr::div(a, b)).ok(),
        BinOp::Mod if y != 0 && !(x == i64::MIN && y == -1) => v.eval(&Expr::modulo(a, b)).ok(),
        BinOp::Div | BinOp::Mod => None,
        BinOp::Lt => Some((x < y) as i64),
        BinOp::Le => Some((x <= y) as i64),
        BinOp::Gt => Some((x > y) as i64),
        BinOp::Ge => Some((x >= y) as i64),
        BinOp::Eq => Some((x == y) as i64),
        BinOp::Ne => Some((x != y) as i64),
        BinOp::And | BinOp::Or => None,
    }
}

fn is_relational(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    )
}

/// Which instruction indices are jump targets (index `len` = block end).
fn jump_targets(code: &[Instr]) -> Vec<bool> {
    let mut t = vec![false; code.len() + 1];
    for i in code {
        match i {
            Instr::Jz { target, .. }
            | Instr::Jnz { target, .. }
            | Instr::Jump { target }
            | Instr::CmpBranch { target, .. } => t[*target as usize] = true,
            _ => {}
        }
    }
    t
}

/// Rewrites every absolute jump target through the old-index → new-index
/// map.  A target landing on a removed instruction retargets to the next
/// surviving one, which is exact: removed instructions are dead on every
/// path, and fused instructions map both halves to the fusion.
fn retarget(code: &mut [Instr], map: &[u32]) {
    for i in code {
        match i {
            Instr::Jz { target, .. }
            | Instr::Jnz { target, .. }
            | Instr::Jump { target }
            | Instr::CmpBranch { target, .. } => *target = map[*target as usize],
            _ => {}
        }
    }
}

/// The registers an instruction reads.  Structured loops read no
/// *temporaries* from the enclosing block (their liveness treats them as
/// clobbering the whole temporary file), and scalar reads are irrelevant
/// to the temp-only analyses, but scalars are reported anyway — the
/// liveness bitset simply ignores them.
fn instr_reads(i: &Instr, out: &mut Vec<Reg>) {
    match i {
        Instr::Const { .. }
        | Instr::Jump { .. }
        | Instr::For(_)
        | Instr::WhileEnter { .. }
        | Instr::WhileIter { .. }
        | Instr::WhileExit { .. } => {}
        Instr::Copy { src, .. } | Instr::Neg { src, .. } | Instr::Not { src, .. } => out.push(*src),
        Instr::Bin { a, b, .. } => {
            out.push(*a);
            out.push(*b);
        }
        Instr::Accum { dst, src, .. } => {
            out.push(*dst);
            out.push(*src);
        }
        Instr::Load { idx, rank, .. } => {
            for k in 0..*rank {
                out.push(Reg(idx.0 + k as u32));
            }
        }
        Instr::Store { idx, rank, src, .. } => {
            for k in 0..*rank {
                out.push(Reg(idx.0 + k as u32));
            }
            out.push(*src);
        }
        Instr::DeclArray { dims, rank, .. } => {
            for k in 0..*rank {
                out.push(Reg(dims.0 + k as u32));
            }
        }
        Instr::Jz { cond, .. } | Instr::Jnz { cond, .. } => out.push(*cond),
        Instr::LoadLoad { idx, .. } => out.push(*idx),
        Instr::CmpBranch { a, b, .. } => {
            out.push(*a);
            out.push(*b);
        }
        Instr::Load2 { i0, i1, .. } => {
            out.push(*i0);
            out.push(*i1);
        }
        Instr::Store2 { i0, i1, src, .. } => {
            out.push(*i0);
            out.push(*i1);
            out.push(*src);
        }
    }
}

/// The register an instruction writes, if any.
fn instr_write(i: &Instr) -> Option<Reg> {
    match i {
        Instr::Const { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::Bin { dst, .. }
        | Instr::Accum { dst, .. }
        | Instr::Neg { dst, .. }
        | Instr::Not { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::LoadLoad { dst, .. }
        | Instr::Load2 { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Every register (scalar or temporary) written anywhere in `code`,
/// recursing through structured loops (index variables and header-block
/// writes included).
fn collect_reg_writes(code: &[Instr], out: &mut HashSet<u32>) {
    for i in code {
        if let Some(d) = instr_write(i) {
            out.insert(d.0);
        }
        if let Instr::For(f) = i {
            out.insert(f.var.0);
            collect_reg_writes(&f.init.code, out);
            collect_reg_writes(&f.bound.code, out);
            collect_reg_writes(&f.step.code, out);
            collect_reg_writes(&f.body, out);
        }
    }
}

/// Every array slot stored to or (re)declared anywhere in `code`,
/// recursing through structured loops.
fn collect_array_stores(code: &[Instr], out: &mut HashSet<u32>) {
    for i in code {
        match i {
            Instr::Store { array, .. }
            | Instr::Store2 { array, .. }
            | Instr::DeclArray { array, .. } => {
                out.insert(array.0);
            }
            Instr::For(f) => {
                collect_array_stores(&f.init.code, out);
                collect_array_stores(&f.bound.code, out);
                collect_array_stores(&f.step.code, out);
                collect_array_stores(&f.body, out);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Linear-scan packing of expression temporaries.
// ---------------------------------------------------------------------------

/// Renumbers each block's expression temporaries with a linear-scan
/// allocator over their (conservative, interval-shaped) live ranges, so
/// short-lived temps share slots and the register frame shrinks.  Scalar
/// registers are observable and never move; each block's temporaries are an
/// independent namespace (structured loops clobber the whole temp file), so
/// blocks pack independently and `nregs` becomes the maximum over all of
/// them.  The pass only renumbers — instruction count, order, evaluation
/// order and error points are untouched — and is idempotent: re-running it
/// on packed code maps every temp to itself.
fn pack_registers(bc: &mut BytecodeProgram) {
    let nscalars = bc.slots.scalar_count();
    pack_code(&mut bc.main, None, nscalars);
    let mut hi = nscalars as u32;
    max_reg(&bc.main, &mut hi);
    bc.nregs = hi as usize;
}

fn pack_code(code: &mut [Instr], protected: Option<&mut Reg>, nscalars: usize) {
    for i in code.iter_mut() {
        if let Instr::For(f) = i {
            pack_code(&mut f.init.code, Some(&mut f.init.result), nscalars);
            pack_code(&mut f.bound.code, Some(&mut f.bound.result), nscalars);
            pack_code(&mut f.step.code, Some(&mut f.step.result), nscalars);
            pack_code(&mut f.body, None, nscalars);
        }
    }
    pack_block(code, protected, nscalars);
}

/// Packs one flat block.  Bails (leaving the block unchanged — correct by
/// construction, just unpacked) on shapes the interval model cannot
/// renumber safely: a temporary live at block entry, or a consecutive
/// register run containing a scalar.
fn pack_block(code: &mut [Instr], protected: Option<&mut Reg>, nscalars: usize) {
    let ns = nscalars as u32;
    let n = code.len();
    // Occurrence intervals per temporary register: [first, last] positions
    // over the linear stream.
    let mut first: HashMap<u32, usize> = HashMap::new();
    let mut last: HashMap<u32, usize> = HashMap::new();
    fn occur(
        ns: u32,
        r: Reg,
        pc: usize,
        first: &mut HashMap<u32, usize>,
        last: &mut HashMap<u32, usize>,
    ) {
        if r.0 >= ns {
            first.entry(r.0).or_insert(pc);
            last.insert(r.0, pc);
        }
    }
    // Consecutive-register runs (rank >= 2 subscript blocks) whose members
    // must stay contiguous and in order.
    let mut runs: Vec<(u32, u32)> = Vec::new();
    let mut reads: Vec<Reg> = Vec::new();
    for (pc, i) in code.iter().enumerate() {
        reads.clear();
        instr_reads(i, &mut reads);
        for r in &reads {
            occur(ns, *r, pc, &mut first, &mut last);
        }
        if let Some(d) = instr_write(i) {
            occur(ns, d, pc, &mut first, &mut last);
        }
        match i {
            Instr::Load { idx, rank, .. } | Instr::Store { idx, rank, .. } if *rank >= 2 => {
                if idx.0 < ns {
                    return; // a scalar inside a run: cannot renumber
                }
                runs.push((idx.0, idx.0 + *rank as u32));
            }
            Instr::DeclArray { dims, rank, .. } if *rank >= 2 => {
                if dims.0 < ns {
                    return;
                }
                runs.push((dims.0, dims.0 + *rank as u32));
            }
            // A header fast path naming a temporary would be a reference
            // into this block's namespace from outside the rewrite below;
            // the compiler only ever puts scalars there, but bail rather
            // than trust it.
            Instr::For(f) => {
                for fast in [f.init_fast, f.bound_fast, f.step_fast] {
                    if matches!(fast, HeaderFast::Reg(r) if r.0 >= ns) {
                        return;
                    }
                }
            }
            _ => {}
        }
    }
    if first.is_empty() {
        return;
    }
    // A temporary live at block entry reads a value from before the block;
    // renumbering would change which value that is.  The compiler never
    // emits the shape, but verify rather than assume.
    {
        let hi = first.keys().copied().max().unwrap_or(ns) as usize + 1;
        let live = Liveness::compute(code, nscalars, hi, None);
        if live.live_in[0..live.words].iter().any(|w| *w != 0) {
            return;
        }
    }
    if let Some(p) = protected.as_ref() {
        if p.0 >= ns {
            last.insert(p.0, n);
            if !first.contains_key(&p.0) {
                return; // a protected temp the block never writes
            }
        }
    }
    // A temporary live across a backward jump is live over the whole jump
    // span, whichever iteration the positions came from.
    let back: Vec<(usize, usize)> = code
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| match i {
            Instr::Jz { target, .. }
            | Instr::Jnz { target, .. }
            | Instr::Jump { target }
            | Instr::CmpBranch { target, .. }
                if (*target as usize) <= pc =>
            {
                Some((*target as usize, pc))
            }
            _ => None,
        })
        .collect();
    // Units: merged overlapping runs, plus singletons for every other temp.
    runs.sort_unstable();
    let mut units: Vec<(u32, u32)> = Vec::new(); // [lo, hi) in old numbering
    for (lo, hi) in runs {
        match units.last_mut() {
            Some((_, uhi)) if lo < *uhi => *uhi = (*uhi).max(hi),
            _ => units.push((lo, hi)),
        }
    }
    let merged = units.clone();
    let in_run = |r: u32| merged.iter().any(|(lo, hi)| (*lo..*hi).contains(&r));
    let mut regs: Vec<u32> = first.keys().copied().collect();
    regs.sort_unstable();
    for r in regs {
        if !in_run(r) {
            units.push((r, r + 1));
        }
    }
    // Interval per unit, extended to fixpoint over backward-jump spans.
    struct Unit {
        lo: u32,
        width: u32,
        start: usize,
        end: usize,
    }
    let mut list: Vec<Unit> = units
        .into_iter()
        .map(|(lo, hi)| {
            let members = lo..hi;
            let start = members
                .clone()
                .filter_map(|r| first.get(&r))
                .copied()
                .min()
                .unwrap_or(0);
            let end = members
                .filter_map(|r| last.get(&r))
                .copied()
                .max()
                .unwrap_or(n);
            Unit {
                lo,
                width: hi - lo,
                start,
                end,
            }
        })
        .collect();
    loop {
        let mut changed = false;
        for u in &mut list {
            for (t, j) in &back {
                if u.start <= *j && *t <= u.end {
                    let (s, e) = (u.start.min(*t), u.end.max(*j));
                    if (s, e) != (u.start, u.end) {
                        u.start = s;
                        u.end = e;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Linear scan: allocate each unit the lowest free contiguous window.
    list.sort_by_key(|u| (u.start, u.lo));
    let mut active: Vec<(usize, u32, u32)> = Vec::new(); // (end, slot, width)
    let mut map: HashMap<u32, u32> = HashMap::new();
    for u in &list {
        active.retain(|(end, _, _)| *end >= u.start);
        let mut slot = 0u32;
        'place: loop {
            for (_, s, w) in &active {
                if slot < s + w && *s < slot + u.width {
                    slot = s + w;
                    continue 'place;
                }
            }
            break;
        }
        active.push((u.end, slot, u.width));
        for k in 0..u.width {
            map.insert(u.lo + k, ns + slot + k);
        }
    }
    // Rewrite.  Structured loops are skipped: their blocks are separate
    // namespaces packed by their own recursion.
    let remap = |r: &mut Reg| {
        if r.0 >= ns {
            *r = Reg(map[&r.0]);
        }
    };
    for i in code.iter_mut() {
        remap_instr_regs(i, &remap);
    }
    if let Some(p) = protected {
        if p.0 >= ns {
            *p = Reg(map[&p.0]);
        }
    }
}

/// Applies `f` to every register operand of one instruction (structured
/// loops excluded — their registers belong to inner namespaces).
fn remap_instr_regs(i: &mut Instr, f: &impl Fn(&mut Reg)) {
    match i {
        Instr::Const { dst, .. } => f(dst),
        Instr::Copy { dst, src } | Instr::Neg { dst, src } | Instr::Not { dst, src } => {
            f(dst);
            f(src);
        }
        Instr::Bin { dst, a, b, .. } => {
            f(dst);
            f(a);
            f(b);
        }
        Instr::Accum { dst, src, .. } => {
            f(dst);
            f(src);
        }
        Instr::Load { dst, idx, .. } => {
            f(dst);
            f(idx);
        }
        Instr::Store { idx, src, .. } => {
            f(idx);
            f(src);
        }
        Instr::DeclArray { dims, .. } => f(dims),
        Instr::Jz { cond, .. } | Instr::Jnz { cond, .. } => f(cond),
        Instr::Jump { .. }
        | Instr::For(_)
        | Instr::WhileEnter { .. }
        | Instr::WhileIter { .. }
        | Instr::WhileExit { .. } => {}
        Instr::LoadLoad { dst, idx, .. } => {
            f(dst);
            f(idx);
        }
        Instr::CmpBranch { a, b, .. } => {
            f(a);
            f(b);
        }
        Instr::Load2 { dst, i0, i1, .. } => {
            f(dst);
            f(i0);
            f(i1);
        }
        Instr::Store2 { i0, i1, src, .. } => {
            f(i0);
            f(i1);
            f(src);
        }
    }
}

/// Grows `hi` to one past the highest register index used anywhere
/// (instruction operands, header results, index variables), recursively.
fn max_reg(code: &[Instr], hi: &mut u32) {
    let mut reads: Vec<Reg> = Vec::new();
    for i in code {
        reads.clear();
        instr_reads(i, &mut reads);
        if let Some(d) = instr_write(i) {
            reads.push(d);
        }
        for r in &reads {
            *hi = (*hi).max(r.0 + 1);
        }
        if let Instr::For(f) = i {
            *hi = (*hi).max(f.var.0 + 1);
            for e in [&f.init, &f.bound, &f.step] {
                *hi = (*hi).max(e.result.0 + 1);
                max_reg(&e.code, hi);
            }
            max_reg(&f.body, hi);
        }
    }
}

// ---------------------------------------------------------------------------
// Constant-pool compaction.
// ---------------------------------------------------------------------------

/// Rebuilds the pool around the `Const` loads that survived optimization,
/// so the disassembly lists no orphaned constants.
fn compact_pool(bc: &mut BytecodeProgram) {
    let mut used: Vec<u32> = Vec::new();
    collect_pools(&bc.main, &mut used);
    used.sort_unstable();
    used.dedup();
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut consts = Vec::with_capacity(used.len());
    for old in used {
        remap.insert(old, consts.len() as u32);
        consts.push(bc.consts[old as usize]);
    }
    remap_pools(&mut bc.main, &remap);
    bc.consts = consts;
}

fn collect_pools(code: &[Instr], out: &mut Vec<u32>) {
    for i in code {
        match i {
            Instr::Const { pool, .. } => out.push(*pool),
            Instr::For(f) => {
                collect_pools(&f.init.code, out);
                collect_pools(&f.bound.code, out);
                collect_pools(&f.step.code, out);
                collect_pools(&f.body, out);
            }
            _ => {}
        }
    }
}

fn remap_pools(code: &mut [Instr], remap: &HashMap<u32, u32>) {
    for i in code {
        match i {
            Instr::Const { pool, .. } => *pool = remap[pool],
            Instr::For(f) => {
                remap_pools(&mut f.init.code, remap);
                remap_pools(&mut f.bound.code, remap);
                remap_pools(&mut f.step.code, remap);
                remap_pools(&mut f.body, remap);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile_bytecode;
    use crate::parser::parse_program;
    use crate::slots::compile_program;

    fn o1(src: &str) -> BytecodeProgram {
        let bc = compile_bytecode(&compile_program(&parse_program("t", src).unwrap()));
        optimize(&bc, OptLevel::O1)
    }

    fn count<F: Fn(&Instr) -> bool>(code: &[Instr], f: F) -> usize {
        fn walk<F: Fn(&Instr) -> bool>(code: &[Instr], f: &F, n: &mut usize) {
            for i in code {
                if f(i) {
                    *n += 1;
                }
                if let Instr::For(fr) = i {
                    walk(&fr.init.code, f, n);
                    walk(&fr.bound.code, f, n);
                    walk(&fr.step.code, f, n);
                    walk(&fr.body, f, n);
                }
            }
        }
        let mut n = 0;
        walk(code, &f, &mut n);
        n
    }

    #[test]
    fn o0_is_the_identity() {
        let bc = compile_bytecode(&compile_program(
            &parse_program("t", "x = 1 + 2; if (x < y) { z = a[b[0]]; }").unwrap(),
        ));
        let same = optimize(&bc, OptLevel::O0);
        assert_eq!(same.main, bc.main);
        assert_eq!(same.consts, bc.consts);
    }

    #[test]
    fn subscripted_subscript_loads_fuse() {
        let p = o1("x = a[b[i]];");
        assert_eq!(count(&p.main, |i| matches!(i, Instr::LoadLoad { .. })), 1);
        assert_eq!(count(&p.main, |i| matches!(i, Instr::Load { .. })), 0);
        assert!(p.disassemble().contains("ldld     %x <- a[b[%i]]"));
    }

    #[test]
    fn compares_fuse_into_their_branches() {
        let p = o1("if (x < y) { z = 1; } else { z = 2; }");
        assert_eq!(count(&p.main, |i| matches!(i, Instr::CmpBranch { .. })), 1);
        assert_eq!(
            count(&p.main, |i| matches!(i, Instr::Bin { op: BinOp::Lt, .. })),
            0
        );
        // The fused branch falls into the then-branch and jumps (on false)
        // to the else-branch; every target stays in range.
        for i in &p.main {
            if let Instr::CmpBranch {
                target, jump_if, ..
            } = i
            {
                assert!(!*jump_if);
                assert!((*target as usize) <= p.main.len());
            }
        }
    }

    #[test]
    fn rank2_accesses_elide_their_subscript_copies() {
        let p = o1("m[i][j] = 7; x = m[i][j];");
        assert_eq!(count(&p.main, |i| matches!(i, Instr::Store2 { .. })), 1);
        assert_eq!(count(&p.main, |i| matches!(i, Instr::Load2 { .. })), 1);
        assert_eq!(count(&p.main, |i| matches!(i, Instr::Copy { .. })), 0);
    }

    #[test]
    fn constants_fold_and_the_pool_compacts() {
        let p = o1("x = 2 + 3; y = x;");
        // x = 5 directly; y = x stays a copy (x is a runtime register).
        assert!(matches!(p.main[0], Instr::Const { .. }));
        assert_eq!(p.consts, vec![5]);
        // Within one straight line the lattice also knows x == 5.
        assert!(matches!(p.main[1], Instr::Const { .. }));
    }

    #[test]
    fn division_by_zero_is_never_folded() {
        let p = o1("x = 1 / 0; y = 7 % 0;");
        assert_eq!(
            count(&p.main, |i| matches!(
                i,
                Instr::Bin {
                    op: BinOp::Div | BinOp::Mod,
                    ..
                }
            )),
            2
        );
    }

    #[test]
    fn overflow_is_never_folded() {
        let src = format!("x = {} + 1; y = {} * 2;", i64::MAX, i64::MAX);
        let p = o1(&src);
        assert_eq!(count(&p.main, |i| matches!(i, Instr::Bin { .. })), 2);
    }

    #[test]
    fn scalar_writes_are_never_deleted() {
        // Nothing reads x, but its write must survive (defined-ness and
        // final-heap contents are observable).
        let p = o1("x = 5;");
        assert_eq!(p.main.len(), 1);
        assert!(matches!(p.main[0], Instr::Const { dst: Reg(0), .. }));
    }

    #[test]
    fn loop_header_blocks_and_bodies_are_optimized() {
        let p = o1("for (i = 0; i < n; i++) { out[i] = a[b[i]]; if (i < 3) { x = 1 + 1; } }");
        assert_eq!(count(&p.main, |i| matches!(i, Instr::LoadLoad { .. })), 1);
        assert_eq!(count(&p.main, |i| matches!(i, Instr::CmpBranch { .. })), 1);
        // `1 + 1` folded somewhere inside the loop body.
        assert!(p.consts.contains(&2));
    }

    #[test]
    fn while_loops_keep_their_guards_and_backward_jumps() {
        let p = o1("w = 0; while (w < 3) { w = w + 1; }");
        assert_eq!(count(&p.main, |i| matches!(i, Instr::WhileEnter { .. })), 1);
        assert_eq!(count(&p.main, |i| matches!(i, Instr::WhileIter { .. })), 1);
        assert_eq!(count(&p.main, |i| matches!(i, Instr::WhileExit { .. })), 1);
        // The loop's compare fused with its exit test; the backward jump
        // still lands on the condition head (right after WhileEnter).
        let enter_at = p
            .main
            .iter()
            .position(|i| matches!(i, Instr::WhileEnter { .. }))
            .unwrap();
        let back = p
            .main
            .iter()
            .filter_map(|i| match i {
                Instr::Jump { target } => Some(*target),
                _ => None,
            })
            .min()
            .unwrap();
        assert_eq!(back as usize, enter_at + 1);
    }

    #[test]
    fn opt_level_parses_and_prints() {
        assert_eq!(OptLevel::from_flag("0"), Some(OptLevel::O0));
        assert_eq!(OptLevel::from_flag("1"), Some(OptLevel::O1));
        assert_eq!(OptLevel::from_flag("2"), None);
        assert_eq!(OptLevel::default(), OptLevel::O1);
        assert_eq!(OptLevel::O0.to_string(), "O0");
        assert_eq!(OptLevel::O1.label(), "O1");
    }
}
