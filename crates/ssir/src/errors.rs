//! Error types for the mini-C frontend.

use std::fmt;

/// Result alias for frontend operations.
pub type Result<T> = std::result::Result<T, IrError>;

/// Errors produced by the lexer and parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Lexical error at a source position.
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable description.
        message: String,
    },
    /// Parse error at a source position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable description.
        message: String,
    },
    /// A semantic restriction of the mini language was violated
    /// (e.g. assigning to an undeclared 3-D array slice).
    Semantic(String),
}

impl IrError {
    /// Constructs a lexical error.
    pub fn lex(line: usize, col: usize, message: String) -> IrError {
        IrError::Lex { line, col, message }
    }

    /// Constructs a parse error.
    pub fn parse(line: usize, col: usize, message: String) -> IrError {
        IrError::Parse { line, col, message }
    }

    /// The 1-based `(line, column)` source position of the error, when it
    /// has one (semantic restrictions are not anchored to a single token).
    pub fn position(&self) -> Option<(usize, usize)> {
        match self {
            IrError::Lex { line, col, .. } | IrError::Parse { line, col, .. } => {
                Some((*line, *col))
            }
            IrError::Semantic(_) => None,
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Lex { line, col, message } => {
                write!(f, "lex error at {line}:{col}: {message}")
            }
            IrError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            IrError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_position() {
        let e = IrError::parse(3, 14, "expected ';'".into());
        assert_eq!(format!("{e}"), "parse error at 3:14: expected ';'");
        let e = IrError::Semantic("oops".into());
        assert_eq!(format!("{e}"), "semantic error: oops");
    }

    #[test]
    fn position_exposes_the_span() {
        assert_eq!(IrError::parse(3, 14, "x".into()).position(), Some((3, 14)));
        assert_eq!(IrError::lex(1, 2, "x".into()).position(), Some((1, 2)));
        assert_eq!(IrError::Semantic("x".into()).position(), None);
    }
}
