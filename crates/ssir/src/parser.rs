//! Recursive-descent parser for the mini-C loop language.
//!
//! The accepted grammar covers exactly the constructs the paper's figures
//! use: integer declarations, assignments (plain, compound, `++`/`--`),
//! `if`/`else`, canonical counted `for` loops, `while` loops, and
//! `#pragma` lines attached to the following `for` loop.

use crate::ast::{AExpr, AssignOp, BinOp, LValue, LoopId, Program, Stmt, UnOp};
use crate::errors::{IrError, Result};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parses a source string into a [`Program`] with the given name.
pub fn parse_program(name: &str, src: &str) -> Result<Program> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_loop_id: 0,
    };
    let body = p.parse_stmts_until_eof()?;
    Ok(Program::new(name, body))
}

/// Parses a single expression (useful in tests and in the REPL-style
/// examples).
pub fn parse_expr(src: &str) -> Result<AExpr> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_loop_id: 0,
    };
    let e = p.parse_expression()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_loop_id: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.peek_kind() == kind {
            Ok(self.bump())
        } else {
            let t = self.peek();
            Err(IrError::parse(
                t.line,
                t.col,
                format!("expected '{kind}', found '{}'", t.kind),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                let t = self.peek();
                Err(IrError::parse(
                    t.line,
                    t.col,
                    format!("expected identifier, found '{other}'"),
                ))
            }
        }
    }

    fn fresh_loop_id(&mut self) -> LoopId {
        let id = LoopId(self.next_loop_id);
        self.next_loop_id += 1;
        id
    }

    fn parse_stmts_until_eof(&mut self) -> Result<Vec<Stmt>> {
        let mut out = Vec::new();
        while self.peek_kind() != &TokenKind::Eof {
            out.push(self.parse_stmt()?);
        }
        Ok(out)
    }

    fn parse_block_or_stmt(&mut self) -> Result<Vec<Stmt>> {
        if self.check(&TokenKind::LBrace) {
            let mut out = Vec::new();
            while self.peek_kind() != &TokenKind::RBrace {
                if self.peek_kind() == &TokenKind::Eof {
                    let t = self.peek();
                    return Err(IrError::parse(t.line, t.col, "unclosed '{'".into()));
                }
                out.push(self.parse_stmt()?);
            }
            self.expect(&TokenKind::RBrace)?;
            Ok(out)
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        // Collect pragma lines; they attach to the next `for`.
        let mut pragmas = Vec::new();
        while let TokenKind::Pragma(text) = self.peek_kind().clone() {
            pragmas.push(text);
            self.bump();
        }
        match self.peek_kind().clone() {
            TokenKind::KwFor => self.parse_for(pragmas),
            TokenKind::KwWhile => self.parse_while(),
            TokenKind::KwIf => self.parse_if(),
            TokenKind::KwInt => self.parse_decl(),
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                // prefix increment statement: ++x;
                let op = self.bump().kind;
                let name = self.expect_ident()?;
                self.expect(&TokenKind::Semicolon)?;
                let delta = if op == TokenKind::PlusPlus { 1 } else { -1 };
                Ok(Stmt::Assign {
                    target: LValue::scalar(name.clone()),
                    op: AssignOp::AddAssign,
                    value: AExpr::int(delta),
                })
            }
            TokenKind::Ident(_) => self.parse_assign(),
            other => {
                let t = self.peek();
                Err(IrError::parse(
                    t.line,
                    t.col,
                    format!("expected a statement, found '{other}'"),
                ))
            }
        }
    }

    fn parse_decl(&mut self) -> Result<Stmt> {
        self.expect(&TokenKind::KwInt)?;
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.check(&TokenKind::LBracket) {
            dims.push(self.parse_expression()?);
            self.expect(&TokenKind::RBracket)?;
        }
        let init = if dims.is_empty() && self.check(&TokenKind::Assign) {
            Some(self.parse_expression()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semicolon)?;
        Ok(Stmt::Decl { name, dims, init })
    }

    fn parse_lvalue(&mut self) -> Result<LValue> {
        let name = self.expect_ident()?;
        let mut indices = Vec::new();
        while self.check(&TokenKind::LBracket) {
            indices.push(self.parse_expression()?);
            self.expect(&TokenKind::RBracket)?;
        }
        Ok(LValue { name, indices })
    }

    fn parse_assign(&mut self) -> Result<Stmt> {
        let stmt = self.parse_assign_no_semicolon()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(stmt)
    }

    /// Parses an assignment without the trailing semicolon (shared between
    /// statements and `for`-loop init/update clauses).
    fn parse_assign_no_semicolon(&mut self) -> Result<Stmt> {
        let target = self.parse_lvalue()?;
        let op_tok = self.bump();
        let (op, value) = match op_tok.kind {
            TokenKind::Assign => (AssignOp::Assign, self.parse_expression()?),
            TokenKind::PlusAssign => (AssignOp::AddAssign, self.parse_expression()?),
            TokenKind::MinusAssign => (AssignOp::SubAssign, self.parse_expression()?),
            TokenKind::StarAssign => (AssignOp::MulAssign, self.parse_expression()?),
            TokenKind::PlusPlus => (AssignOp::AddAssign, AExpr::int(1)),
            TokenKind::MinusMinus => (AssignOp::AddAssign, AExpr::int(-1)),
            other => {
                return Err(IrError::parse(
                    op_tok.line,
                    op_tok.col,
                    format!("expected an assignment operator, found '{other}'"),
                ))
            }
        };
        Ok(Stmt::Assign { target, op, value })
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expression()?;
        self.expect(&TokenKind::RParen)?;
        let then_branch = self.parse_block_or_stmt()?;
        let else_branch = if self.check_kw_else() {
            self.parse_block_or_stmt()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn check_kw_else(&mut self) -> bool {
        if self.peek_kind() == &TokenKind::KwElse {
            self.bump();
            true
        } else {
            false
        }
    }

    fn parse_while(&mut self) -> Result<Stmt> {
        self.expect(&TokenKind::KwWhile)?;
        let id = self.fresh_loop_id();
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expression()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_block_or_stmt()?;
        Ok(Stmt::While { id, cond, body })
    }

    fn parse_for(&mut self, pragmas: Vec<String>) -> Result<Stmt> {
        self.expect(&TokenKind::KwFor)?;
        let id = self.fresh_loop_id();
        self.expect(&TokenKind::LParen)?;
        // init: [int] var = expr
        self.check(&TokenKind::KwInt);
        let (line, col) = (self.peek().line, self.peek().col);
        let init_stmt = self.parse_assign_no_semicolon()?;
        let (var, init) = match init_stmt {
            Stmt::Assign {
                target,
                op: AssignOp::Assign,
                value,
            } if target.is_scalar() => (target.name, value),
            _ => {
                return Err(IrError::parse(
                    line,
                    col,
                    "for-loop initialization must be 'var = expr'".into(),
                ))
            }
        };
        self.expect(&TokenKind::Semicolon)?;
        // cond: var (< | <= | > | >=) expr
        let (cline, ccol) = (self.peek().line, self.peek().col);
        let cond_var = self.expect_ident()?;
        if cond_var != var {
            return Err(IrError::parse(
                cline,
                ccol,
                format!(
                    "for-loop condition must test the index variable '{var}', found '{cond_var}'"
                ),
            ));
        }
        let cond_tok = self.bump();
        let cond_op = match cond_tok.kind {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            other => {
                return Err(IrError::parse(
                    cond_tok.line,
                    cond_tok.col,
                    format!("for-loop condition must be a comparison, found '{other}'"),
                ))
            }
        };
        let bound = self.parse_expression()?;
        self.expect(&TokenKind::Semicolon)?;
        // update: var++ | var-- | var += e | var -= e | var = var + e
        let (uline, ucol) = (self.peek().line, self.peek().col);
        let update = self.parse_assign_no_semicolon()?;
        let step = match update {
            Stmt::Assign {
                ref target,
                op: AssignOp::AddAssign,
                ref value,
            } if target.is_scalar() && target.name == var => value.clone(),
            Stmt::Assign {
                ref target,
                op: AssignOp::SubAssign,
                ref value,
            } if target.is_scalar() && target.name == var => {
                AExpr::Unary(UnOp::Neg, Box::new(value.clone()))
            }
            Stmt::Assign {
                ref target,
                op: AssignOp::Assign,
                value: AExpr::Binary(BinOp::Add, ref a, ref b),
            } if target.is_scalar() && target.name == var => match (a.as_ref(), b.as_ref()) {
                (AExpr::Var(v), e) if *v == var => e.clone(),
                (e, AExpr::Var(v)) if *v == var => e.clone(),
                _ => {
                    return Err(IrError::parse(
                        uline,
                        ucol,
                        "for-loop update must increment the index variable".into(),
                    ))
                }
            },
            Stmt::Assign {
                ref target,
                op: AssignOp::Assign,
                value: AExpr::Binary(BinOp::Sub, ref a, ref b),
            } if target.is_scalar() && target.name == var => match (a.as_ref(), b.as_ref()) {
                (AExpr::Var(v), AExpr::IntLit(k)) if *v == var => AExpr::IntLit(-k),
                (AExpr::Var(v), e) if *v == var => AExpr::Unary(UnOp::Neg, Box::new(e.clone())),
                _ => {
                    return Err(IrError::parse(
                        uline,
                        ucol,
                        "for-loop update must increment or decrement the index variable".into(),
                    ))
                }
            },
            _ => {
                return Err(IrError::parse(
                    uline,
                    ucol,
                    "for-loop update must be 'var++', 'var += e' or 'var = var + e'".into(),
                ))
            }
        };
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_block_or_stmt()?;
        Ok(Stmt::For {
            id,
            var,
            init,
            cond_op,
            bound,
            step,
            body,
            pragmas,
        })
    }

    // ---- expressions -------------------------------------------------------

    fn parse_expression(&mut self) -> Result<AExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AExpr> {
        let mut lhs = self.parse_and()?;
        while self.check(&TokenKind::OrOr) {
            let rhs = self.parse_and()?;
            lhs = AExpr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<AExpr> {
        let mut lhs = self.parse_equality()?;
        while self.check(&TokenKind::AndAnd) {
            let rhs = self.parse_equality()?;
            lhs = AExpr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_equality(&mut self) -> Result<AExpr> {
        let mut lhs = self.parse_relational()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_relational()?;
            lhs = AExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_relational(&mut self) -> Result<AExpr> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            lhs = AExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<AExpr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = AExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<AExpr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = AExpr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<AExpr> {
        if self.check(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(match inner {
                AExpr::IntLit(v) => AExpr::IntLit(-v),
                other => AExpr::Unary(UnOp::Neg, Box::new(other)),
            });
        }
        if self.check(&TokenKind::Not) {
            let inner = self.parse_unary()?;
            return Ok(AExpr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AExpr> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(AExpr::IntLit(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                let mut indices = Vec::new();
                while self.check(&TokenKind::LBracket) {
                    indices.push(self.parse_expression()?);
                    self.expect(&TokenKind::RBracket)?;
                }
                if indices.is_empty() {
                    Ok(AExpr::Var(name))
                } else {
                    Ok(AExpr::Index(name, indices))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expression()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => {
                let t = self.peek();
                Err(IrError::parse(
                    t.line,
                    t.col,
                    format!("expected an expression, found '{other}'"),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_loop() {
        let src = r#"
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#;
        let p = parse_program("fig2", src).unwrap();
        assert_eq!(p.loop_ids().len(), 1);
        let Stmt::For {
            var, body, cond_op, ..
        } = &p.body[0]
        else {
            panic!("expected for loop");
        };
        assert_eq!(var, "miel");
        assert_eq!(*cond_op, BinOp::Lt);
        assert_eq!(body.len(), 2);
        assert!(matches!(
            &body[1],
            Stmt::Assign { target, .. } if target.name == "id_to_mt"
        ));
    }

    #[test]
    fn parses_nested_loops_and_assigns_ids_in_preorder() {
        let src = r#"
            for (j = 0; j < n; j++) {
                for (k = rowstr[j]; k < rowstr[j+1]; k++) {
                    colidx[k] = colidx[k] - firstcol;
                }
            }
            for (i = 0; i < m; i++) { x[i] = 0; }
        "#;
        let p = parse_program("cg", src).unwrap();
        assert_eq!(p.loop_ids(), vec![LoopId(0), LoopId(1), LoopId(2)]);
        // inner loop init is an array read
        let Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        let Stmt::For { init, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(init, &AExpr::index("rowstr", AExpr::var("j")));
    }

    #[test]
    fn parses_if_else_and_guarded_subscript() {
        let src = r#"
            for (i = 0; i < m; i++) {
                if (jmatch[i] >= 0) {
                    imatch[jmatch[i]] = i;
                }
            }
        "#;
        let p = parse_program("fig5", src).unwrap();
        let Stmt::For { body, .. } = &p.body[0] else {
            panic!()
        };
        let Stmt::If {
            cond,
            then_branch,
            else_branch,
        } = &body[0]
        else {
            panic!("expected if");
        };
        assert_eq!(
            cond,
            &AExpr::bin(
                BinOp::Ge,
                AExpr::index("jmatch", AExpr::var("i")),
                AExpr::int(0)
            )
        );
        assert_eq!(then_branch.len(), 1);
        assert!(else_branch.is_empty());
        let Stmt::Assign { target, .. } = &then_branch[0] else {
            panic!()
        };
        assert!(target.indices[0].arrays().contains(&"jmatch".to_string()));
    }

    #[test]
    fn parses_increment_and_compound_assignment_forms() {
        let src = r#"
            count = 0;
            count++;
            index += 2;
            nza = nza + 1;
            value[ind++] = a[i][j];
        "#;
        // `value[ind++]` is not supported (post-increment inside an
        // expression); it must be rejected, matching the paper's treatment of
        // such subscripts as too complex (the figures rewrite them).
        assert!(parse_program("t", src).is_err());
        let src_ok = r#"
            count = 0;
            count++;
            index += 2;
            nza = nza + 1;
            value[ind] = a[i][j];
            ind++;
        "#;
        let p = parse_program("t", src_ok).unwrap();
        assert_eq!(p.body.len(), 6);
        assert!(matches!(
            &p.body[1],
            Stmt::Assign {
                op: AssignOp::AddAssign,
                value: AExpr::IntLit(1),
                ..
            }
        ));
        assert!(matches!(
            &p.body[4],
            Stmt::Assign { target, .. } if target.name == "value"
        ));
    }

    #[test]
    fn parses_2d_array_accesses() {
        let e = parse_expr("a[i][j] + 1").unwrap();
        assert_eq!(
            e,
            AExpr::add(
                AExpr::index2("a", AExpr::var("i"), AExpr::var("j")),
                AExpr::int(1)
            )
        );
    }

    #[test]
    fn parses_pragma_attached_to_for() {
        let src = r#"
            #pragma omp parallel for private(j,j1)
            for (i = 0; i < n; i++) { x[i] = 0; }
        "#;
        let p = parse_program("t", src).unwrap();
        let Stmt::For { pragmas, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(pragmas, &vec!["omp parallel for private(j,j1)".to_string()]);
    }

    #[test]
    fn parses_expression_precedence() {
        let e = parse_expr("ntemp + (i + 1) % 8").unwrap();
        assert_eq!(
            e,
            AExpr::add(
                AExpr::var("ntemp"),
                AExpr::bin(
                    BinOp::Mod,
                    AExpr::add(AExpr::var("i"), AExpr::int(1)),
                    AExpr::int(8)
                )
            )
        );
        let e = parse_expr("(front[miel]-1)*7").unwrap();
        assert_eq!(
            e,
            AExpr::mul(
                AExpr::sub(AExpr::index("front", AExpr::var("miel")), AExpr::int(1)),
                AExpr::int(7)
            )
        );
        // unary minus on literals folds
        assert_eq!(parse_expr("-3").unwrap(), AExpr::IntLit(-3));
    }

    #[test]
    fn parses_for_variants() {
        let p = parse_program("t", "for (i = 0; i <= n; i += 2) { x[i] = 0; }").unwrap();
        let Stmt::For { cond_op, step, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(*cond_op, BinOp::Le);
        assert_eq!(step, &AExpr::int(2));
        let p = parse_program("t", "for (i = n; i > 0; i = i - 1) { x[i] = 0; }").unwrap();
        let Stmt::For { cond_op, step, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(*cond_op, BinOp::Gt);
        assert_eq!(step, &AExpr::int(-1));
        let p = parse_program("t", "for (i = 0; i < n; i -= -1) { x[i] = 0; }").unwrap();
        let Stmt::For { step, .. } = &p.body[0] else {
            panic!()
        };
        assert_eq!(step, &AExpr::Unary(UnOp::Neg, Box::new(AExpr::int(-1))));
    }

    #[test]
    fn declarations() {
        let p = parse_program(
            "t",
            "int x; int y = 3; int rowptr[ROWLEN + 1]; int a[ROWLEN][COLUMNLEN];",
        )
        .unwrap();
        assert_eq!(p.body.len(), 4);
        assert!(
            matches!(&p.body[0], Stmt::Decl { name, dims, init: None } if name == "x" && dims.is_empty())
        );
        assert!(matches!(
            &p.body[1],
            Stmt::Decl {
                init: Some(AExpr::IntLit(3)),
                ..
            }
        ));
        assert!(matches!(&p.body[2], Stmt::Decl { dims, .. } if dims.len() == 1));
        assert!(matches!(&p.body[3], Stmt::Decl { dims, .. } if dims.len() == 2));
    }

    #[test]
    fn while_loops_get_ids() {
        let p = parse_program("t", "while (x < n) { x = x + 1; }").unwrap();
        assert_eq!(p.loop_ids(), vec![LoopId(0)]);
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse_program("t", "for (i = 0 i < n; i++) {}").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("parse error"), "{msg}");
        let err = parse_program("t", "x = ;").unwrap_err();
        assert!(format!("{err}").contains("expected an expression"));
        let err = parse_program("t", "for (x[i] = 0; i < n; i++) {}").unwrap_err();
        assert!(format!("{err}").contains("for-loop initialization"));
    }
}
