//! Loop-nest utilities: normalized loop descriptions and the loop tree.
//!
//! The analysis of Section 3 walks loop nests *inside out*; the dependence
//! test of Section 5 needs, for every loop, its index variable and symbolic
//! iteration range.  This module extracts both from the AST.

use crate::ast::{AExpr, BinOp, LoopId, Program, Stmt};
use crate::convert::to_symbolic;
use ss_symbolic::{simplify, Expr, SymRange};

/// A normalized description of a counted loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// The loop's id.
    pub id: LoopId,
    /// Index variable name.
    pub var: String,
    /// First value of the index variable.
    pub first: Expr,
    /// Last value of the index variable (inclusive), derived from the exit
    /// test; `⊥` for loops the analysis cannot normalize (e.g. `while`).
    pub last: Expr,
    /// Step (only unit steps are fully analyzed; larger constant steps are
    /// kept for the dependence test).
    pub step: Expr,
    /// Whether the loop is a canonical counted `for` loop with constant
    /// positive step.
    pub is_normalized: bool,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// Id of the directly enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// `#pragma` annotations attached in the source (the manual-parallel
    /// oracle).
    pub pragmas: Vec<String>,
}

impl LoopInfo {
    /// The symbolic iteration range `[first : last]` of the index variable.
    pub fn index_range(&self) -> SymRange {
        SymRange::new(self.first.clone(), self.last.clone())
    }

    /// Symbolic trip count `last - first + 1` (unit-step loops only).
    pub fn trip_count(&self) -> Expr {
        if self.last == Expr::Bottom || self.first == Expr::Bottom {
            return Expr::Bottom;
        }
        simplify(&Expr::add(
            Expr::sub(self.last.clone(), self.first.clone()),
            Expr::Int(1),
        ))
    }

    /// True if the source carries an `omp parallel` pragma for this loop —
    /// i.e. a human parallelized it manually. Used as the oracle in the
    /// Figure 1 style study.
    pub fn manually_parallel(&self) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.contains("omp") && p.contains("parallel"))
    }
}

/// The loop tree of a program: every loop's [`LoopInfo`] plus parent/child
/// relations, in program (pre-)order.
#[derive(Debug, Clone, Default)]
pub struct LoopTree {
    /// All loops in program order.
    pub loops: Vec<LoopInfo>,
}

impl LoopTree {
    /// Builds the loop tree of a program.
    pub fn build(program: &Program) -> LoopTree {
        let mut loops = Vec::new();
        collect(&program.body, 0, None, &mut loops);
        LoopTree { loops }
    }

    /// Looks up a loop by id.
    pub fn get(&self, id: LoopId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.id == id)
    }

    /// All loops directly nested inside `id`.
    pub fn children(&self, id: LoopId) -> Vec<&LoopInfo> {
        self.loops.iter().filter(|l| l.parent == Some(id)).collect()
    }

    /// Outermost loops (no enclosing loop).
    pub fn outermost(&self) -> Vec<&LoopInfo> {
        self.loops.iter().filter(|l| l.parent.is_none()).collect()
    }

    /// Loops ordered innermost-first (deepest nesting level first), which is
    /// the traversal order of the paper's algorithm ("analyzing the loops in
    /// each nest from inside out").
    pub fn inside_out(&self) -> Vec<&LoopInfo> {
        let mut ordered: Vec<&LoopInfo> = self.loops.iter().collect();
        ordered.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.id.cmp(&b.id)));
        ordered
    }

    /// The chain of loops enclosing (and including) `id`, outermost first.
    pub fn enclosing_chain(&self, id: LoopId) -> Vec<&LoopInfo> {
        let mut chain = Vec::new();
        let mut cur = self.get(id);
        while let Some(info) = cur {
            chain.push(info);
            cur = info.parent.and_then(|p| self.get(p));
        }
        chain.reverse();
        chain
    }
}

fn collect(stmts: &[Stmt], depth: usize, parent: Option<LoopId>, out: &mut Vec<LoopInfo>) {
    for s in stmts {
        match s {
            Stmt::For {
                id,
                var,
                init,
                cond_op,
                bound,
                step,
                body,
                pragmas,
            } => {
                let info = normalize_for(
                    *id, var, init, *cond_op, bound, step, pragmas, depth, parent,
                );
                out.push(info);
                collect(body, depth + 1, Some(*id), out);
            }
            Stmt::While { id, body, .. } => {
                out.push(LoopInfo {
                    id: *id,
                    var: String::new(),
                    first: Expr::Bottom,
                    last: Expr::Bottom,
                    step: Expr::Bottom,
                    is_normalized: false,
                    depth,
                    parent,
                    pragmas: Vec::new(),
                });
                collect(body, depth + 1, Some(*id), out);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect(then_branch, depth, parent, out);
                collect(else_branch, depth, parent, out);
            }
            Stmt::Decl { .. } | Stmt::Assign { .. } => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn normalize_for(
    id: LoopId,
    var: &str,
    init: &AExpr,
    cond_op: BinOp,
    bound: &AExpr,
    step: &AExpr,
    pragmas: &[String],
    depth: usize,
    parent: Option<LoopId>,
) -> LoopInfo {
    let first = to_symbolic(init);
    let bound_sym = to_symbolic(bound);
    let step_sym = to_symbolic(step);
    let step_const = simplify(&step_sym).as_int();
    // Only increasing loops with `<` or `<=` exit tests and constant positive
    // step are normalized; everything else is analyzed conservatively.
    let normalizable = matches!(cond_op, BinOp::Lt | BinOp::Le)
        && step_const.map(|k| k > 0).unwrap_or(false)
        && first != Expr::Bottom
        && bound_sym != Expr::Bottom;
    let last = if normalizable {
        match cond_op {
            BinOp::Lt => simplify(&Expr::sub(bound_sym.clone(), Expr::Int(1))),
            BinOp::Le => simplify(&bound_sym),
            _ => unreachable!(),
        }
    } else {
        Expr::Bottom
    };
    LoopInfo {
        id,
        var: var.to_string(),
        first: simplify(&first),
        last,
        step: simplify(&step_sym),
        is_normalized: normalizable && step_const == Some(1),
        depth,
        parent,
        pragmas: pragmas.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn tree(src: &str) -> LoopTree {
        LoopTree::build(&parse_program("t", src).unwrap())
    }

    #[test]
    fn builds_nested_tree_with_ranges() {
        let t = tree(
            r#"
            for (j = 0; j < lastrow - firstrow + 1; j++) {
                for (k = rowstr[j]; k < rowstr[j+1]; k++) {
                    colidx[k] = colidx[k] - firstcol;
                }
            }
        "#,
        );
        assert_eq!(t.loops.len(), 2);
        let outer = t.get(LoopId(0)).unwrap();
        let inner = t.get(LoopId(1)).unwrap();
        assert_eq!(outer.var, "j");
        assert_eq!(outer.depth, 0);
        assert!(outer.is_normalized);
        assert_eq!(outer.first, Expr::Int(0));
        // last = lastrow - firstrow + 1 - 1 = lastrow - firstrow
        assert_eq!(
            outer.last,
            simplify(&Expr::sub(Expr::sym("lastrow"), Expr::sym("firstrow")))
        );
        assert_eq!(inner.parent, Some(LoopId(0)));
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.first, Expr::array_ref("rowstr", Expr::sym("j")));
        assert_eq!(
            inner.last,
            simplify(&Expr::sub(
                Expr::array_ref("rowstr", Expr::add(Expr::sym("j"), Expr::int(1))),
                Expr::int(1)
            ))
        );
        assert_eq!(t.children(LoopId(0)).len(), 1);
        assert_eq!(t.outermost().len(), 1);
    }

    #[test]
    fn inside_out_order() {
        let t = tree(
            r#"
            for (i = 0; i < n; i++) {
                for (j = 0; j < m; j++) { a[j] = 0; }
            }
            for (k = 0; k < p; k++) { b[k] = 0; }
        "#,
        );
        let order: Vec<u32> = t.inside_out().iter().map(|l| l.id.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn le_bound_and_strided_step() {
        let t = tree("for (i = 1; i <= ROWLEN; i++) { rowptr[i] = 0; }");
        let l = t.get(LoopId(0)).unwrap();
        assert!(l.is_normalized);
        assert_eq!(l.first, Expr::Int(1));
        assert_eq!(l.last, Expr::sym("ROWLEN"));
        assert_eq!(l.trip_count(), Expr::sym("ROWLEN"));
        let t = tree("for (i = 0; i < n; i += 2) { a[i] = 0; }");
        let l = t.get(LoopId(0)).unwrap();
        assert!(!l.is_normalized); // non-unit step
        assert_eq!(l.step, Expr::Int(2));
        assert_eq!(l.last, simplify(&Expr::sub(Expr::sym("n"), Expr::int(1))));
    }

    #[test]
    fn while_and_decreasing_loops_are_not_normalized() {
        let t = tree("while (x < n) { x = x + 1; }");
        assert!(!t.loops[0].is_normalized);
        assert_eq!(t.loops[0].last, Expr::Bottom);
        let t = tree("for (i = n; i > 0; i = i - 1) { a[i] = 0; }");
        assert!(!t.loops[0].is_normalized);
        assert_eq!(t.loops[0].trip_count(), Expr::Bottom);
    }

    #[test]
    fn loops_inside_if_branches_keep_outer_parent() {
        let t = tree(
            r#"
            for (i = 0; i < n; i++) {
                if (c[i] > 0) {
                    for (j = 0; j < m; j++) { a[j] = 0; }
                } else {
                    for (k = 0; k < m; k++) { b[k] = 0; }
                }
            }
        "#,
        );
        assert_eq!(t.loops.len(), 3);
        assert_eq!(t.get(LoopId(1)).unwrap().parent, Some(LoopId(0)));
        assert_eq!(t.get(LoopId(2)).unwrap().parent, Some(LoopId(0)));
        let chain = t.enclosing_chain(LoopId(2));
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].id, LoopId(0));
    }

    #[test]
    fn manual_parallel_oracle() {
        let t = tree(
            "#pragma omp parallel for\nfor (i = 0; i < n; i++) { a[i] = 0; }\nfor (j = 0; j < n; j++) { b[j] = 0; }",
        );
        assert!(t.get(LoopId(0)).unwrap().manually_parallel());
        assert!(!t.get(LoopId(1)).unwrap().manually_parallel());
    }
}
