//! # ss-ir — mini-C frontend and loop-nest IR
//!
//! A small C-like language, rich enough to express every subscripted-subscript
//! pattern of the paper's figures (Figs. 2–9) together with the code that
//! fills the index arrays:
//!
//! * [`lexer`] / [`parser`] — source text → [`ast::Program`];
//! * [`builder`] — programmatic construction with the same loop-id scheme;
//! * [`printer`] — back to C source, optionally with `#pragma omp parallel
//!   for` annotations added by the parallelizer;
//! * [`loops`] — normalized loop descriptions and the loop tree (inside-out
//!   traversal order of the paper's algorithm);
//! * [`visit`] — array access collection with guard conditions;
//! * [`convert`] — lowering of AST arithmetic to [`ss_symbolic::Expr`];
//! * [`slots`] — name interning and compilation to flat, slot-addressed op
//!   sequences (what the `ss-interp` compiled engines execute);
//! * [`bytecode`] — a second lowering from slot-resolved ops to a flat
//!   register-machine instruction stream (what the `ss-interp` bytecode
//!   engines, the default, execute);
//! * [`opt`] — the optimizing bytecode pass behind `--opt-level`: constant
//!   folding, superinstruction fusion (fused subscripted-subscript loads,
//!   compare-and-branch, copy-free rank-2 accesses) and dead-store
//!   elimination, all semantics-preserving (O0 ≡ O1 bit-identical heaps).
//!
//! ```
//! use ss_ir::parser::parse_program;
//! use ss_ir::loops::LoopTree;
//!
//! let program = parse_program("fig3", r#"
//!     for (j = 0; j < lastrow - firstrow + 1; j++) {
//!         for (k = rowstr[j]; k < rowstr[j+1]; k++) {
//!             colidx[k] = colidx[k] - firstcol;
//!         }
//!     }
//! "#).unwrap();
//! let tree = LoopTree::build(&program);
//! assert_eq!(tree.loops.len(), 2);
//! ```

pub mod ast;
pub mod builder;
pub mod bytecode;
pub mod convert;
pub mod errors;
pub mod lexer;
pub mod loops;
pub mod opt;
pub mod parser;
pub mod printer;
pub mod slots;
pub mod token;
pub mod visit;

pub use ast::{AExpr, AssignOp, BinOp, LValue, LoopId, Program, Stmt, UnOp};
pub use builder::ProgramBuilder;
pub use bytecode::{compile_bytecode, BcExpr, BcFor, BytecodeProgram, HeaderFast, Instr, Reg};
pub use errors::{IrError, Result};
pub use loops::{LoopInfo, LoopTree};
pub use opt::{optimize, OptLevel};
pub use parser::{parse_expr, parse_program};
pub use printer::{print_expr, print_program, print_program_with, PrintOptions};
pub use slots::{
    compile_program, ArraySlot, CExpr, CompiledBody, CompiledFor, CompiledProgram, Op, ScalarSlot,
    SlotMap,
};
pub use visit::{
    accesses_in_loop, collect_accesses, free_arrays, free_scalars, AccessKind, ArrayAccess,
};
