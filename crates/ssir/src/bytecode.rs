//! Expression-level bytecode: from slot-addressed op trees to a flat
//! register-machine instruction stream.
//!
//! The slot pass ([`crate::slots`]) eliminated name hashing, but its
//! executors still *tree-walk* a [`CExpr`] per expression per iteration —
//! one `match` plus one `Box` pointer chase per node.  This pass flattens
//! those trees away entirely:
//!
//! * expressions become straight-line [`Instr`] sequences over **numbered
//!   virtual registers**.  Registers `0..scalar_count` permanently alias the
//!   scalar slots (so a scalar read is free: the operand *is* the
//!   register); registers above that are per-statement expression
//!   temporaries;
//! * integer literals live in a deduplicated **constant pool** loaded by
//!   [`Instr::Const`];
//! * conditionals, short-circuit `&&`/`||` and `while` loops lower to
//!   **absolute jumps** ([`Instr::Jz`], [`Instr::Jnz`], [`Instr::Jump`])
//!   over a linear program counter.  Flattened `while` loops keep their
//!   iteration-cap/statistics semantics through the
//!   [`Instr::WhileEnter`]/[`Instr::WhileIter`]/[`Instr::WhileExit`] guard
//!   instructions;
//! * array traffic goes through dedicated instructions that take their
//!   subscripts from a run of consecutive registers ([`Instr::Load`],
//!   [`Instr::Store`], [`Instr::DeclArray`]);
//! * compound assignments (`x += e`, `a[i] *= e`) use a dedicated
//!   accumulate instruction ([`Instr::Accum`]) — one fused
//!   read-modify-write, which is also the shape of every recognized
//!   reduction's update;
//! * counted `for` loops stay structured ([`Instr::For`]) for the same
//!   reason they do in the slot pass: executors attach per-loop behavior to
//!   them (iteration caps, statistics, parallel dispatch).  Their header
//!   expressions (init/bound/step) are themselves flat [`BcExpr`] blocks.
//!
//! Compilation happens **once per run**, alongside the slot pass —
//! [`bytecode_compilation_count`] mirrors [`crate::slots::compilation_count`]
//! so tests can assert no executor recompiles per loop entry.
//!
//! [`BytecodeProgram::disassemble`] renders the whole stream as a readable
//! listing (scalar registers shown by name), which the golden snapshot
//! tests diff so instruction-selection regressions are visible in review.

use crate::ast::{AssignOp, BinOp, LoopId, UnOp};
use crate::slots::{ArraySlot, CExpr, CompiledBody, CompiledFor, CompiledProgram, Op, SlotMap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A virtual register.  Registers `0..scalar_count` alias the scalar slots
/// of the program's [`SlotMap`]; higher registers are expression
/// temporaries with no cross-statement lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// The register as a `usize` index into the register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One instruction of the register machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = consts[pool]`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Index into the constant pool.
        pool: u32,
    },
    /// `dst = src`.
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = a op b` (non-short-circuit operators only; `&&`/`||` compile
    /// to jumps).
    Bin {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
    },
    /// `dst = dst op src` — the fused accumulate behind every compound
    /// assignment, including reduction updates (`sum += term`).
    Accum {
        /// Compound operator (`Assign` is never emitted here).
        op: AssignOp,
        /// Accumulator register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `dst = -src` (wrapping).
    Neg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = (src == 0)`.
    Not {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = array[r(idx), r(idx+1), …, r(idx+rank-1)]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// The array.
        array: ArraySlot,
        /// First subscript register (subscripts are consecutive).
        idx: Reg,
        /// Number of subscripts.
        rank: u8,
    },
    /// `array[r(idx), …, r(idx+rank-1)] = src`.
    Store {
        /// The array.
        array: ArraySlot,
        /// First subscript register.
        idx: Reg,
        /// Number of subscripts.
        rank: u8,
        /// Value register.
        src: Reg,
    },
    /// Allocates fresh zero-filled storage with extents
    /// `r(dims), …, r(dims+rank-1)` (negative extents clamp to 0).
    DeclArray {
        /// The declared array.
        array: ArraySlot,
        /// First extent register.
        dims: Reg,
        /// Number of extents.
        rank: u8,
    },
    /// Jump to `target` when `cond` is zero.
    Jz {
        /// Condition register.
        cond: Reg,
        /// Absolute instruction index.
        target: u32,
    },
    /// Jump to `target` when `cond` is non-zero.
    Jnz {
        /// Condition register.
        cond: Reg,
        /// Absolute instruction index.
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute instruction index.
        target: u32,
    },
    /// A counted loop (structured: executors hook dispatch, caps and stats
    /// here).
    For(Box<BcFor>),
    /// Enters a flattened `while` loop: pushes a guard frame (iteration
    /// counter, wall-clock start).
    WhileEnter {
        /// Loop id.
        id: LoopId,
    },
    /// One `while` iteration is about to run: errors if the innermost
    /// guard's count has reached the executor's cap, else increments it.
    WhileIter {
        /// Loop id.
        id: LoopId,
    },
    /// Exits a flattened `while` loop: pops the guard frame and records
    /// loop statistics.
    WhileExit {
        /// Loop id.
        id: LoopId,
    },
    /// `dst = outer[inner[idx]]` — the fused subscripted-subscript load.
    /// Emitted only by the [`crate::opt`] O1 pass (never by the base
    /// compiler); evaluation order and error points match the two loads it
    /// replaces: the inner read first, then the outer.
    LoadLoad {
        /// Destination register.
        dst: Reg,
        /// The outer array (`a` in `a[b[i]]`).
        outer: ArraySlot,
        /// The inner (index) array (`b` in `a[b[i]]`).
        inner: ArraySlot,
        /// Subscript register of the inner load.
        idx: Reg,
    },
    /// Fused compare-and-branch (O1): jump to `target` when
    /// `(a op b) == jump_if`.  `op` is always a relational operator, so the
    /// fused form cannot fail where the `Bin` + `Jz`/`Jnz` pair could not.
    CmpBranch {
        /// Relational operator (`<`, `<=`, `>`, `>=`, `==`, `!=`).
        op: BinOp,
        /// Left operand register.
        a: Reg,
        /// Right operand register.
        b: Reg,
        /// Absolute instruction index.
        target: u32,
        /// Jump when the comparison is true (`Jnz` shape) or false (`Jz`).
        jump_if: bool,
    },
    /// `dst = array[r(i0), r(i1)]` — rank-2 load whose subscripts come from
    /// two *arbitrary* registers (O1: elides the consecutive-register
    /// subscript copies the base compiler emits).
    Load2 {
        /// Destination register.
        dst: Reg,
        /// The array.
        array: ArraySlot,
        /// First subscript register.
        i0: Reg,
        /// Second subscript register.
        i1: Reg,
    },
    /// `array[r(i0), r(i1)] = src` — the rank-2 store counterpart of
    /// [`Instr::Load2`].
    Store2 {
        /// The array.
        array: ArraySlot,
        /// First subscript register.
        i0: Reg,
        /// Second subscript register.
        i1: Reg,
        /// Value register.
        src: Reg,
    },
}

/// A flat expression block: executing `code` leaves the value in `result`.
#[derive(Debug, Clone, PartialEq)]
pub struct BcExpr {
    /// The instructions.
    pub code: Vec<Instr>,
    /// Register holding the value afterwards.
    pub result: Reg,
}

/// How an executor may obtain a loop-header value (`init`/`bound`/`step`)
/// without running its expression block.  The base compiler always emits
/// [`HeaderFast::Eval`]; the O1 optimizer upgrades blocks it can prove
/// trivial — an empty block whose result is a plain register read, or a
/// single constant load.  Both shapes are side-effect- and error-free, so
/// skipping the block execution is unobservable; the block's code is kept
/// alongside, and executing it instead is always still correct.
///
/// [`HeaderFast::EvalOnce`] is the cross-iteration loop-invariant upgrade:
/// the block must still be executed (it may read arrays and can fault), but
/// the optimizer has proven that nothing the loop body (or the sibling
/// header blocks) writes feeds back into it, so one evaluation per loop
/// *entry* yields the same value — and the same error, at the same program
/// point, since the first evaluation happens exactly where `Eval` would
/// perform it — as re-evaluating every iteration.  This is what turns the
/// CSR-traversal bound `rowptr[i + 1]` into a hoisted load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeaderFast {
    /// Execute the expression block every time (the O0 behavior).
    Eval,
    /// Proven loop-invariant: execute the block once per loop entry and
    /// reuse the value for every subsequent iteration.
    EvalOnce,
    /// The block is empty: the value is a read of this register.
    Reg(Reg),
    /// The block is one constant load: the value is this constant.
    Const(i64),
}

/// A compiled counted loop: flat header expressions, flat body, and the
/// dispatch facts carried over from the slot pass.
#[derive(Debug, Clone, PartialEq)]
pub struct BcFor {
    /// Loop id (verdicts are keyed by it).
    pub id: LoopId,
    /// Register of the index variable (always a scalar register).
    pub var: Reg,
    /// Initial-value block.
    pub init: BcExpr,
    /// Comparison operator of the exit test.
    pub cond_op: BinOp,
    /// Bound block (re-executed every iteration, like the tree walker).
    pub bound: BcExpr,
    /// Step block.
    pub step: BcExpr,
    /// Fast path for the init value (O1-derived; `Eval` in O0 streams).
    pub init_fast: HeaderFast,
    /// Fast path for the per-iteration bound (O1-derived).
    pub bound_fast: HeaderFast,
    /// Fast path for the per-iteration step (O1-derived).
    pub step_fast: HeaderFast,
    /// Loop body.
    pub body: Vec<Instr>,
    /// Arrays declared (transitively) inside the body — dispatched workers
    /// give these private storage.
    pub local_arrays: Vec<ArraySlot>,
    /// See [`CompiledFor::locals_dominated`].
    pub locals_dominated: bool,
    /// See [`CompiledFor::skewed`].
    pub skewed: bool,
}

/// A whole program as bytecode: the top-level stream, the constant pool,
/// the register-file size and the (cloned) name table.
#[derive(Debug, Clone)]
pub struct BytecodeProgram {
    /// Top-level instruction stream.
    pub main: Vec<Instr>,
    /// The constant pool (deduplicated).
    pub consts: Vec<i64>,
    /// Total registers any block needs (`scalar_count()` scalars plus the
    /// deepest temporary run).
    pub nregs: usize,
    /// The interned name table (identical numbering to the slot pass it
    /// was compiled from).
    pub slots: SlotMap,
}

static BYTECODE_COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`compile_bytecode`] invocations (the bytecode
/// analogue of [`crate::slots::compilation_count`]).
pub fn bytecode_compilation_count() -> u64 {
    BYTECODE_COMPILATIONS.load(Ordering::Relaxed)
}

/// Compiles a slot-resolved program down to bytecode.
pub fn compile_bytecode(compiled: &CompiledProgram) -> BytecodeProgram {
    BYTECODE_COMPILATIONS.fetch_add(1, Ordering::Relaxed);
    let mut cx = Cx {
        consts: Vec::new(),
        const_ids: HashMap::new(),
        nscalars: compiled.slots.scalar_count() as u32,
        next_temp: compiled.slots.scalar_count() as u32,
        max_regs: compiled.slots.scalar_count() as u32,
    };
    let main = compile_body(&compiled.body, &mut cx);
    BytecodeProgram {
        main,
        consts: cx.consts,
        nregs: cx.max_regs as usize,
        slots: compiled.slots.clone(),
    }
}

struct Cx {
    consts: Vec<i64>,
    const_ids: HashMap<i64, u32>,
    nscalars: u32,
    next_temp: u32,
    max_regs: u32,
}

impl Cx {
    fn pool(&mut self, v: i64) -> u32 {
        if let Some(&id) = self.const_ids.get(&v) {
            return id;
        }
        let id = self.consts.len() as u32;
        self.consts.push(v);
        self.const_ids.insert(v, id);
        id
    }

    fn temp(&mut self) -> Reg {
        let r = self.next_temp;
        self.next_temp += 1;
        self.max_regs = self.max_regs.max(self.next_temp);
        Reg(r)
    }

    /// A run of `n` consecutive temporaries (for subscript/extent vectors).
    fn temp_block(&mut self, n: usize) -> Reg {
        let r = self.next_temp;
        self.next_temp += n as u32;
        self.max_regs = self.max_regs.max(self.next_temp);
        Reg(r)
    }

    /// Expression temporaries have no cross-statement lifetime.
    fn reset_temps(&mut self) {
        self.next_temp = self.nscalars;
    }
}

fn compile_body(body: &CompiledBody, cx: &mut Cx) -> Vec<Instr> {
    let mut code = Vec::new();
    // The slot pass's branch targets are op indices; record where each op
    // starts so they can be translated to instruction indices.
    let mut op_starts = vec![0u32; body.ops.len() + 1];
    let mut patches: Vec<(usize, usize)> = Vec::new(); // (instr index, op target)
    for (k, op) in body.ops.iter().enumerate() {
        op_starts[k] = code.len() as u32;
        cx.reset_temps();
        compile_op(op, cx, &mut code, &mut patches);
    }
    op_starts[body.ops.len()] = code.len() as u32;
    for (at, op_target) in patches {
        let t = op_starts[op_target];
        match &mut code[at] {
            Instr::Jz { target, .. } | Instr::Jnz { target, .. } | Instr::Jump { target } => {
                *target = t;
            }
            other => unreachable!("patching a non-jump instruction {other:?}"),
        }
    }
    code
}

fn compile_op(op: &Op, cx: &mut Cx, code: &mut Vec<Instr>, patches: &mut Vec<(usize, usize)>) {
    match op {
        Op::SetScalar { slot, op, value } => {
            let dst = Reg(slot.0);
            match op {
                AssignOp::Assign => compile_expr_to(value, dst, cx, code),
                _ => {
                    let src = compile_expr(value, cx, code);
                    code.push(Instr::Accum { op: *op, dst, src });
                }
            }
        }
        Op::StoreElem {
            array,
            indices,
            op,
            value,
        } => {
            // Tree-walker order: value, then subscripts, then (for compound
            // ops) the element read.
            let src = compile_expr(value, cx, code);
            let (idx, rank) = compile_index_block(indices, cx, code);
            match op {
                AssignOp::Assign => code.push(Instr::Store {
                    array: *array,
                    idx,
                    rank,
                    src,
                }),
                _ => {
                    let old = cx.temp();
                    code.push(Instr::Load {
                        dst: old,
                        array: *array,
                        idx,
                        rank,
                    });
                    code.push(Instr::Accum {
                        op: *op,
                        dst: old,
                        src,
                    });
                    code.push(Instr::Store {
                        array: *array,
                        idx,
                        rank,
                        src: old,
                    });
                }
            }
        }
        Op::DeclArray { array, dims } => {
            let (dims_reg, rank) = compile_index_block(dims, cx, code);
            code.push(Instr::DeclArray {
                array: *array,
                dims: dims_reg,
                rank,
            });
        }
        Op::BranchIfZero { cond, target } => {
            let rc = compile_expr(cond, cx, code);
            patches.push((code.len(), *target));
            code.push(Instr::Jz {
                cond: rc,
                target: u32::MAX,
            });
        }
        Op::Jump { target } => {
            patches.push((code.len(), *target));
            code.push(Instr::Jump { target: u32::MAX });
        }
        Op::For(f) => {
            let bc = compile_for(f, cx);
            code.push(Instr::For(Box::new(bc)));
        }
        Op::While { id, cond, body } => {
            // WhileEnter
            // head: <cond> rc; Jz rc, exit
            //       WhileIter; <body>; Jump head
            // exit: WhileExit
            code.push(Instr::WhileEnter { id: *id });
            let head = code.len() as u32;
            cx.reset_temps();
            let rc = compile_expr(cond, cx, code);
            let jz_at = code.len();
            code.push(Instr::Jz {
                cond: rc,
                target: u32::MAX,
            });
            code.push(Instr::WhileIter { id: *id });
            let body_code = compile_body(body, cx);
            append_rebased(code, body_code);
            code.push(Instr::Jump { target: head });
            let exit = code.len() as u32;
            match &mut code[jz_at] {
                Instr::Jz { target, .. } => *target = exit,
                _ => unreachable!(),
            }
            code.push(Instr::WhileExit { id: *id });
        }
    }
}

/// Appends an independently compiled block, rebasing its (block-relative)
/// jump targets onto the enclosing stream.
fn append_rebased(code: &mut Vec<Instr>, block: Vec<Instr>) {
    let base = code.len() as u32;
    for mut i in block {
        match &mut i {
            Instr::Jz { target, .. } | Instr::Jnz { target, .. } | Instr::Jump { target } => {
                *target += base;
            }
            _ => {}
        }
        code.push(i);
    }
}

fn compile_for(f: &CompiledFor, cx: &mut Cx) -> BcFor {
    let init = compile_expr_block(&f.init, cx);
    let bound = compile_expr_block(&f.bound, cx);
    let step = compile_expr_block(&f.step, cx);
    let body = compile_body(&f.body, cx);
    BcFor {
        id: f.id,
        var: Reg(f.var.0),
        init,
        cond_op: f.cond_op,
        bound,
        step,
        init_fast: HeaderFast::Eval,
        bound_fast: HeaderFast::Eval,
        step_fast: HeaderFast::Eval,
        body,
        local_arrays: f.local_arrays.clone(),
        locals_dominated: f.locals_dominated,
        skewed: f.skewed,
    }
}

fn compile_expr_block(e: &CExpr, cx: &mut Cx) -> BcExpr {
    cx.reset_temps();
    let mut code = Vec::new();
    let result = compile_expr(e, cx, &mut code);
    BcExpr { code, result }
}

/// Compiles the subscript (or extent) expressions of an array access into a
/// run of consecutive registers; rank-1 accesses skip the copy.
fn compile_index_block(indices: &[CExpr], cx: &mut Cx, code: &mut Vec<Instr>) -> (Reg, u8) {
    let rank = indices.len() as u8;
    if let [only] = indices {
        return (compile_expr(only, cx, code), rank);
    }
    let base = cx.temp_block(indices.len());
    for (k, e) in indices.iter().enumerate() {
        compile_expr_to(e, Reg(base.0 + k as u32), cx, code);
    }
    (base, rank)
}

/// Compiles `e`, returning the register holding its value.  Scalar reads
/// return the scalar's own register without emitting anything.
fn compile_expr(e: &CExpr, cx: &mut Cx, code: &mut Vec<Instr>) -> Reg {
    if let CExpr::Scalar(s) = e {
        return Reg(s.0);
    }
    let dst = cx.temp();
    compile_expr_to(e, dst, cx, code);
    dst
}

/// Compiles `e` so its value lands in `dst`.  `dst` is written only by the
/// final instruction of the sequence, so an evaluation error leaves it
/// untouched — the same guarantee the tree walker gives assignment targets.
fn compile_expr_to(e: &CExpr, dst: Reg, cx: &mut Cx, code: &mut Vec<Instr>) {
    match e {
        CExpr::Int(v) => {
            let pool = cx.pool(*v);
            code.push(Instr::Const { dst, pool });
        }
        CExpr::Scalar(s) => {
            // Emitted even when src == dst: a self-assignment (`x = x;`)
            // must still execute a write, because the engines key their
            // defined-slot tracking (and so heap write-back) off it.
            code.push(Instr::Copy { dst, src: Reg(s.0) });
        }
        CExpr::Load { array, indices } => {
            let (idx, rank) = compile_index_block(indices, cx, code);
            code.push(Instr::Load {
                dst,
                array: *array,
                idx,
                rank,
            });
        }
        CExpr::Binary(op, a, b) => match op {
            BinOp::And => {
                // ra == 0 → false; else rb == 0 → false; else true.
                let ra = compile_expr(a, cx, code);
                let mut false_jumps = vec![code.len()];
                code.push(Instr::Jz {
                    cond: ra,
                    target: u32::MAX,
                });
                let rb = compile_expr(b, cx, code);
                false_jumps.push(code.len());
                code.push(Instr::Jz {
                    cond: rb,
                    target: u32::MAX,
                });
                let one = cx.pool(1);
                let zero = cx.pool(0);
                code.push(Instr::Const { dst, pool: one });
                let jump_end = code.len();
                code.push(Instr::Jump { target: u32::MAX });
                let false_at = code.len() as u32;
                code.push(Instr::Const { dst, pool: zero });
                let end = code.len() as u32;
                for at in false_jumps {
                    patch_jump(code, at, false_at);
                }
                patch_jump(code, jump_end, end);
            }
            BinOp::Or => {
                let ra = compile_expr(a, cx, code);
                let mut true_jumps = vec![code.len()];
                code.push(Instr::Jnz {
                    cond: ra,
                    target: u32::MAX,
                });
                let rb = compile_expr(b, cx, code);
                true_jumps.push(code.len());
                code.push(Instr::Jnz {
                    cond: rb,
                    target: u32::MAX,
                });
                let one = cx.pool(1);
                let zero = cx.pool(0);
                code.push(Instr::Const { dst, pool: zero });
                let jump_end = code.len();
                code.push(Instr::Jump { target: u32::MAX });
                let true_at = code.len() as u32;
                code.push(Instr::Const { dst, pool: one });
                let end = code.len() as u32;
                for at in true_jumps {
                    patch_jump(code, at, true_at);
                }
                patch_jump(code, jump_end, end);
            }
            _ => {
                let ra = compile_expr(a, cx, code);
                let rb = compile_expr(b, cx, code);
                code.push(Instr::Bin {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
            }
        },
        CExpr::Unary(op, a) => {
            let src = compile_expr(a, cx, code);
            code.push(match op {
                UnOp::Neg => Instr::Neg { dst, src },
                UnOp::Not => Instr::Not { dst, src },
            });
        }
    }
}

fn patch_jump(code: &mut [Instr], at: usize, to: u32) {
    match &mut code[at] {
        Instr::Jz { target, .. } | Instr::Jnz { target, .. } | Instr::Jump { target } => {
            *target = to;
        }
        other => unreachable!("patching a non-jump instruction {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Disassembly.
// ---------------------------------------------------------------------------

/// Recursively counts instructions, descending into [`Instr::For`] bodies
/// and loop-header expression blocks.
fn count_instrs(code: &[Instr]) -> usize {
    code.iter()
        .map(|i| match i {
            Instr::For(f) => {
                1 + count_instrs(&f.init.code)
                    + count_instrs(&f.bound.code)
                    + count_instrs(&f.step.code)
                    + count_instrs(&f.body)
            }
            _ => 1,
        })
        .sum()
}

impl BytecodeProgram {
    /// Total instruction count, nested loop bodies and header expression
    /// blocks included.
    pub fn instr_count(&self) -> usize {
        count_instrs(&self.main)
    }

    /// Approximate in-memory footprint: instructions (nested included),
    /// the constant pool, and the interned slot names.  An estimate for
    /// byte-bounded artifact caches, not an exact measurement.
    pub fn approx_bytes(&self) -> usize {
        self.instr_count() * std::mem::size_of::<Instr>()
            + self.consts.len() * std::mem::size_of::<i64>()
            + self
                .slots
                .scalar_names()
                .iter()
                .map(|n| n.len() + std::mem::size_of::<String>())
                .sum::<usize>()
    }

    /// Renders the whole program as a readable listing: one instruction per
    /// line, scalar registers shown by name, nested loop blocks indented.
    /// The golden snapshot tests diff this output.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "; {} const(s), {} register(s) ({} scalar)\n",
            self.consts.len(),
            self.nregs,
            self.slots.scalar_count()
        ));
        for (i, c) in self.consts.iter().enumerate() {
            out.push_str(&format!("; const[{i}] = {c}\n"));
        }
        disasm_block(&self.main, self, 0, &mut out);
        out
    }

    fn reg_name(&self, r: Reg) -> String {
        if r.index() < self.slots.scalar_count() {
            format!("%{}", self.slots.scalar_names()[r.index()])
        } else {
            format!("t{}", r.index() - self.slots.scalar_count())
        }
    }

    fn fast_note(&self, fast: HeaderFast) -> String {
        match fast {
            HeaderFast::Eval => String::new(),
            HeaderFast::EvalOnce => " [fast: eval-once]".to_string(),
            HeaderFast::Reg(r) => format!(" [fast: {}]", self.reg_name(r)),
            HeaderFast::Const(v) => format!(" [fast: const {v}]"),
        }
    }

    fn regs_run(&self, first: Reg, rank: u8) -> String {
        (0..rank)
            .map(|k| self.reg_name(Reg(first.0 + k as u32)))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn disasm_block(code: &[Instr], p: &BytecodeProgram, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for (pc, i) in code.iter().enumerate() {
        match i {
            Instr::For(f) => {
                out.push_str(&format!(
                    "{pad}{pc:04}  for      L{} {} {} {} (step …){}{}{}\n",
                    f.id.0,
                    p.reg_name(f.var),
                    op_symbol(f.cond_op),
                    p.reg_name(f.bound.result),
                    if f.skewed { " [skewed]" } else { "" },
                    if f.locals_dominated && !f.local_arrays.is_empty() {
                        " [locals dominated]"
                    } else {
                        ""
                    },
                    if f.local_arrays.is_empty() {
                        String::new()
                    } else {
                        format!(
                            " [locals: {}]",
                            f.local_arrays
                                .iter()
                                .map(|a| p.slots.array_name(*a))
                                .collect::<Vec<_>>()
                                .join(",")
                        )
                    },
                ));
                out.push_str(&format!(
                    "{pad}      .init -> {}{}\n",
                    p.reg_name(f.init.result),
                    p.fast_note(f.init_fast)
                ));
                disasm_block(&f.init.code, p, depth + 2, out);
                out.push_str(&format!(
                    "{pad}      .bound -> {}{}\n",
                    p.reg_name(f.bound.result),
                    p.fast_note(f.bound_fast)
                ));
                disasm_block(&f.bound.code, p, depth + 2, out);
                out.push_str(&format!(
                    "{pad}      .step -> {}{}\n",
                    p.reg_name(f.step.result),
                    p.fast_note(f.step_fast)
                ));
                disasm_block(&f.step.code, p, depth + 2, out);
                out.push_str(&format!("{pad}      .body\n"));
                disasm_block(&f.body, p, depth + 2, out);
            }
            other => {
                out.push_str(&format!("{pad}{pc:04}  {}\n", disasm_instr(other, p)));
            }
        }
    }
}

fn op_symbol(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn assign_symbol(op: AssignOp) -> &'static str {
    match op {
        AssignOp::Assign => "=",
        AssignOp::AddAssign => "+=",
        AssignOp::SubAssign => "-=",
        AssignOp::MulAssign => "*=",
    }
}

fn disasm_instr(i: &Instr, p: &BytecodeProgram) -> String {
    match i {
        Instr::Const { dst, pool } => format!(
            "const    {} <- {} (const[{}])",
            p.reg_name(*dst),
            p.consts[*pool as usize],
            pool
        ),
        Instr::Copy { dst, src } => {
            format!("copy     {} <- {}", p.reg_name(*dst), p.reg_name(*src))
        }
        Instr::Bin { op, dst, a, b } => format!(
            "bin      {} <- {} {} {}",
            p.reg_name(*dst),
            p.reg_name(*a),
            op_symbol(*op),
            p.reg_name(*b)
        ),
        Instr::Accum { op, dst, src } => format!(
            "accum    {} {} {}",
            p.reg_name(*dst),
            assign_symbol(*op),
            p.reg_name(*src)
        ),
        Instr::Neg { dst, src } => format!("neg      {} <- {}", p.reg_name(*dst), p.reg_name(*src)),
        Instr::Not { dst, src } => format!("not      {} <- {}", p.reg_name(*dst), p.reg_name(*src)),
        Instr::Load {
            dst,
            array,
            idx,
            rank,
        } => format!(
            "load     {} <- {}[{}]",
            p.reg_name(*dst),
            p.slots.array_name(*array),
            p.regs_run(*idx, *rank)
        ),
        Instr::Store {
            array,
            idx,
            rank,
            src,
        } => format!(
            "store    {}[{}] <- {}",
            p.slots.array_name(*array),
            p.regs_run(*idx, *rank),
            p.reg_name(*src)
        ),
        Instr::DeclArray { array, dims, rank } => format!(
            "decl     {}[{}]",
            p.slots.array_name(*array),
            p.regs_run(*dims, *rank)
        ),
        Instr::Jz { cond, target } => format!("jz       {} -> {:04}", p.reg_name(*cond), target),
        Instr::Jnz { cond, target } => format!("jnz      {} -> {:04}", p.reg_name(*cond), target),
        Instr::Jump { target } => format!("jump     -> {target:04}"),
        Instr::WhileEnter { id } => format!("w.enter  L{}", id.0),
        Instr::WhileIter { id } => format!("w.iter   L{}", id.0),
        Instr::WhileExit { id } => format!("w.exit   L{}", id.0),
        Instr::LoadLoad {
            dst,
            outer,
            inner,
            idx,
        } => format!(
            "ldld     {} <- {}[{}[{}]]",
            p.reg_name(*dst),
            p.slots.array_name(*outer),
            p.slots.array_name(*inner),
            p.reg_name(*idx)
        ),
        Instr::CmpBranch {
            op,
            a,
            b,
            target,
            jump_if,
        } => format!(
            "cmpbr    {} {} {} -> {:04} (on {})",
            p.reg_name(*a),
            op_symbol(*op),
            p.reg_name(*b),
            target,
            if *jump_if { "true" } else { "false" }
        ),
        Instr::Load2 { dst, array, i0, i1 } => format!(
            "load2    {} <- {}[{}, {}]",
            p.reg_name(*dst),
            p.slots.array_name(*array),
            p.reg_name(*i0),
            p.reg_name(*i1)
        ),
        Instr::Store2 { array, i0, i1, src } => format!(
            "store2   {}[{}, {}] <- {}",
            p.slots.array_name(*array),
            p.reg_name(*i0),
            p.reg_name(*i1),
            p.reg_name(*src)
        ),
        Instr::For(_) => unreachable!("structured loops are rendered by the block printer"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::slots::compile_program;

    fn bc(src: &str) -> BytecodeProgram {
        compile_bytecode(&compile_program(&parse_program("t", src).unwrap()))
    }

    #[test]
    fn scalar_registers_alias_slots_and_constants_pool() {
        let p = bc("x = 5; y = x + 5; z = y;");
        // One 5 in the pool despite two uses.
        assert_eq!(p.consts, vec![5]);
        // x = 5 → const into x's scalar register.
        assert_eq!(
            p.main[0],
            Instr::Const {
                dst: Reg(0),
                pool: 0
            }
        );
        // y = x + 5 → const temp, then bin writing y's register directly.
        assert!(matches!(
            p.main[2],
            Instr::Bin {
                op: BinOp::Add,
                dst: Reg(1),
                a: Reg(0),
                ..
            }
        ));
        // z = y → plain register copy.
        assert_eq!(
            p.main[3],
            Instr::Copy {
                dst: Reg(2),
                src: Reg(1)
            }
        );
        assert_eq!(p.slots.scalar_count(), 3);
        assert!(p.nregs >= 4);
    }

    #[test]
    fn compound_assignments_use_accum() {
        let p = bc("x += 3; h[2] *= 2;");
        assert!(matches!(
            p.main[1],
            Instr::Accum {
                op: AssignOp::AddAssign,
                dst: Reg(0),
                ..
            }
        ));
        // Array compound: value, index, load, accum, store.
        let tail = &p.main[2..];
        assert!(matches!(tail[2], Instr::Load { .. }));
        assert!(matches!(
            tail[3],
            Instr::Accum {
                op: AssignOp::MulAssign,
                ..
            }
        ));
        assert!(matches!(tail[4], Instr::Store { .. }));
    }

    #[test]
    fn conditionals_and_short_circuit_lower_to_absolute_jumps() {
        let p = bc("if (x > 0 && y > 0) { z = 1; } else { z = 2; } w = 3;");
        let jumps: Vec<u32> = p
            .main
            .iter()
            .filter_map(|i| match i {
                Instr::Jz { target, .. } | Instr::Jnz { target, .. } | Instr::Jump { target } => {
                    Some(*target)
                }
                _ => None,
            })
            .collect();
        assert!(!jumps.is_empty());
        for t in jumps {
            assert!(
                (t as usize) <= p.main.len(),
                "target {t} out of range ({} instrs)",
                p.main.len()
            );
        }
        // No Bin instruction carries && — it compiled to control flow.
        assert!(!p.main.iter().any(|i| matches!(
            i,
            Instr::Bin {
                op: BinOp::And | BinOp::Or,
                ..
            }
        )));
    }

    #[test]
    fn while_loops_flatten_with_guard_instructions() {
        let p = bc("w = 0; while (w < 3) { w = w + 1; }");
        let kinds: Vec<&Instr> = p.main.iter().collect();
        assert!(kinds.iter().any(|i| matches!(i, Instr::WhileEnter { .. })));
        assert!(kinds.iter().any(|i| matches!(i, Instr::WhileIter { .. })));
        assert!(kinds.iter().any(|i| matches!(i, Instr::WhileExit { .. })));
        // The backward jump goes to the condition head (after WhileEnter).
        let enter_at = p
            .main
            .iter()
            .position(|i| matches!(i, Instr::WhileEnter { .. }))
            .unwrap();
        let back = p
            .main
            .iter()
            .filter_map(|i| match i {
                Instr::Jump { target } => Some(*target),
                _ => None,
            })
            .min()
            .unwrap();
        assert_eq!(back as usize, enter_at + 1);
    }

    #[test]
    fn for_loops_stay_structured_and_carry_facts() {
        let p = bc(r#"
            for (i = 0; i < n; i++) {
                int scratch[4];
                scratch[0] = i;
                out[i] = scratch[0];
            }
            for (j = 0; j < n; j++) {
                for (k = r[j]; k < r[j+1]; k++) { v[k] = j; }
            }
        "#);
        let fors: Vec<&BcFor> = p
            .main
            .iter()
            .filter_map(|i| match i {
                Instr::For(f) => Some(f.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(fors.len(), 2);
        assert_eq!(fors[0].local_arrays.len(), 1);
        assert!(fors[0].locals_dominated);
        assert!(!fors[0].skewed);
        assert!(fors[1].skewed);
        assert!(fors[1].local_arrays.is_empty());
        // The nested loop lives inside the second for's body.
        assert!(fors[1].body.iter().any(|i| matches!(i, Instr::For(_))));
    }

    #[test]
    fn multi_rank_accesses_use_consecutive_registers() {
        let p = bc("m[i + 1][j * 2] = 7;");
        let (idx, rank) = p
            .main
            .iter()
            .find_map(|i| match i {
                Instr::Store { idx, rank, .. } => Some((*idx, *rank)),
                _ => None,
            })
            .unwrap();
        assert_eq!(rank, 2);
        // Both subscript registers are temporaries above the scalar file.
        assert!(idx.index() >= p.slots.scalar_count());
        assert!(p.nregs >= idx.index() + 2);
    }

    #[test]
    fn compilation_counter_increments_once_per_compile() {
        let program = parse_program("t", "x = 1;").unwrap();
        let compiled = compile_program(&program);
        let before = bytecode_compilation_count();
        let _ = compile_bytecode(&compiled);
        assert_eq!(bytecode_compilation_count(), before + 1);
    }

    #[test]
    fn disassembly_names_scalars_and_lists_constants() {
        let p = bc("x = 5; for (i = 0; i < 3; i++) { out[i] = x; }");
        let d = p.disassemble();
        assert!(d.contains("%x"), "{d}");
        assert!(d.contains("const[0]"), "{d}");
        assert!(d.contains("for      L0 %i <"), "{d}");
        assert!(d.contains("store    out[%i]"), "{d}");
    }
}
