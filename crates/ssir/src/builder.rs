//! Programmatic construction of mini-C programs.
//!
//! The parser is the main entry point for transcribed benchmark kernels, but
//! generated workloads (parameter sweeps, property-based tests) are easier to
//! express programmatically.  [`ProgramBuilder`] assigns loop ids in the same
//! pre-order scheme as the parser, so both construction paths produce
//! interchangeable programs.

use crate::ast::{AExpr, AssignOp, BinOp, LValue, LoopId, Program, Stmt};

/// Builds a [`Program`] statement by statement.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    body: Vec<Stmt>,
    next_loop_id: u32,
}

impl ProgramBuilder {
    /// Starts a new program with the given name.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            body: Vec::new(),
            next_loop_id: 0,
        }
    }

    /// Adds a scalar assignment `name = value`.
    pub fn assign(mut self, name: &str, value: AExpr) -> Self {
        self.body.push(Stmt::Assign {
            target: LValue::scalar(name),
            op: AssignOp::Assign,
            value,
        });
        self
    }

    /// Adds an array element assignment `array[index] = value`.
    pub fn store(mut self, array: &str, index: AExpr, value: AExpr) -> Self {
        self.body.push(Stmt::Assign {
            target: LValue::element(array, index),
            op: AssignOp::Assign,
            value,
        });
        self
    }

    /// Adds a raw statement.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(s);
        self
    }

    /// Adds a unit-step `for` loop `for (var = first; var < bound; var++)`
    /// whose body is produced by the closure from a nested [`BlockBuilder`].
    pub fn for_loop(
        mut self,
        var: &str,
        first: AExpr,
        bound: AExpr,
        f: impl FnOnce(BlockBuilder) -> BlockBuilder,
    ) -> Self {
        let id = LoopId(self.next_loop_id);
        self.next_loop_id += 1;
        let block = f(BlockBuilder {
            body: Vec::new(),
            next_loop_id: self.next_loop_id,
        });
        self.next_loop_id = block.next_loop_id;
        self.body.push(Stmt::For {
            id,
            var: var.to_string(),
            init: first,
            cond_op: BinOp::Lt,
            bound,
            step: AExpr::int(1),
            body: block.body,
            pragmas: Vec::new(),
        });
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program::new(self.name, self.body)
    }
}

/// Builds the body of a loop or branch.
#[derive(Debug)]
pub struct BlockBuilder {
    body: Vec<Stmt>,
    next_loop_id: u32,
}

impl BlockBuilder {
    /// Adds a scalar assignment.
    pub fn assign(mut self, name: &str, value: AExpr) -> Self {
        self.body.push(Stmt::Assign {
            target: LValue::scalar(name),
            op: AssignOp::Assign,
            value,
        });
        self
    }

    /// Adds a compound scalar assignment `name += value`.
    pub fn add_assign(mut self, name: &str, value: AExpr) -> Self {
        self.body.push(Stmt::Assign {
            target: LValue::scalar(name),
            op: AssignOp::AddAssign,
            value,
        });
        self
    }

    /// Adds an array element assignment.
    pub fn store(mut self, array: &str, index: AExpr, value: AExpr) -> Self {
        self.body.push(Stmt::Assign {
            target: LValue::element(array, index),
            op: AssignOp::Assign,
            value,
        });
        self
    }

    /// Adds an `if`/`else`.
    pub fn if_else(
        mut self,
        cond: AExpr,
        then_f: impl FnOnce(BlockBuilder) -> BlockBuilder,
        else_f: impl FnOnce(BlockBuilder) -> BlockBuilder,
    ) -> Self {
        let then_block = then_f(BlockBuilder {
            body: Vec::new(),
            next_loop_id: self.next_loop_id,
        });
        self.next_loop_id = then_block.next_loop_id;
        let else_block = else_f(BlockBuilder {
            body: Vec::new(),
            next_loop_id: self.next_loop_id,
        });
        self.next_loop_id = else_block.next_loop_id;
        self.body.push(Stmt::If {
            cond,
            then_branch: then_block.body,
            else_branch: else_block.body,
        });
        self
    }

    /// Adds a nested unit-step `for` loop.
    pub fn for_loop(
        mut self,
        var: &str,
        first: AExpr,
        bound: AExpr,
        f: impl FnOnce(BlockBuilder) -> BlockBuilder,
    ) -> Self {
        let id = LoopId(self.next_loop_id);
        self.next_loop_id += 1;
        let block = f(BlockBuilder {
            body: Vec::new(),
            next_loop_id: self.next_loop_id,
        });
        self.next_loop_id = block.next_loop_id;
        self.body.push(Stmt::For {
            id,
            var: var.to_string(),
            init: first,
            cond_op: BinOp::Lt,
            bound,
            step: AExpr::int(1),
            body: block.body,
            pragmas: Vec::new(),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::LoopTree;
    use crate::parser::parse_program;
    use crate::printer::print_program;

    #[test]
    fn builder_matches_parser_output() {
        let built = ProgramBuilder::new("fig2")
            .for_loop("miel", AExpr::int(0), AExpr::var("nelt"), |b| {
                b.assign("iel", AExpr::index("mt_to_id", AExpr::var("miel")))
                    .store("id_to_mt", AExpr::var("iel"), AExpr::var("miel"))
            })
            .build();
        let parsed = parse_program(
            "fig2",
            r#"
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#,
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn loop_ids_are_preorder_like_the_parser() {
        let built = ProgramBuilder::new("t")
            .for_loop("i", AExpr::int(0), AExpr::var("n"), |b| {
                b.for_loop("j", AExpr::int(0), AExpr::var("m"), |b| {
                    b.store("a", AExpr::var("j"), AExpr::int(0))
                })
            })
            .for_loop("k", AExpr::int(0), AExpr::var("p"), |b| {
                b.store("b", AExpr::var("k"), AExpr::int(0))
            })
            .build();
        let tree = LoopTree::build(&built);
        let ids: Vec<u32> = tree.loops.iter().map(|l| l.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(tree.get(LoopId(1)).unwrap().parent, Some(LoopId(0)));
    }

    #[test]
    fn if_else_and_printing() {
        let built = ProgramBuilder::new("t")
            .for_loop("i", AExpr::int(0), AExpr::var("n"), |b| {
                b.if_else(
                    AExpr::bin(BinOp::Eq, AExpr::var("i"), AExpr::int(0)),
                    |t| t.assign("j1", AExpr::var("i")),
                    |e| {
                        e.assign(
                            "j1",
                            AExpr::index("rowptr", AExpr::sub(AExpr::var("i"), AExpr::int(1))),
                        )
                    },
                )
                .add_assign("count", AExpr::int(1))
            })
            .build();
        let printed = print_program(&built);
        assert!(printed.contains("if (i == 0)"));
        assert!(printed.contains("count += 1;"));
        let reparsed = parse_program("t", &printed).unwrap();
        assert_eq!(built, reparsed);
    }
}
