//! Conversion from AST expressions to symbolic expressions.
//!
//! The analysis passes work on [`ss_symbolic::Expr`]; this module lowers AST
//! arithmetic into that form.  Anything the symbolic engine cannot represent
//! (logical operators, 2-D array references, comparisons used as values)
//! lowers to `⊥`, exactly as the paper prescribes for "too complex"
//! expressions.

use crate::ast::{AExpr, BinOp, UnOp};
use ss_symbolic::Expr;

/// Lowers an arithmetic AST expression to a symbolic expression.
///
/// * scalars become [`Expr::Sym`],
/// * 1-D array references become [`Expr::ArrayRef`] with a lowered index,
/// * arithmetic maps structurally,
/// * everything else (comparisons, logical operators, 2-D references)
///   becomes [`Expr::Bottom`].
pub fn to_symbolic(e: &AExpr) -> Expr {
    match e {
        AExpr::IntLit(v) => Expr::Int(*v),
        AExpr::Var(s) => Expr::Sym(s.clone()),
        AExpr::Index(a, idxs) => {
            if idxs.len() == 1 {
                let idx = to_symbolic(&idxs[0]);
                if idx == Expr::Bottom {
                    Expr::Bottom
                } else {
                    Expr::ArrayRef(a.clone(), Box::new(idx))
                }
            } else {
                Expr::Bottom
            }
        }
        AExpr::Binary(op, a, b) => {
            let (x, y) = (to_symbolic(a), to_symbolic(b));
            if x == Expr::Bottom || y == Expr::Bottom {
                return Expr::Bottom;
            }
            match op {
                BinOp::Add => Expr::add(x, y),
                BinOp::Sub => Expr::sub(x, y),
                BinOp::Mul => Expr::mul(x, y),
                BinOp::Div => Expr::div(x, y),
                BinOp::Mod => Expr::modulo(x, y),
                _ => Expr::Bottom,
            }
        }
        AExpr::Unary(UnOp::Neg, a) => {
            let x = to_symbolic(a);
            if x == Expr::Bottom {
                Expr::Bottom
            } else {
                Expr::neg(x)
            }
        }
        AExpr::Unary(UnOp::Not, _) => Expr::Bottom,
    }
}

/// A condition lowered into a normalized comparison `lhs REL rhs` where both
/// sides are symbolic expressions.  Conditions that are not simple
/// comparisons return `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymCondition {
    /// Left-hand side.
    pub lhs: Expr,
    /// The comparison operator.
    pub op: BinOp,
    /// Right-hand side.
    pub rhs: Expr,
}

impl SymCondition {
    /// The negated condition (`<` ↔ `>=`, `==` ↔ `!=`, …).
    pub fn negate(&self) -> SymCondition {
        let op = match self.op {
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            other => other,
        };
        SymCondition {
            lhs: self.lhs.clone(),
            op,
            rhs: self.rhs.clone(),
        }
    }
}

/// Lowers a branch/loop condition into a [`SymCondition`] if it is a simple
/// comparison of two representable arithmetic expressions.
pub fn to_condition(e: &AExpr) -> Option<SymCondition> {
    if let AExpr::Binary(op, a, b) = e {
        if op.is_comparison() {
            let lhs = to_symbolic(a);
            let rhs = to_symbolic(b);
            if lhs != Expr::Bottom && rhs != Expr::Bottom {
                return Some(SymCondition { lhs, op: *op, rhs });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn lowers_arithmetic() {
        let e = parse_expr("rowptr[i-1] + rowsize[i-1]").unwrap();
        let s = to_symbolic(&e);
        assert_eq!(
            s,
            Expr::add(
                Expr::array_ref("rowptr", Expr::sub(Expr::sym("i"), Expr::int(1))),
                Expr::array_ref("rowsize", Expr::sub(Expr::sym("i"), Expr::int(1)))
            )
        );
        let e = parse_expr("(front[miel]-1)*7").unwrap();
        assert_eq!(
            to_symbolic(&e),
            Expr::mul(
                Expr::sub(Expr::array_ref("front", Expr::sym("miel")), Expr::int(1)),
                Expr::int(7)
            )
        );
    }

    #[test]
    fn unrepresentable_forms_become_bottom() {
        // 2-D access
        assert_eq!(to_symbolic(&parse_expr("a[i][j]").unwrap()), Expr::Bottom);
        // comparison as a value
        assert_eq!(to_symbolic(&parse_expr("a < b").unwrap()), Expr::Bottom);
        // logical not
        assert_eq!(to_symbolic(&parse_expr("!x").unwrap()), Expr::Bottom);
        // bottom propagates upward
        assert_eq!(
            to_symbolic(&parse_expr("1 + a[i][j]").unwrap()),
            Expr::Bottom
        );
    }

    #[test]
    fn negation_and_mod() {
        assert_eq!(
            to_symbolic(&parse_expr("-x").unwrap()),
            Expr::neg(Expr::sym("x"))
        );
        assert_eq!(
            to_symbolic(&parse_expr("(i + 1) % 8").unwrap()),
            Expr::modulo(Expr::add(Expr::sym("i"), Expr::int(1)), Expr::int(8))
        );
    }

    #[test]
    fn conditions() {
        let c = to_condition(&parse_expr("jmatch[i] >= 0").unwrap()).unwrap();
        assert_eq!(c.op, BinOp::Ge);
        assert_eq!(c.lhs, Expr::array_ref("jmatch", Expr::sym("i")));
        assert_eq!(c.rhs, Expr::Int(0));
        let n = c.negate();
        assert_eq!(n.op, BinOp::Lt);
        // non-comparison conditions are rejected
        assert!(to_condition(&parse_expr("a && b").unwrap()).is_none());
        assert!(to_condition(&parse_expr("x + 1").unwrap()).is_none());
        // conditions over 2-D accesses are rejected
        assert!(to_condition(&parse_expr("a[i][j] == 4").unwrap()).is_none());
    }
}
