//! Pretty-printer: turns a [`Program`] back into mini-C source.
//!
//! The parallelizer uses this to emit the transformed program with
//! `#pragma omp parallel for` annotations on the loops it proved parallel,
//! mirroring what the Cetus source-to-source translator produces.

use crate::ast::{AExpr, AssignOp, BinOp, LValue, Program, Stmt, UnOp};
use std::fmt::Write;

/// Prints an expression in C syntax.
pub fn print_expr(e: &AExpr) -> String {
    match e {
        AExpr::IntLit(v) => format!("{v}"),
        AExpr::Var(s) => s.clone(),
        AExpr::Index(a, idxs) => {
            let mut out = a.clone();
            for i in idxs {
                out.push('[');
                out.push_str(&print_expr(i));
                out.push(']');
            }
            out
        }
        AExpr::Binary(op, a, b) => {
            let left = maybe_paren(a, *op, true);
            let right = maybe_paren(b, *op, false);
            format!("{left} {} {right}", op.as_str())
        }
        AExpr::Unary(UnOp::Neg, a) => format!("-{}", wrap_if_binary(a)),
        AExpr::Unary(UnOp::Not, a) => format!("!{}", wrap_if_binary(a)),
    }
}

fn wrap_if_binary(e: &AExpr) -> String {
    match e {
        AExpr::Binary(_, _, _) | AExpr::Unary(_, _) => format!("({})", print_expr(e)),
        // A negative literal directly after `-` would lex as `--`.
        AExpr::IntLit(v) if *v < 0 => format!("({v})"),
        _ => print_expr(e),
    }
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Eq | BinOp::Ne => 2,
        BinOp::And => 1,
        BinOp::Or => 0,
    }
}

fn maybe_paren(e: &AExpr, parent: BinOp, is_left: bool) -> String {
    match e {
        AExpr::Binary(child, _, _) => {
            let (pp, cp) = (precedence(parent), precedence(*child));
            // Parenthesize when the child binds less tightly, or equally on
            // the right-hand side of a non-commutative parent.
            let need = cp < pp
                || (cp == pp && !is_left && matches!(parent, BinOp::Sub | BinOp::Div | BinOp::Mod));
            if need {
                format!("({})", print_expr(e))
            } else {
                print_expr(e)
            }
        }
        _ => print_expr(e),
    }
}

/// Options controlling program printing.
#[derive(Debug, Clone, Default)]
pub struct PrintOptions {
    /// Extra pragma lines to emit immediately before specific loops, keyed by
    /// loop id value. Used by the parallelizer to annotate parallel loops.
    pub extra_pragmas: std::collections::HashMap<u32, Vec<String>>,
}

/// Prints a whole program in C syntax.
pub fn print_program(p: &Program) -> String {
    print_program_with(p, &PrintOptions::default())
}

/// Prints a program with additional per-loop pragma annotations.
pub fn print_program_with(p: &Program, opts: &PrintOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program {}", p.name);
    print_stmts(&p.body, 0, opts, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmts(stmts: &[Stmt], depth: usize, opts: &PrintOptions, out: &mut String) {
    for s in stmts {
        print_stmt(s, depth, opts, out);
    }
}

fn print_lvalue(lv: &LValue) -> String {
    let mut s = lv.name.clone();
    for i in &lv.indices {
        s.push('[');
        s.push_str(&print_expr(i));
        s.push(']');
    }
    s
}

fn print_stmt(s: &Stmt, depth: usize, opts: &PrintOptions, out: &mut String) {
    match s {
        Stmt::Decl { name, dims, init } => {
            indent(depth, out);
            out.push_str("int ");
            out.push_str(name);
            for d in dims {
                let _ = write!(out, "[{}]", print_expr(d));
            }
            if let Some(e) = init {
                let _ = write!(out, " = {}", print_expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Assign { target, op, value } => {
            indent(depth, out);
            let op_str = match op {
                AssignOp::Assign => "=",
                AssignOp::AddAssign => "+=",
                AssignOp::SubAssign => "-=",
                AssignOp::MulAssign => "*=",
            };
            let _ = writeln!(
                out,
                "{} {} {};",
                print_lvalue(target),
                op_str,
                print_expr(value)
            );
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(depth, out);
            let _ = writeln!(out, "if ({}) {{", print_expr(cond));
            print_stmts(then_branch, depth + 1, opts, out);
            indent(depth, out);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                print_stmts(else_branch, depth + 1, opts, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
        Stmt::For {
            id,
            var,
            init,
            cond_op,
            bound,
            step,
            body,
            pragmas,
        } => {
            for p in pragmas {
                indent(depth, out);
                let _ = writeln!(out, "#pragma {p}");
            }
            if let Some(extra) = opts.extra_pragmas.get(&id.0) {
                for p in extra {
                    indent(depth, out);
                    let _ = writeln!(out, "#pragma {p}");
                }
            }
            indent(depth, out);
            let step_str = if matches!(step, AExpr::IntLit(1)) {
                format!("{var}++")
            } else {
                format!("{var} += {}", print_expr(step))
            };
            let _ = writeln!(
                out,
                "for ({var} = {}; {var} {} {}; {step_str}) {{",
                print_expr(init),
                cond_op.as_str(),
                print_expr(bound)
            );
            print_stmts(body, depth + 1, opts, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::While { cond, body, .. } => {
            indent(depth, out);
            let _ = writeln!(out, "while ({}) {{", print_expr(cond));
            print_stmts(body, depth + 1, opts, out);
            indent(depth, out);
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn expression_round_trip() {
        for src in [
            "a[i] + 1",
            "rowstr[j + 1] - nzloc[j]",
            "(front[miel] - 1) * 7",
            "ntemp + (i + 1) % 8",
            "a - (b - c)",
            "a / (b * c)",
            "x < n && jmatch[i] >= 0",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = print_expr(&e);
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(e, reparsed, "round-trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn program_round_trip() {
        let src = r#"
            rowptr[0] = 0;
            for (i = 1; i < ROWLEN + 1; i++) {
                rowptr[i] = rowptr[i-1] + rowsize[i-1];
            }
            #pragma omp parallel for private(j,j1)
            for (i = 0; i < ROWLEN+1; i++) {
                if (i == 0) {
                    j1 = i;
                } else {
                    j1 = rowptr[i-1];
                }
                for (j = j1; j < rowptr[i]; j++) {
                    product_array[j] = value[j] * vector[j];
                }
            }
        "#;
        let p = parse_program("fig9", src).unwrap();
        let printed = print_program(&p);
        let reparsed = parse_program("fig9", &printed).unwrap();
        assert_eq!(p, reparsed);
        assert!(printed.contains("#pragma omp parallel for private(j,j1)"));
    }

    #[test]
    fn extra_pragmas_are_emitted() {
        let p = parse_program("t", "for (i = 0; i < n; i++) { x[i] = 0; }").unwrap();
        let mut opts = PrintOptions::default();
        opts.extra_pragmas
            .insert(0, vec!["omp parallel for".to_string()]);
        let printed = print_program_with(&p, &opts);
        assert!(printed.contains("#pragma omp parallel for\nfor (i = 0; i < n; i++)"));
    }

    #[test]
    fn unary_and_decl_printing() {
        let p = parse_program(
            "t",
            "int a[ROWLEN][COLUMNLEN]; int x = 3; y = -z; w = -(z + 1);",
        )
        .unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("int a[ROWLEN][COLUMNLEN];"));
        assert!(printed.contains("int x = 3;"));
        assert!(printed.contains("y = -z;"));
        assert!(printed.contains("w = -(z + 1);"));
        let reparsed = parse_program("t", &printed).unwrap();
        assert_eq!(p, reparsed);
    }
}
