//! Tokens of the mini-C loop language.
//!
//! The language is deliberately small: it only needs to express the loop
//! nests of the paper's figures (Figs. 2–9) and the code that fills the index
//! arrays — integer scalars, integer arrays (1-D and 2-D), `for`/`while`
//! loops, `if`/`else`, assignments (including compound assignment and
//! increment/decrement), and integer arithmetic with comparisons.

use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Identifier (variable, array or keyword candidate).
    Ident(String),
    /// `int` keyword.
    KwInt,
    /// `for` keyword.
    KwFor,
    /// `while` keyword.
    KwWhile,
    /// `if` keyword.
    KwIf,
    /// `else` keyword.
    KwElse,
    /// A `#pragma ...` line (payload is the text after `#pragma`).
    Pragma(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::KwInt => write!(f, "int"),
            TokenKind::KwFor => write!(f, "for"),
            TokenKind::KwWhile => write!(f, "while"),
            TokenKind::KwIf => write!(f, "if"),
            TokenKind::KwElse => write!(f, "else"),
            TokenKind::Pragma(s) => write!(f, "#pragma {s}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::PlusAssign => write!(f, "+="),
            TokenKind::MinusAssign => write!(f, "-="),
            TokenKind::StarAssign => write!(f, "*="),
            TokenKind::PlusPlus => write!(f, "++"),
            TokenKind::MinusMinus => write!(f, "--"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Not => write!(f, "!"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_display() {
        assert_eq!(format!("{}", TokenKind::Int(42)), "42");
        assert_eq!(format!("{}", TokenKind::Ident("rowptr".into())), "rowptr");
        assert_eq!(format!("{}", TokenKind::PlusAssign), "+=");
        assert_eq!(format!("{}", TokenKind::LBrace), "{");
    }
}
