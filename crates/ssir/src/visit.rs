//! Visitors and access collection.
//!
//! The dependence test needs, for every loop, the set of array read/write
//! references that execute inside it, each with its subscript expression and
//! the guarding conditions on the path to it.  [`collect_accesses`] gathers
//! exactly that.

use crate::ast::{AExpr, AssignOp, LoopId, Program, Stmt};
use crate::convert::{to_condition, SymCondition};
use ss_symbolic::Expr;

/// Whether an access reads or writes the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Array element is read.
    Read,
    /// Array element is written.
    Write,
}

/// One array access found in the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayAccess {
    /// The accessed array.
    pub array: String,
    /// Read or write.
    pub kind: AccessKind,
    /// AST subscript expressions (one per dimension).
    pub indices: Vec<AExpr>,
    /// The first (or only) subscript lowered to symbolic form (`⊥` when not
    /// representable).
    pub subscript: Expr,
    /// Loops enclosing the access, outermost first.
    pub enclosing_loops: Vec<LoopId>,
    /// Conditions guarding the access (from enclosing `if` statements on the
    /// path); the condition for the taken branch, negated for `else` paths.
    /// `None` entries mark conditions too complex to represent.
    pub guards: Vec<Option<SymCondition>>,
    /// True if the subscript expression itself contains an array reference —
    /// i.e. this is a *subscripted subscript*.
    pub subscripted_subscript: bool,
}

impl ArrayAccess {
    /// True if the access is a write.
    pub fn is_write(&self) -> bool {
        self.kind == AccessKind::Write
    }

    /// True if this access is (directly) inside the given loop.
    pub fn in_loop(&self, id: LoopId) -> bool {
        self.enclosing_loops.contains(&id)
    }
}

/// Collects every array access in the program.
pub fn collect_accesses(program: &Program) -> Vec<ArrayAccess> {
    let mut out = Vec::new();
    let mut ctx = Context::default();
    walk_stmts(&program.body, &mut ctx, &mut out);
    out
}

/// Collects the array accesses inside a single loop (including nested loops).
pub fn accesses_in_loop(program: &Program, id: LoopId) -> Vec<ArrayAccess> {
    collect_accesses(program)
        .into_iter()
        .filter(|a| a.in_loop(id))
        .collect()
}

/// True if the given loop contains at least one subscripted-subscript access.
pub fn loop_has_subscripted_subscript(program: &Program, id: LoopId) -> bool {
    accesses_in_loop(program, id)
        .iter()
        .any(|a| a.subscripted_subscript)
}

/// Scalars the program reads before ever assigning them — its symbolic
/// inputs (`nelt`, `nrows`, …).  The walk follows evaluation order (loop
/// init expressions before the index-variable write, guard conditions before
/// branches, right-hand sides before their targets), so a scalar like
/// `count` that every path initializes before use is *not* reported.
/// Loop index variables are never inputs.
pub fn free_scalars(program: &Program) -> Vec<String> {
    let mut fv = FreeVars::default();
    fv.walk_stmts(&program.body);
    fv.scalar_inputs
}

/// Arrays some element of which the program reads before any element is
/// written — the index/data arrays the environment must supply (`mt_to_id`
/// read by Figure 2, the dense matrix `a` of Figure 9, …).  An array whose
/// first touch is a write (like Figure 9's `rowptr`) is considered produced
/// by the program itself.  Note `colidx[k] = colidx[k] - firstcol` reads
/// before writing, so `colidx` correctly counts as an input.
pub fn free_arrays(program: &Program) -> Vec<String> {
    let mut fv = FreeVars::default();
    fv.walk_stmts(&program.body);
    fv.array_inputs
}

#[derive(Default)]
struct FreeVars {
    written_scalars: Vec<String>,
    written_arrays: Vec<String>,
    scalar_inputs: Vec<String>,
    array_inputs: Vec<String>,
}

impl FreeVars {
    fn read_scalar(&mut self, name: &str) {
        if !self.written_scalars.iter().any(|s| s == name)
            && !self.scalar_inputs.iter().any(|s| s == name)
        {
            self.scalar_inputs.push(name.to_string());
        }
    }

    fn read_array(&mut self, name: &str) {
        if !self.written_arrays.iter().any(|s| s == name)
            && !self.array_inputs.iter().any(|s| s == name)
        {
            self.array_inputs.push(name.to_string());
        }
    }

    fn write_scalar(&mut self, name: &str) {
        if !self.written_scalars.iter().any(|s| s == name) {
            self.written_scalars.push(name.to_string());
        }
    }

    fn write_array(&mut self, name: &str) {
        if !self.written_arrays.iter().any(|s| s == name) {
            self.written_arrays.push(name.to_string());
        }
    }

    fn read_expr(&mut self, e: &AExpr) {
        match e {
            AExpr::IntLit(_) => {}
            AExpr::Var(v) => self.read_scalar(v),
            AExpr::Index(a, idxs) => {
                for idx in idxs {
                    self.read_expr(idx);
                }
                self.read_array(a);
            }
            AExpr::Binary(_, a, b) => {
                self.read_expr(a);
                self.read_expr(b);
            }
            AExpr::Unary(_, a) => self.read_expr(a),
        }
    }

    fn walk_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.walk_stmt(s);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { name, dims, init } => {
                for d in dims {
                    self.read_expr(d);
                }
                if let Some(e) = init {
                    self.read_expr(e);
                }
                if dims.is_empty() {
                    self.write_scalar(name);
                } else {
                    self.write_array(name);
                }
            }
            Stmt::Assign { target, op, value } => {
                self.read_expr(value);
                for idx in &target.indices {
                    self.read_expr(idx);
                }
                if target.is_scalar() {
                    if *op != AssignOp::Assign {
                        self.read_scalar(&target.name);
                    }
                    self.write_scalar(&target.name);
                } else {
                    if *op != AssignOp::Assign {
                        self.read_array(&target.name);
                    }
                    self.write_array(&target.name);
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.read_expr(cond);
                // Writes on one branch do not dominate reads on the other,
                // but treating branch-local writes as definite keeps the
                // common `if (c) { x = a; } else { x = b; }` pattern out of
                // the input set; the interpreter's defaulting heap makes the
                // over-approximation harmless.
                self.walk_stmts(then_branch);
                self.walk_stmts(else_branch);
            }
            Stmt::For {
                var,
                init,
                bound,
                step,
                body,
                ..
            } => {
                self.read_expr(init);
                self.write_scalar(var);
                self.read_expr(bound);
                self.read_expr(step);
                self.walk_stmts(body);
            }
            Stmt::While { cond, body, .. } => {
                self.read_expr(cond);
                self.walk_stmts(body);
            }
        }
    }
}

#[derive(Default, Clone)]
struct Context {
    loops: Vec<LoopId>,
    guards: Vec<Option<SymCondition>>,
}

fn walk_stmts(stmts: &[Stmt], ctx: &mut Context, out: &mut Vec<ArrayAccess>) {
    for s in stmts {
        walk_stmt(s, ctx, out);
    }
}

fn walk_stmt(s: &Stmt, ctx: &mut Context, out: &mut Vec<ArrayAccess>) {
    match s {
        Stmt::Decl { init, dims, .. } => {
            if let Some(e) = init {
                collect_reads(e, ctx, out);
            }
            for d in dims {
                collect_reads(d, ctx, out);
            }
        }
        Stmt::Assign { target, op, value } => {
            // RHS reads.
            collect_reads(value, ctx, out);
            // Compound assignment also reads the target.
            if *op != AssignOp::Assign && !target.indices.is_empty() {
                push_access(&target.name, &target.indices, AccessKind::Read, ctx, out);
            }
            // Index expressions of the target are reads.
            for idx in &target.indices {
                collect_reads(idx, ctx, out);
            }
            if !target.indices.is_empty() {
                push_access(&target.name, &target.indices, AccessKind::Write, ctx, out);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_reads(cond, ctx, out);
            let sym_cond = to_condition(cond);
            ctx.guards.push(sym_cond.clone());
            walk_stmts(then_branch, ctx, out);
            ctx.guards.pop();
            if !else_branch.is_empty() {
                ctx.guards.push(sym_cond.map(|c| c.negate()));
                walk_stmts(else_branch, ctx, out);
                ctx.guards.pop();
            }
        }
        Stmt::For {
            id,
            init,
            bound,
            step,
            body,
            ..
        } => {
            collect_reads(init, ctx, out);
            collect_reads(bound, ctx, out);
            collect_reads(step, ctx, out);
            ctx.loops.push(*id);
            walk_stmts(body, ctx, out);
            ctx.loops.pop();
        }
        Stmt::While { id, cond, body } => {
            collect_reads(cond, ctx, out);
            ctx.loops.push(*id);
            walk_stmts(body, ctx, out);
            ctx.loops.pop();
        }
    }
}

fn collect_reads(e: &AExpr, ctx: &Context, out: &mut Vec<ArrayAccess>) {
    match e {
        AExpr::IntLit(_) | AExpr::Var(_) => {}
        AExpr::Index(a, idxs) => {
            for idx in idxs {
                collect_reads(idx, ctx, out);
            }
            push_access(a, idxs, AccessKind::Read, ctx, out);
        }
        AExpr::Binary(_, a, b) => {
            collect_reads(a, ctx, out);
            collect_reads(b, ctx, out);
        }
        AExpr::Unary(_, a) => collect_reads(a, ctx, out),
    }
}

fn push_access(
    array: &str,
    indices: &[AExpr],
    kind: AccessKind,
    ctx: &Context,
    out: &mut Vec<ArrayAccess>,
) {
    let subscript = if indices.len() == 1 {
        crate::convert::to_symbolic(&indices[0])
    } else {
        Expr::Bottom
    };
    let subscripted = indices.iter().any(|i| {
        let mut has = false;
        i.for_each(&mut |x| {
            if matches!(x, AExpr::Index(_, _)) {
                has = true;
            }
        });
        has
    });
    out.push(ArrayAccess {
        array: array.to_string(),
        kind,
        indices: indices.to_vec(),
        subscript,
        enclosing_loops: ctx.loops.clone(),
        guards: ctx.guards.clone(),
        subscripted_subscript: subscripted,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;
    use crate::parser::parse_program;

    #[test]
    fn collects_reads_and_writes_figure2() {
        let p = parse_program(
            "fig2",
            r#"
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#,
        )
        .unwrap();
        let accs = collect_accesses(&p);
        assert_eq!(accs.len(), 2);
        let read = &accs[0];
        assert_eq!(read.array, "mt_to_id");
        assert_eq!(read.kind, AccessKind::Read);
        assert_eq!(read.subscript, Expr::sym("miel"));
        assert!(!read.subscripted_subscript);
        let write = &accs[1];
        assert_eq!(write.array, "id_to_mt");
        assert!(write.is_write());
        assert_eq!(write.enclosing_loops, vec![LoopId(0)]);
    }

    #[test]
    fn marks_subscripted_subscripts() {
        let p = parse_program(
            "fig5",
            r#"
            for (i = 0; i < m; i++) {
                if (jmatch[i] >= 0) {
                    imatch[jmatch[i]] = i;
                }
            }
        "#,
        )
        .unwrap();
        let accs = collect_accesses(&p);
        let write = accs.iter().find(|a| a.is_write()).unwrap();
        assert_eq!(write.array, "imatch");
        assert!(write.subscripted_subscript);
        assert_eq!(write.subscript, Expr::array_ref("jmatch", Expr::sym("i")));
        // guarded by jmatch[i] >= 0
        assert_eq!(write.guards.len(), 1);
        let g = write.guards[0].as_ref().unwrap();
        assert_eq!(g.op, BinOp::Ge);
        assert!(loop_has_subscripted_subscript(&p, LoopId(0)));
        // jmatch is read twice (once in the condition, once in the subscript)
        let jreads = accs
            .iter()
            .filter(|a| a.array == "jmatch" && !a.is_write())
            .count();
        assert_eq!(jreads, 2);
    }

    #[test]
    fn else_branch_guards_are_negated() {
        let p = parse_program(
            "fig8",
            r#"
            for (miel = 0; miel < nelt; miel++) {
                if (ich[iel] == 4) {
                    ntemp = (front[miel]-1)*7;
                } else {
                    ntemp = front[miel]*7;
                }
                mt_to_id[mielnew] = iel;
            }
        "#,
        )
        .unwrap();
        let accs = collect_accesses(&p);
        let front_reads: Vec<_> = accs.iter().filter(|a| a.array == "front").collect();
        assert_eq!(front_reads.len(), 2);
        assert_eq!(front_reads[0].guards[0].as_ref().unwrap().op, BinOp::Eq);
        assert_eq!(front_reads[1].guards[0].as_ref().unwrap().op, BinOp::Ne);
        // The write to mt_to_id is not guarded.
        let write = accs.iter().find(|a| a.array == "mt_to_id").unwrap();
        assert!(write.guards.is_empty());
    }

    #[test]
    fn compound_assignment_reads_target() {
        let p = parse_program("t", "for (k = 0; k < n; k++) { colidx[k] -= firstcol; }").unwrap();
        let accs = collect_accesses(&p);
        let reads = accs
            .iter()
            .filter(|a| a.array == "colidx" && !a.is_write())
            .count();
        let writes = accs
            .iter()
            .filter(|a| a.array == "colidx" && a.is_write())
            .count();
        assert_eq!(reads, 1);
        assert_eq!(writes, 1);
    }

    #[test]
    fn loop_bound_reads_are_attributed_to_outer_context() {
        let p = parse_program(
            "fig6",
            r#"
            for (b = 0; b < nb; b++) {
                for (k = r[b]; k < r[b+1]; k++) {
                    Blk[p[k]] = b;
                }
            }
        "#,
        )
        .unwrap();
        let accs = collect_accesses(&p);
        // r[b] and r[b+1] are read inside loop 0 but outside loop 1.
        let r_reads: Vec<_> = accs.iter().filter(|a| a.array == "r").collect();
        assert_eq!(r_reads.len(), 2);
        for r in &r_reads {
            assert_eq!(r.enclosing_loops, vec![LoopId(0)]);
        }
        // p[k] is read inside both loops; Blk write also in both.
        let p_read = accs.iter().find(|a| a.array == "p").unwrap();
        assert_eq!(p_read.enclosing_loops, vec![LoopId(0), LoopId(1)]);
        let blk = accs.iter().find(|a| a.array == "Blk").unwrap();
        assert!(blk.subscripted_subscript);
        assert_eq!(accesses_in_loop(&p, LoopId(1)).len(), 2);
    }

    #[test]
    fn free_variables_of_the_figure9_kernel() {
        let p = parse_program(
            "fig9",
            r#"
            index = 0;
            for (i = 0; i < ROWLEN; i++) {
                count = 0;
                for (j = 0; j < COLUMNLEN; j++) {
                    if (a[i][j] != 0) {
                        count++;
                        value[index] = a[i][j];
                        index++;
                    }
                }
                rowsize[i] = count;
            }
            rowptr[0] = 0;
            for (i = 1; i < ROWLEN + 1; i++) {
                rowptr[i] = rowptr[i-1] + rowsize[i-1];
            }
        "#,
        )
        .unwrap();
        assert_eq!(
            free_scalars(&p),
            vec!["ROWLEN".to_string(), "COLUMNLEN".to_string()]
        );
        // `a` is the only array read before being written; value/rowsize/
        // rowptr are produced by the program itself.
        assert_eq!(free_arrays(&p), vec!["a".to_string()]);
    }

    #[test]
    fn compound_array_updates_make_the_array_an_input() {
        let p = parse_program("t", "for (k = 0; k < n; k++) { colidx[k] -= firstcol; }").unwrap();
        assert_eq!(free_arrays(&p), vec!["colidx".to_string()]);
        assert_eq!(
            free_scalars(&p),
            vec!["n".to_string(), "firstcol".to_string()]
        );
    }

    #[test]
    fn two_dimensional_accesses_have_bottom_subscript() {
        let p = parse_program("t", "for (i = 0; i < n; i++) { s[i] = a[i][j]; }").unwrap();
        let accs = collect_accesses(&p);
        let a = accs.iter().find(|x| x.array == "a").unwrap();
        assert_eq!(a.subscript, Expr::Bottom);
        assert_eq!(a.indices.len(), 2);
    }
}
