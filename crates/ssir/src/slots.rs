//! Slot resolution and body compilation: from name-keyed ASTs to dense,
//! slot-addressed op sequences.
//!
//! The tree-walking interpreter pays a hash lookup for every scalar read and
//! write of every iteration.  This pass eliminates that cost at *compile*
//! time, which is exactly the paper's economy applied to the executor: all
//! name resolution happens once, before the first iteration runs.
//!
//! * [`SlotMap`] interns every scalar and array name of a program into a
//!   dense slot number (scalars and arrays live in separate namespaces,
//!   mirroring the interpreter heap's two maps);
//! * [`CExpr`] is the slot-resolved expression form;
//! * [`CompiledBody`] is a flat op sequence: straight-line statements and
//!   conditionals are lowered to [`Op::BranchIfZero`] / [`Op::Jump`] over a
//!   linear program counter, while loops stay structured ([`Op::For`],
//!   [`Op::While`]) because executors attach per-loop behavior to them
//!   (iteration caps, statistics, parallel dispatch);
//! * [`CompiledFor`] records the loop-nest facts dispatchers need without
//!   re-walking the AST: the arrays declared inside the body (per-invocation
//!   private storage) and whether inner loop bounds go through an index
//!   array (the skew heuristic for dynamic scheduling).
//!
//! Compilation happens **once per program** — [`compilation_count`] exposes
//! a process-wide counter so tests can assert no executor silently
//! recompiles per loop entry or, worse, per iteration.

use crate::ast::{AExpr, AssignOp, BinOp, LoopId, Program, Stmt, UnOp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Dense index of a scalar variable within a [`SlotMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScalarSlot(pub u32);

/// Dense index of an array within a [`SlotMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArraySlot(pub u32);

impl ScalarSlot {
    /// The slot as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ArraySlot {
    /// The slot as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned name table: every scalar and array of a program numbered in
/// deterministic (program pre-order) discovery order.
#[derive(Debug, Clone, Default)]
pub struct SlotMap {
    scalar_names: Vec<String>,
    array_names: Vec<String>,
    scalar_ids: HashMap<String, u32>,
    array_ids: HashMap<String, u32>,
}

impl SlotMap {
    /// Builds the slot table of a program without compiling it (the verdict
    /// layer uses this to name reduction accumulators by slot; the numbering
    /// is identical to [`compile_program`]'s because both walk the program
    /// in the same order).
    pub fn build(program: &Program) -> SlotMap {
        compile_program_quiet(program).slots
    }

    fn intern_scalar(&mut self, name: &str) -> ScalarSlot {
        if let Some(&id) = self.scalar_ids.get(name) {
            return ScalarSlot(id);
        }
        let id = self.scalar_names.len() as u32;
        self.scalar_names.push(name.to_string());
        self.scalar_ids.insert(name.to_string(), id);
        ScalarSlot(id)
    }

    fn intern_array(&mut self, name: &str) -> ArraySlot {
        if let Some(&id) = self.array_ids.get(name) {
            return ArraySlot(id);
        }
        let id = self.array_names.len() as u32;
        self.array_names.push(name.to_string());
        self.array_ids.insert(name.to_string(), id);
        ArraySlot(id)
    }

    /// The slot of a scalar name, if the program mentions it.
    pub fn scalar_slot(&self, name: &str) -> Option<ScalarSlot> {
        self.scalar_ids.get(name).map(|&id| ScalarSlot(id))
    }

    /// The slot of an array name, if the program mentions it.
    pub fn array_slot(&self, name: &str) -> Option<ArraySlot> {
        self.array_ids.get(name).map(|&id| ArraySlot(id))
    }

    /// The name behind a scalar slot.
    pub fn scalar_name(&self, slot: ScalarSlot) -> &str {
        &self.scalar_names[slot.index()]
    }

    /// The name behind an array slot.
    pub fn array_name(&self, slot: ArraySlot) -> &str {
        &self.array_names[slot.index()]
    }

    /// Number of scalar slots (the dense frame size).
    pub fn scalar_count(&self) -> usize {
        self.scalar_names.len()
    }

    /// Number of array slots.
    pub fn array_count(&self) -> usize {
        self.array_names.len()
    }

    /// All scalar names in slot order.
    pub fn scalar_names(&self) -> &[String] {
        &self.scalar_names
    }

    /// All array names in slot order.
    pub fn array_names(&self) -> &[String] {
        &self.array_names
    }
}

/// A slot-resolved expression.  Shape mirrors [`AExpr`] — executors still
/// walk a small tree per expression, but every variable access is a direct
/// vector index instead of a string hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CExpr {
    /// Integer literal.
    Int(i64),
    /// Scalar read.
    Scalar(ScalarSlot),
    /// Array element read.
    Load {
        /// The array.
        array: ArraySlot,
        /// One index expression per dimension.
        indices: Box<[CExpr]>,
    },
    /// Binary operation (same C semantics as the AST walker).
    Binary(BinOp, Box<CExpr>, Box<CExpr>),
    /// Unary operation.
    Unary(UnOp, Box<CExpr>),
}

/// One op of a [`CompiledBody`].  Straight-line code and conditionals are
/// flat (a linear program counter plus branch targets); loops stay
/// structured so executors can hook dispatch, caps and stats onto them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `scalar op= value` (plain `=` included).
    SetScalar {
        /// Target slot.
        slot: ScalarSlot,
        /// Plain or compound assignment.
        op: AssignOp,
        /// Right-hand side.
        value: CExpr,
    },
    /// `array[indices] op= value`.  Executors must evaluate `value` first,
    /// then `indices`, then (for compound ops) read the element — the AST
    /// walker's order, so both engines fail identically on bad programs.
    StoreElem {
        /// Target array.
        array: ArraySlot,
        /// One index expression per dimension.
        indices: Box<[CExpr]>,
        /// Plain or compound assignment.
        op: AssignOp,
        /// Right-hand side.
        value: CExpr,
    },
    /// Array declaration: allocates fresh zero-filled storage with the given
    /// extents every time the op executes (per-invocation semantics for
    /// loop-local declarations).
    DeclArray {
        /// Declared array slot.
        array: ArraySlot,
        /// Extent expressions.
        dims: Box<[CExpr]>,
    },
    /// Jump to `target` (an index into the enclosing op sequence) when
    /// `cond` evaluates to zero.
    BranchIfZero {
        /// The condition.
        cond: CExpr,
        /// Op index to jump to when the condition is false.
        target: usize,
    },
    /// Unconditional jump to `target`.
    Jump {
        /// Op index to jump to.
        target: usize,
    },
    /// A counted `for` loop (structured; body is its own flat sequence).
    For(Box<CompiledFor>),
    /// A `while` loop.
    While {
        /// Loop id.
        id: LoopId,
        /// Loop condition.
        cond: CExpr,
        /// Loop body.
        body: CompiledBody,
    },
}

/// A compiled counted loop, with the facts dispatchers need precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledFor {
    /// Loop id (the analysis keys verdicts by it).
    pub id: LoopId,
    /// Slot of the index variable.
    pub var: ScalarSlot,
    /// Initial value expression.
    pub init: CExpr,
    /// Comparison operator of the exit test.
    pub cond_op: BinOp,
    /// Loop bound expression.
    pub bound: CExpr,
    /// Step expression.
    pub step: CExpr,
    /// Loop body.
    pub body: CompiledBody,
    /// Arrays declared anywhere inside the body (transitively): dispatched
    /// workers give these per-iteration private storage instead of sharing
    /// the heap allocation.
    pub local_arrays: Vec<ArraySlot>,
    /// True when every locally declared array's first mention in the body
    /// is an unconditional top-level declaration — the same rule the
    /// dependence test uses to privatize them.  When false, a worker could
    /// observe pre-declaration storage the serial execution would not;
    /// dispatchers must run such loops serially (the analysis will not have
    /// proven them parallel anyway unless the array is never written).
    pub locals_dominated: bool,
    /// True when a nested loop's init or bound reads an array (the CSR row
    /// shape): per-iteration work is data-dependent, so `Auto` scheduling
    /// picks chunk stealing.
    pub skewed: bool,
}

/// A flat, slot-addressed op sequence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompiledBody {
    /// The ops, executed from index 0 with branch/jump targets inside the
    /// same sequence.
    pub ops: Vec<Op>,
}

/// A whole compiled program: the top-level op sequence plus the name table
/// shared by every nested body.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Top-level ops.
    pub body: CompiledBody,
    /// The interned name table.
    pub slots: SlotMap,
}

impl CompiledProgram {
    /// Finds a compiled loop by id (pre-order search over nested bodies).
    pub fn find_loop(&self, id: LoopId) -> Option<&CompiledFor> {
        fn search(body: &CompiledBody, id: LoopId) -> Option<&CompiledFor> {
            for op in &body.ops {
                match op {
                    Op::For(f) => {
                        if f.id == id {
                            return Some(f);
                        }
                        if let Some(found) = search(&f.body, id) {
                            return Some(found);
                        }
                    }
                    Op::While { body, .. } => {
                        if let Some(found) = search(body, id) {
                            return Some(found);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        search(&self.body, id)
    }
}

static COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`compile_program`] invocations.  Tests diff this
/// around an execution to assert compilation happens once per program, not
/// once per loop entry or per iteration.
pub fn compilation_count() -> u64 {
    COMPILATIONS.load(Ordering::Relaxed)
}

/// Compiles a program: interns every name and lowers every statement.
pub fn compile_program(program: &Program) -> CompiledProgram {
    COMPILATIONS.fetch_add(1, Ordering::Relaxed);
    compile_program_quiet(program)
}

fn compile_program_quiet(program: &Program) -> CompiledProgram {
    let mut slots = SlotMap::default();
    let body = compile_block(&program.body, &mut slots);
    CompiledProgram { body, slots }
}

fn compile_block(stmts: &[Stmt], slots: &mut SlotMap) -> CompiledBody {
    let mut ops = Vec::new();
    for s in stmts {
        compile_stmt(s, slots, &mut ops);
    }
    CompiledBody { ops }
}

fn compile_stmt(s: &Stmt, slots: &mut SlotMap, ops: &mut Vec<Op>) {
    match s {
        Stmt::Decl { name, dims, init } => {
            if dims.is_empty() {
                let value = match init {
                    Some(e) => compile_expr(e, slots),
                    None => CExpr::Int(0),
                };
                let slot = slots.intern_scalar(name);
                ops.push(Op::SetScalar {
                    slot,
                    op: AssignOp::Assign,
                    value,
                });
            } else {
                let dims: Box<[CExpr]> = dims.iter().map(|d| compile_expr(d, slots)).collect();
                let array = slots.intern_array(name);
                ops.push(Op::DeclArray { array, dims });
            }
        }
        Stmt::Assign { target, op, value } => {
            let value = compile_expr(value, slots);
            if target.is_scalar() {
                let slot = slots.intern_scalar(&target.name);
                ops.push(Op::SetScalar {
                    slot,
                    op: *op,
                    value,
                });
            } else {
                let indices: Box<[CExpr]> = target
                    .indices
                    .iter()
                    .map(|i| compile_expr(i, slots))
                    .collect();
                let array = slots.intern_array(&target.name);
                ops.push(Op::StoreElem {
                    array,
                    indices,
                    op: *op,
                    value,
                });
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let cond = compile_expr(cond, slots);
            let branch_at = ops.len();
            ops.push(Op::BranchIfZero {
                cond,
                target: usize::MAX,
            });
            for t in then_branch {
                compile_stmt(t, slots, ops);
            }
            if else_branch.is_empty() {
                let end = ops.len();
                patch(ops, branch_at, end);
            } else {
                let jump_at = ops.len();
                ops.push(Op::Jump { target: usize::MAX });
                let else_start = ops.len();
                patch(ops, branch_at, else_start);
                for e in else_branch {
                    compile_stmt(e, slots, ops);
                }
                let end = ops.len();
                patch(ops, jump_at, end);
            }
        }
        Stmt::For {
            id,
            var,
            init,
            cond_op,
            bound,
            step,
            body,
            ..
        } => {
            let init = compile_expr(init, slots);
            let var = slots.intern_scalar(var);
            let bound = compile_expr(bound, slots);
            let step = compile_expr(step, slots);
            let compiled_body = compile_block(body, slots);
            let mut local_arrays = Vec::new();
            collect_local_arrays(&compiled_body, &mut local_arrays);
            ops.push(Op::For(Box::new(CompiledFor {
                id: *id,
                var,
                init,
                cond_op: *cond_op,
                bound,
                step,
                body: compiled_body,
                locals_dominated: local_decls_dominate(body),
                local_arrays,
                skewed: body_is_skewed(body),
            })));
        }
        Stmt::While { id, cond, body } => {
            let cond = compile_expr(cond, slots);
            let body = compile_block(body, slots);
            ops.push(Op::While {
                id: *id,
                cond,
                body,
            });
        }
    }
}

fn patch(ops: &mut [Op], at: usize, to: usize) {
    match &mut ops[at] {
        Op::BranchIfZero { target, .. } | Op::Jump { target } => *target = to,
        _ => unreachable!("patching a non-branch op"),
    }
}

fn compile_expr(e: &AExpr, slots: &mut SlotMap) -> CExpr {
    match e {
        AExpr::IntLit(v) => CExpr::Int(*v),
        AExpr::Var(name) => CExpr::Scalar(slots.intern_scalar(name)),
        AExpr::Index(array, idxs) => {
            let indices: Box<[CExpr]> = idxs.iter().map(|i| compile_expr(i, slots)).collect();
            CExpr::Load {
                array: slots.intern_array(array),
                indices,
            }
        }
        AExpr::Binary(op, a, b) => CExpr::Binary(
            *op,
            Box::new(compile_expr(a, slots)),
            Box::new(compile_expr(b, slots)),
        ),
        AExpr::Unary(op, a) => CExpr::Unary(*op, Box::new(compile_expr(a, slots))),
    }
}

fn collect_local_arrays(body: &CompiledBody, out: &mut Vec<ArraySlot>) {
    for op in &body.ops {
        match op {
            Op::DeclArray { array, .. } if !out.contains(array) => {
                out.push(*array);
            }
            Op::For(f) => collect_local_arrays(&f.body, out),
            Op::While { body, .. } => collect_local_arrays(body, out),
            _ => {}
        }
    }
}

/// True when every array declared anywhere in `body` has its *first*
/// mention (pre-order, extent/initializer expressions before the
/// declaration takes effect) as an unconditional top-level declaration of
/// `body`.
fn local_decls_dominate(body: &[Stmt]) -> bool {
    use std::collections::HashSet;

    fn note_expr(e: &AExpr, mentioned: &mut Vec<String>) {
        e.for_each(&mut |x| {
            if let AExpr::Index(a, _) = x {
                if !mentioned.contains(a) {
                    mentioned.push(a.clone());
                }
            }
        });
    }

    // Pre-order mention sequence plus the set of declared arrays.
    fn walk(
        stmts: &[Stmt],
        top_level: bool,
        mentions: &mut Vec<String>,
        dominated: &mut HashSet<String>,
        declared: &mut HashSet<String>,
    ) {
        for s in stmts {
            match s {
                Stmt::Decl { name, dims, init } => {
                    for d in dims {
                        note_expr(d, mentions);
                    }
                    if let Some(e) = init {
                        note_expr(e, mentions);
                    }
                    if !dims.is_empty() {
                        if top_level && !mentions.contains(name) {
                            dominated.insert(name.clone());
                        }
                        declared.insert(name.clone());
                        if !mentions.contains(name) {
                            mentions.push(name.clone());
                        }
                    }
                }
                Stmt::Assign { target, value, .. } => {
                    note_expr(value, mentions);
                    for idx in &target.indices {
                        note_expr(idx, mentions);
                    }
                    if !target.indices.is_empty() && !mentions.contains(&target.name) {
                        mentions.push(target.name.clone());
                    }
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    note_expr(cond, mentions);
                    walk(then_branch, false, mentions, dominated, declared);
                    walk(else_branch, false, mentions, dominated, declared);
                }
                Stmt::For {
                    init,
                    bound,
                    step,
                    body,
                    ..
                } => {
                    note_expr(init, mentions);
                    note_expr(bound, mentions);
                    note_expr(step, mentions);
                    walk(body, false, mentions, dominated, declared);
                }
                Stmt::While { cond, body, .. } => {
                    note_expr(cond, mentions);
                    walk(body, false, mentions, dominated, declared);
                }
            }
        }
    }

    let mut mentions = Vec::new();
    let mut dominated = HashSet::new();
    let mut declared = HashSet::new();
    walk(body, true, &mut mentions, &mut dominated, &mut declared);
    declared.iter().all(|d| dominated.contains(d))
}

/// Skew heuristic shared with the dispatchers: a nested loop whose init or
/// bound reads an array (`for (k = rowstr[j]; k < rowstr[j+1]; …)`) has
/// per-iteration work proportional to data, not code.
pub fn body_is_skewed(body: &[Stmt]) -> bool {
    fn has_array_ref(e: &AExpr) -> bool {
        let mut found = false;
        e.for_each(&mut |x| {
            if matches!(x, AExpr::Index(_, _)) {
                found = true;
            }
        });
        found
    }
    let mut skewed = false;
    fn walk(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
        for s in stmts {
            f(s);
            for block in s.child_blocks() {
                walk(block, f);
            }
        }
    }
    walk(body, &mut |s| {
        if let Stmt::For { init, bound, .. } = s {
            if has_array_ref(init) || has_array_ref(bound) {
                skewed = true;
            }
        }
    });
    skewed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn interning_is_deterministic_and_deduplicated() {
        let p = parse_program(
            "t",
            r#"
            x = a[i] + a[j];
            y = x * 2;
            b[x] = y;
        "#,
        )
        .unwrap();
        let c = compile_program(&p);
        assert_eq!(c.slots.scalar_count(), 4); // i, j, x, y
        assert_eq!(c.slots.array_count(), 2); // a, b
        assert_eq!(c.slots.scalar_slot("x"), Some(ScalarSlot(2)));
        assert_eq!(c.slots.array_slot("a"), Some(ArraySlot(0)));
        assert_eq!(c.slots.scalar_name(ScalarSlot(2)), "x");
        assert_eq!(c.slots.array_name(ArraySlot(1)), "b");
        assert_eq!(c.slots.scalar_slot("zzz"), None);
        // SlotMap::build numbers identically.
        let m = SlotMap::build(&p);
        assert_eq!(m.scalar_names(), c.slots.scalar_names());
        assert_eq!(m.array_names(), c.slots.array_names());
    }

    #[test]
    fn conditionals_lower_to_branches_with_correct_targets() {
        let p = parse_program(
            "t",
            r#"
            if (x > 0) {
                y = 1;
            } else {
                y = 2;
            }
            z = 3;
        "#,
        )
        .unwrap();
        let c = compile_program(&p);
        let ops = &c.body.ops;
        // branch, then-store, jump, else-store, tail-store
        assert_eq!(ops.len(), 5);
        match &ops[0] {
            Op::BranchIfZero { target, .. } => assert_eq!(*target, 3),
            other => panic!("expected branch, got {other:?}"),
        }
        match &ops[2] {
            Op::Jump { target } => assert_eq!(*target, 4),
            other => panic!("expected jump, got {other:?}"),
        }
        // if without else branches past the then-block
        let p = parse_program("t", "if (x) { y = 1; } z = 2;").unwrap();
        let c = compile_program(&p);
        match &c.body.ops[0] {
            Op::BranchIfZero { target, .. } => assert_eq!(*target, 2),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn loops_record_local_arrays_and_skew() {
        let p = parse_program(
            "t",
            r#"
            for (i = 0; i < n; i++) {
                int scratch[8];
                for (t = 0; t < 8; t++) { scratch[t] = i + t; }
                out[i] = scratch[0];
            }
            for (j = 0; j < n; j++) {
                for (k = r[j]; k < r[j+1]; k++) { v[k] = j; }
            }
        "#,
        )
        .unwrap();
        let c = compile_program(&p);
        let scratch = c.slots.array_slot("scratch").unwrap();
        let outer = c.find_loop(LoopId(0)).unwrap();
        assert_eq!(outer.local_arrays, vec![scratch]);
        assert!(outer.locals_dominated);
        assert!(!outer.skewed);
        let inner = c.find_loop(LoopId(1)).unwrap();
        assert!(inner.local_arrays.is_empty());
        let csr = c.find_loop(LoopId(2)).unwrap();
        assert!(csr.skewed, "index-array bounds in a nested loop mean skew");
        assert!(c.find_loop(LoopId(9)).is_none());
    }

    #[test]
    fn undominated_local_declarations_are_flagged() {
        // Array touched before its declaration: a worker must not privatize.
        let p = parse_program(
            "t",
            r#"
            for (i = 0; i < n; i++) {
                out[i] = g[0];
                int g[4];
                g[0] = i;
            }
        "#,
        )
        .unwrap();
        let f = compile_program(&p);
        assert!(!f.find_loop(LoopId(0)).unwrap().locals_dominated);
        // Declaration only inside a branch: not unconditional.
        let p = parse_program(
            "t",
            r#"
            for (i = 0; i < n; i++) {
                if (i > 0) { int g[4]; g[0] = i; }
                out[i] = i;
            }
        "#,
        )
        .unwrap();
        assert!(
            !compile_program(&p)
                .find_loop(LoopId(0))
                .unwrap()
                .locals_dominated
        );
    }

    #[test]
    fn compilation_counter_increments_once_per_compile() {
        let p = parse_program("t", "for (i = 0; i < n; i++) { x[i] = i; }").unwrap();
        let before = compilation_count();
        let _ = compile_program(&p);
        assert_eq!(compilation_count(), before + 1);
        // SlotMap::build is not a compilation.
        let _ = SlotMap::build(&p);
        assert_eq!(compilation_count(), before + 1);
    }

    #[test]
    fn compound_stores_keep_their_operator() {
        let p = parse_program("t", "h[k[i]] += 1; s -= 2;").unwrap();
        let c = compile_program(&p);
        assert!(matches!(
            &c.body.ops[0],
            Op::StoreElem {
                op: AssignOp::AddAssign,
                ..
            }
        ));
        assert!(matches!(
            &c.body.ops[1],
            Op::SetScalar {
                op: AssignOp::SubAssign,
                ..
            }
        ));
    }
}
