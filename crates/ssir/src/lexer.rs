//! Lexer for the mini-C loop language.

use crate::errors::{IrError, Result};
use crate::token::{Token, TokenKind};

/// Converts a source string into a token stream (ending with `Eof`).
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            self.skip_whitespace_and_comments();
            let (line, col) = (self.line, self.col);
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    col,
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_digit() {
                self.lex_number()?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.lex_ident()
            } else if c == '#' {
                self.lex_pragma()?
            } else {
                self.lex_operator()?
            };
            out.push(Token { kind, line, col });
        }
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => break,
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s.parse::<i64>().map(TokenKind::Int).map_err(|_| {
            IrError::lex(
                self.line,
                self.col,
                format!("integer literal too large: {s}"),
            )
        })
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.as_str() {
            "int" | "long" => TokenKind::KwInt,
            "for" => TokenKind::KwFor,
            "while" => TokenKind::KwWhile,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            _ => TokenKind::Ident(s),
        }
    }

    fn lex_pragma(&mut self) -> Result<TokenKind> {
        // consume to end of line
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            s.push(c);
            self.bump();
        }
        let rest = s
            .trim_start_matches('#')
            .trim_start()
            .strip_prefix("pragma")
            .map(|r| r.trim().to_string());
        match rest {
            Some(text) => Ok(TokenKind::Pragma(text)),
            None => Err(IrError::lex(
                self.line,
                self.col,
                format!("unsupported preprocessor directive: {s}"),
            )),
        }
    }

    fn lex_operator(&mut self) -> Result<TokenKind> {
        let c = self.bump().expect("caller checked non-empty");
        let two = |l: &mut Lexer<'a>, second: char, yes: TokenKind, no: TokenKind| -> TokenKind {
            if l.peek() == Some(second) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ';' => TokenKind::Semicolon,
            ',' => TokenKind::Comma,
            '%' => TokenKind::Percent,
            '/' => TokenKind::Slash,
            '+' => {
                if self.peek() == Some('+') {
                    self.bump();
                    TokenKind::PlusPlus
                } else {
                    two(self, '=', TokenKind::PlusAssign, TokenKind::Plus)
                }
            }
            '-' => {
                if self.peek() == Some('-') {
                    self.bump();
                    TokenKind::MinusMinus
                } else {
                    two(self, '=', TokenKind::MinusAssign, TokenKind::Minus)
                }
            }
            '*' => two(self, '=', TokenKind::StarAssign, TokenKind::Star),
            '=' => two(self, '=', TokenKind::EqEq, TokenKind::Assign),
            '!' => two(self, '=', TokenKind::NotEq, TokenKind::Not),
            '<' => two(self, '=', TokenKind::Le, TokenKind::Lt),
            '>' => two(self, '=', TokenKind::Ge, TokenKind::Gt),
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(IrError::lex(
                        self.line,
                        self.col,
                        "expected '&&'".to_string(),
                    ));
                }
            }
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(IrError::lex(
                        self.line,
                        self.col,
                        "expected '||'".to_string(),
                    ));
                }
            }
            other => {
                return Err(IrError::lex(
                    self.line,
                    self.col,
                    format!("unexpected character '{other}'"),
                ))
            }
        };
        let _ = self.src;
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_loop_header() {
        let ks = kinds("for (i = 0; i < n; i++)");
        assert_eq!(
            ks,
            vec![
                T::KwFor,
                T::LParen,
                T::Ident("i".into()),
                T::Assign,
                T::Int(0),
                T::Semicolon,
                T::Ident("i".into()),
                T::Lt,
                T::Ident("n".into()),
                T::Semicolon,
                T::Ident("i".into()),
                T::PlusPlus,
                T::RParen,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_subscripted_subscript() {
        let ks = kinds("id_to_mt[iel] = miel;");
        assert_eq!(
            ks,
            vec![
                T::Ident("id_to_mt".into()),
                T::LBracket,
                T::Ident("iel".into()),
                T::RBracket,
                T::Assign,
                T::Ident("miel".into()),
                T::Semicolon,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators_and_compound_assignment() {
        let ks = kinds("x += 2; y -= 1; z *= 3; a == b; a != b; a <= b; a >= b; a && b || !c");
        assert!(ks.contains(&T::PlusAssign));
        assert!(ks.contains(&T::MinusAssign));
        assert!(ks.contains(&T::StarAssign));
        assert!(ks.contains(&T::EqEq));
        assert!(ks.contains(&T::NotEq));
        assert!(ks.contains(&T::Le));
        assert!(ks.contains(&T::Ge));
        assert!(ks.contains(&T::AndAnd));
        assert!(ks.contains(&T::OrOr));
        assert!(ks.contains(&T::Not));
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("x = 1; // trailing comment\n/* block\ncomment */ y = 2;");
        assert_eq!(
            ks,
            vec![
                T::Ident("x".into()),
                T::Assign,
                T::Int(1),
                T::Semicolon,
                T::Ident("y".into()),
                T::Assign,
                T::Int(2),
                T::Semicolon,
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_pragma_line() {
        let ks = kinds("#pragma omp parallel for private(j,j1)\nfor (i = 0; i < n; i++) {}");
        assert_eq!(ks[0], T::Pragma("omp parallel for private(j,j1)".into()));
        assert_eq!(ks[1], T::KwFor);
    }

    #[test]
    fn keywords_and_identifiers() {
        let ks = kinds("int x; long y; intx; forloop");
        assert_eq!(
            ks,
            vec![
                T::KwInt,
                T::Ident("x".into()),
                T::Semicolon,
                T::KwInt,
                T::Ident("y".into()),
                T::Semicolon,
                T::Ident("intx".into()),
                T::Semicolon,
                T::Ident("forloop".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn reports_positions() {
        let toks = tokenize("x = 1;\n  y = 2;").unwrap();
        let y = toks
            .iter()
            .find(|t| t.kind == T::Ident("y".into()))
            .unwrap();
        assert_eq!((y.line, y.col), (2, 3));
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(tokenize("x = $1;").is_err());
        assert!(tokenize("a & b").is_err());
        assert!(tokenize("#include <stdio.h>").is_err());
    }
}
