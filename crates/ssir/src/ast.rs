//! Abstract syntax tree of the mini-C loop language.
//!
//! Programs are flat statement sequences (the paper's figures are bare loop
//! nests, not whole translation units).  Every loop carries a unique
//! [`LoopId`] assigned by the parser / builder; analysis results are keyed by
//! those ids.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a loop within a [`Program`], in program (pre-)order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating)
    Div,
    /// `%`
    Mod,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// True for arithmetic operators (result is an integer value).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// True for comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// C-style source text for the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AExpr {
    /// Integer literal.
    IntLit(i64),
    /// Scalar variable reference.
    Var(String),
    /// Array element reference `a[i]` or `a[i][j]` (one index per dimension).
    Index(String, Vec<AExpr>),
    /// Binary operation.
    Binary(BinOp, Box<AExpr>, Box<AExpr>),
    /// Unary operation.
    Unary(UnOp, Box<AExpr>),
}

// `AExpr::add` etc. are AST constructors mirroring the source operators,
// not operator implementations.
#[allow(clippy::should_implement_trait)]
impl AExpr {
    /// Integer literal constructor.
    pub fn int(v: i64) -> AExpr {
        AExpr::IntLit(v)
    }

    /// Variable reference constructor.
    pub fn var(name: impl Into<String>) -> AExpr {
        AExpr::Var(name.into())
    }

    /// 1-D array reference constructor.
    pub fn index(array: impl Into<String>, idx: AExpr) -> AExpr {
        AExpr::Index(array.into(), vec![idx])
    }

    /// 2-D array reference constructor.
    pub fn index2(array: impl Into<String>, i: AExpr, j: AExpr) -> AExpr {
        AExpr::Index(array.into(), vec![i, j])
    }

    /// Binary-operation constructor.
    pub fn bin(op: BinOp, a: AExpr, b: AExpr) -> AExpr {
        AExpr::Binary(op, Box::new(a), Box::new(b))
    }

    /// `a + b`
    pub fn add(a: AExpr, b: AExpr) -> AExpr {
        AExpr::bin(BinOp::Add, a, b)
    }

    /// `a - b`
    pub fn sub(a: AExpr, b: AExpr) -> AExpr {
        AExpr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`
    pub fn mul(a: AExpr, b: AExpr) -> AExpr {
        AExpr::bin(BinOp::Mul, a, b)
    }

    /// Visits every sub-expression in pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&AExpr)) {
        f(self);
        match self {
            AExpr::IntLit(_) | AExpr::Var(_) => {}
            AExpr::Index(_, idxs) => {
                for i in idxs {
                    i.for_each(f);
                }
            }
            AExpr::Binary(_, a, b) => {
                a.for_each(f);
                b.for_each(f);
            }
            AExpr::Unary(_, a) => a.for_each(f),
        }
    }

    /// All scalar variable names mentioned (excluding array names).
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each(&mut |e| {
            if let AExpr::Var(v) = e {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        });
        out
    }

    /// All array names mentioned.
    pub fn arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each(&mut |e| {
            if let AExpr::Index(a, _) = e {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
        });
        out
    }

    /// True if any array element reference appears inside the index
    /// expression of another array reference — the defining feature of a
    /// *subscripted subscript*.
    pub fn has_subscripted_subscript(&self) -> bool {
        let mut found = false;
        self.for_each(&mut |e| {
            if let AExpr::Index(_, idxs) = e {
                for idx in idxs {
                    let mut inner = false;
                    idx.for_each(&mut |x| {
                        if matches!(x, AExpr::Index(_, _)) {
                            inner = true;
                        }
                    });
                    if inner {
                        found = true;
                    }
                }
            }
        });
        found
    }
}

/// The target of an assignment: a scalar or an array element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LValue {
    /// Variable or array name.
    pub name: String,
    /// Index expressions; empty for scalars.
    pub indices: Vec<AExpr>,
}

impl LValue {
    /// A scalar target.
    pub fn scalar(name: impl Into<String>) -> LValue {
        LValue {
            name: name.into(),
            indices: vec![],
        }
    }

    /// A 1-D array element target.
    pub fn element(name: impl Into<String>, idx: AExpr) -> LValue {
        LValue {
            name: name.into(),
            indices: vec![idx],
        }
    }

    /// True if the target is a scalar variable.
    pub fn is_scalar(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Assignment operators (compound assignments keep their operator so that the
/// analysis sees `x += e` as `x = x + e`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Declaration of an integer scalar (`int x;` / `int x = e;`) or array
    /// (`int a[n];`). Array declarations carry their symbolic extents.
    Decl {
        /// Declared name.
        name: String,
        /// Declared extents; empty for scalars.
        dims: Vec<AExpr>,
        /// Optional scalar initializer.
        init: Option<AExpr>,
    },
    /// Assignment `lhs op rhs`.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Plain or compound assignment operator.
        op: AssignOp,
        /// Right-hand side.
        value: AExpr,
    },
    /// Conditional.
    If {
        /// Branch condition.
        cond: AExpr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// Counted `for` loop of the canonical C shape
    /// `for (var = init; var </<= bound; var += step)`.
    For {
        /// Unique loop id.
        id: LoopId,
        /// Loop index variable.
        var: String,
        /// Initial value.
        init: AExpr,
        /// The comparison operator of the exit test (`Lt` or `Le`).
        cond_op: BinOp,
        /// Loop bound (right-hand side of the exit test).
        bound: AExpr,
        /// Step added each iteration (usually literal 1).
        step: AExpr,
        /// Loop body.
        body: Vec<Stmt>,
        /// `#pragma` annotations attached to the loop (e.g. the manual
        /// OpenMP parallelization in Figure 9, used as the oracle in the
        /// study).
        pragmas: Vec<String>,
    },
    /// General `while` loop (analyzed conservatively).
    While {
        /// Unique loop id.
        id: LoopId,
        /// Loop condition.
        cond: AExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Returns the loop id if the statement is a loop.
    pub fn loop_id(&self) -> Option<LoopId> {
        match self {
            Stmt::For { id, .. } | Stmt::While { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// Returns the body statements of a loop or conditional branch(es).
    pub fn child_blocks(&self) -> Vec<&[Stmt]> {
        match self {
            Stmt::Decl { .. } | Stmt::Assign { .. } => vec![],
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => vec![then_branch.as_slice(), else_branch.as_slice()],
            Stmt::For { body, .. } | Stmt::While { body, .. } => vec![body.as_slice()],
        }
    }
}

/// A whole analyzable program: a named, flat statement sequence.
///
/// Scalars and arrays do not have to be declared; any name used only on the
/// right-hand side (or only as an array) is treated as a symbolic input, just
/// as in the paper's figures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Program (kernel) name, used in reports.
    pub name: String,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Creates a program from a statement list.
    pub fn new(name: impl Into<String>, body: Vec<Stmt>) -> Program {
        Program {
            name: name.into(),
            body,
        }
    }

    /// Visits every statement in the program in pre-order.
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&Stmt)) {
        fn walk(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
            for s in stmts {
                f(s);
                for block in s.child_blocks() {
                    walk(block, f);
                }
            }
        }
        walk(&self.body, f);
    }

    /// All loop ids in program order.
    pub fn loop_ids(&self) -> Vec<LoopId> {
        let mut out = Vec::new();
        self.for_each_stmt(&mut |s| {
            if let Some(id) = s.loop_id() {
                out.push(id);
            }
        });
        out
    }

    /// Finds a loop statement by id.
    pub fn find_loop(&self, id: LoopId) -> Option<&Stmt> {
        let mut found: Option<&Stmt> = None;
        fn walk<'a>(stmts: &'a [Stmt], id: LoopId, found: &mut Option<&'a Stmt>) {
            for s in stmts {
                if found.is_some() {
                    return;
                }
                if s.loop_id() == Some(id) {
                    *found = Some(s);
                    return;
                }
                for block in s.child_blocks() {
                    walk(block, id, found);
                }
            }
        }
        walk(&self.body, id, &mut found);
        found
    }

    /// Names of all arrays written anywhere in the program.
    pub fn written_arrays(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_stmt(&mut |s| {
            if let Stmt::Assign { target, .. } = s {
                if !target.is_scalar() && !out.contains(&target.name) {
                    out.push(target.name.clone());
                }
            }
        });
        out
    }

    /// Names of all scalar variables written anywhere in the program.
    pub fn written_scalars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.for_each_stmt(&mut |s| match s {
            Stmt::Assign { target, .. } if target.is_scalar() && !out.contains(&target.name) => {
                out.push(target.name.clone());
            }
            Stmt::Decl {
                name, dims, init, ..
            } if dims.is_empty() && init.is_some() && !out.contains(name) => {
                out.push(name.clone());
            }
            Stmt::For { var, .. } if !out.contains(var) => {
                out.push(var.clone());
            }
            _ => {}
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_program() -> Program {
        // for (miel = 0; miel < nelt; miel++) {
        //   iel = mt_to_id[miel];
        //   id_to_mt[iel] = miel;
        // }
        Program::new(
            "fig2",
            vec![Stmt::For {
                id: LoopId(0),
                var: "miel".into(),
                init: AExpr::int(0),
                cond_op: BinOp::Lt,
                bound: AExpr::var("nelt"),
                step: AExpr::int(1),
                body: vec![
                    Stmt::Assign {
                        target: LValue::scalar("iel"),
                        op: AssignOp::Assign,
                        value: AExpr::index("mt_to_id", AExpr::var("miel")),
                    },
                    Stmt::Assign {
                        target: LValue::element("id_to_mt", AExpr::var("iel")),
                        op: AssignOp::Assign,
                        value: AExpr::var("miel"),
                    },
                ],
                pragmas: vec![],
            }],
        )
    }

    #[test]
    fn expression_queries() {
        let e = AExpr::index("imatch", AExpr::index("jmatch", AExpr::var("i")));
        assert!(e.has_subscripted_subscript());
        assert_eq!(e.arrays(), vec!["imatch".to_string(), "jmatch".to_string()]);
        assert_eq!(e.variables(), vec!["i".to_string()]);
        let plain = AExpr::index("a", AExpr::add(AExpr::var("i"), AExpr::int(1)));
        assert!(!plain.has_subscripted_subscript());
    }

    #[test]
    fn program_walks_and_queries() {
        let p = fig2_program();
        assert_eq!(p.loop_ids(), vec![LoopId(0)]);
        assert!(p.find_loop(LoopId(0)).is_some());
        assert!(p.find_loop(LoopId(7)).is_none());
        assert_eq!(p.written_arrays(), vec!["id_to_mt".to_string()]);
        let scalars = p.written_scalars();
        assert!(scalars.contains(&"iel".to_string()));
        assert!(scalars.contains(&"miel".to_string()));
        let mut count = 0;
        p.for_each_stmt(&mut |_| count += 1);
        assert_eq!(count, 3); // for + two assigns
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Add.is_arithmetic());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Le.is_comparison());
        assert_eq!(BinOp::Mod.as_str(), "%");
        assert_eq!(BinOp::Ne.as_str(), "!=");
    }

    #[test]
    fn lvalue_helpers() {
        assert!(LValue::scalar("x").is_scalar());
        assert!(!LValue::element("a", AExpr::var("i")).is_scalar());
    }

    #[test]
    fn loop_id_display() {
        assert_eq!(format!("{}", LoopId(3)), "L3");
    }
}
