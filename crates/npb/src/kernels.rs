//! Runnable Rust versions of the paper's subscripted-subscript kernels
//! (Figures 2, 5, 6, 7 and 9) plus the additional NPB-IS and CSparse
//! patterns of the Figure 1 study, each with a serial and a parallel
//! variant.
//!
//! The parallel variants parallelize exactly the loop the compile-time
//! analysis proves parallel; tests and benchmarks check that both variants
//! produce identical results on inputs whose index arrays satisfy the
//! derived properties.
//!
//! The index-based `for k in a..b` loops below deliberately transcribe the
//! C originals the analysis reasons about — do not iterator-ify them.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ss_runtime::{parallel_for, CsrMatrix};

/// Figure 2 (UA): `id_to_mt[mt_to_id[miel]] = miel` — parallel because
/// `mt_to_id` is injective (a permutation).
pub mod fig2 {
    use super::*;

    /// Generates an injective `mt_to_id` map (a random permutation).
    pub fn generate(nelt: usize, seed: u64) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..nelt).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(seed));
        perm
    }

    /// Serial transfer loop.
    pub fn serial(mt_to_id: &[usize]) -> Vec<usize> {
        let nelt = mt_to_id.len();
        let mut id_to_mt = vec![0usize; nelt];
        for miel in 0..nelt {
            let iel = mt_to_id[miel];
            id_to_mt[iel] = miel;
        }
        id_to_mt
    }

    /// Parallel transfer loop (licensed by injectivity of `mt_to_id`).
    pub fn parallel(mt_to_id: &[usize], threads: usize) -> Vec<usize> {
        let nelt = mt_to_id.len();
        let mut id_to_mt = vec![0usize; nelt];
        let out_ptr = id_to_mt.as_mut_ptr() as usize;
        parallel_for(threads, nelt, |range| {
            for miel in range {
                let iel = mt_to_id[miel];
                // SAFETY: mt_to_id is injective, so every iteration writes a
                // distinct element — the exact property the compile-time
                // analysis proves before parallelizing this loop.
                unsafe {
                    *(out_ptr as *mut usize).add(iel) = miel;
                }
            }
        });
        id_to_mt
    }
}

/// Figure 5 (CSparse maxtrans): `imatch[jmatch[i]] = i` guarded by
/// `jmatch[i] >= 0` — parallel because the non-negative subset of `jmatch`
/// is injective.
pub mod fig5 {
    use super::*;

    /// Generates a `jmatch` array: a fraction of rows are matched to unique
    /// columns, the rest are `-1`.
    pub fn generate(m: usize, matched_fraction: f64, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cols: Vec<i64> = (0..m as i64).collect();
        cols.shuffle(&mut rng);
        (0..m)
            .map(|i| {
                if rng.gen_bool(matched_fraction) {
                    cols[i]
                } else {
                    -1
                }
            })
            .collect()
    }

    /// Serial guarded scatter.
    pub fn serial(jmatch: &[i64], m: usize) -> Vec<i64> {
        let mut imatch = vec![-1i64; m];
        for (i, &j) in jmatch.iter().enumerate() {
            if j >= 0 {
                imatch[j as usize] = i as i64;
            }
        }
        imatch
    }

    /// Parallel guarded scatter (licensed by subset injectivity).
    pub fn parallel(jmatch: &[i64], m: usize, threads: usize) -> Vec<i64> {
        let mut imatch = vec![-1i64; m];
        let out_ptr = imatch.as_mut_ptr() as usize;
        parallel_for(threads, jmatch.len(), |range| {
            for i in range {
                let j = jmatch[i];
                if j >= 0 {
                    // SAFETY: the non-negative entries of jmatch are pairwise
                    // distinct (subset injectivity), so writes never collide.
                    unsafe {
                        *(out_ptr as *mut i64).add(j as usize) = i as i64;
                    }
                }
            }
        });
        imatch
    }
}

/// Figure 6 (CSparse): `Blk[p[k]] = b` for `k` in `r[b] .. r[b+1]` —
/// parallel because `r` is monotonic and `p` is injective.
pub mod fig6 {
    use super::*;

    /// Generates block boundaries `r` (monotonic) and a permutation `p`.
    pub fn generate(nb: usize, avg_block: usize, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = vec![0usize; nb + 1];
        for b in 0..nb {
            r[b + 1] = r[b] + rng.gen_range(1..=avg_block * 2);
        }
        let total = r[nb];
        let mut p: Vec<usize> = (0..total).collect();
        p.shuffle(&mut rng);
        (r, p)
    }

    /// Serial block labelling.
    pub fn serial(r: &[usize], p: &[usize]) -> Vec<usize> {
        let nb = r.len() - 1;
        let mut blk = vec![usize::MAX; p.len()];
        for b in 0..nb {
            for k in r[b]..r[b + 1] {
                blk[p[k]] = b;
            }
        }
        blk
    }

    /// Parallel block labelling over the outer `b` loop.
    pub fn parallel(r: &[usize], p: &[usize], threads: usize) -> Vec<usize> {
        let nb = r.len() - 1;
        let mut blk = vec![usize::MAX; p.len()];
        let out_ptr = blk.as_mut_ptr() as usize;
        parallel_for(threads, nb, |range| {
            for b in range {
                for k in r[b]..r[b + 1] {
                    // SAFETY: r is monotonic so the k-ranges of different b
                    // are disjoint, and p is injective so distinct k map to
                    // distinct elements — the Figure 6 argument.
                    unsafe {
                        *(out_ptr as *mut usize).add(p[k]) = b;
                    }
                }
            }
        });
        blk
    }
}

/// Figure 9: the CSR construction (serial, it carries recurrences) and the
/// row-partitioned product loop (parallel thanks to `rowptr` monotonicity).
pub mod fig9 {
    use super::*;

    /// Generates a random dense matrix with the given fill density.
    pub fn generate_dense(rows: usize, cols: usize, density: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| {
                        if rng.gen_bool(density) {
                            rng.gen_range(0.5..2.0)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The product loop of Figure 9 (lines 17–28), serial.
    pub fn product_serial(a: &CsrMatrix, vector: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; a.nnz()];
        for i in 0..=a.nrows {
            let j1 = if i == 0 { 0 } else { a.rowptr[i - 1] };
            let j2 = if i == 0 { 0 } else { a.rowptr[i] };
            for j in j1..j2 {
                out[j] = a.values[j] * vector[j % vector.len()];
            }
        }
        out
    }

    /// The product loop of Figure 9, parallel over `i` (licensed by the
    /// monotonicity of `rowptr` derived from the construction code).
    pub fn product_parallel(a: &CsrMatrix, vector: &[f64], threads: usize) -> Vec<f64> {
        let mut out = vec![0.0; a.nnz()];
        let out_ptr = out.as_mut_ptr() as usize;
        parallel_for(threads, a.nrows + 1, |range| {
            for i in range {
                let j1 = if i == 0 { 0 } else { a.rowptr[i - 1] };
                let j2 = if i == 0 { 0 } else { a.rowptr[i] };
                for j in j1..j2 {
                    // SAFETY: rowptr is monotone non-decreasing, so the
                    // [j1, j2) windows of different iterations are disjoint.
                    unsafe {
                        *(out_ptr as *mut f64).add(j) = a.values[j] * vector[j % vector.len()];
                    }
                }
            }
        });
        out
    }
}

/// Figure 3 (CG): `colidx[k] = colidx[k] - firstcol` for `k` in
/// `rowstr[j] .. rowstr[j+1]` — parallel over `j` because `rowstr` is
/// monotonic, so the `k` ranges of different rows never overlap.
pub mod fig3 {
    use super::*;

    /// Generates a CSR-style `(rowstr, colidx)` pair: `nrows` rows with
    /// random lengths up to `max_row`, column indices drawn from
    /// `firstcol .. firstcol + ncols`.
    pub fn generate(
        nrows: usize,
        max_row: usize,
        ncols: usize,
        firstcol: usize,
        seed: u64,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rowstr = vec![0usize; nrows + 1];
        for j in 0..nrows {
            rowstr[j + 1] = rowstr[j] + rng.gen_range(0..=max_row);
        }
        let colidx = (0..rowstr[nrows])
            .map(|_| firstcol + rng.gen_range(0..ncols.max(1)))
            .collect();
        (rowstr, colidx)
    }

    /// Serial column-index adjustment.
    pub fn serial(rowstr: &[usize], colidx: &[usize], firstcol: usize) -> Vec<usize> {
        let nrows = rowstr.len() - 1;
        let mut out = colidx.to_vec();
        for j in 0..nrows {
            for k in rowstr[j]..rowstr[j + 1] {
                out[k] -= firstcol;
            }
        }
        out
    }

    /// Parallel column-index adjustment over `j` (licensed by the
    /// monotonicity of `rowstr`).
    pub fn parallel(
        rowstr: &[usize],
        colidx: &[usize],
        firstcol: usize,
        threads: usize,
    ) -> Vec<usize> {
        let nrows = rowstr.len() - 1;
        let mut out = colidx.to_vec();
        let out_ptr = out.as_mut_ptr() as usize;
        parallel_for(threads, nrows, |range| {
            for j in range {
                for k in rowstr[j]..rowstr[j + 1] {
                    // SAFETY: rowstr is monotonic, so the k ranges of
                    // different rows are disjoint.
                    unsafe {
                        *(out_ptr as *mut usize).add(k) -= firstcol;
                    }
                }
            }
        });
        out
    }
}

/// Figure 4 (CG): the gather loop whose per-row target range is
/// `rowstr[j] - nzloc[j-1] .. rowstr[j+1] - nzloc[j]` — parallel over `j`
/// because the *difference* between `rowstr` and `nzloc` is monotonic, so
/// consecutive rows write adjacent, non-overlapping ranges.
pub mod fig4 {
    use super::*;

    /// The input of the gather: `rowstr` (row boundaries including the
    /// to-be-removed entries), `nzloc` (cumulative count of removed entries
    /// per row), and the source arrays `v` / `iv` indexed by the original
    /// positions.
    pub struct GatherInput {
        /// Original row boundaries (monotonic, length `nrows + 1`).
        pub rowstr: Vec<usize>,
        /// Cumulative removed-entry counts (monotonic, length `nrows`).
        pub nzloc: Vec<usize>,
        /// Source values at original positions.
        pub v: Vec<f64>,
        /// Source column indices at original positions.
        pub iv: Vec<usize>,
    }

    impl GatherInput {
        /// Number of rows.
        pub fn nrows(&self) -> usize {
            self.nzloc.len()
        }

        /// Length of the compacted output (total kept entries).
        pub fn compacted_len(&self) -> usize {
            let n = self.nrows();
            if n == 0 {
                0
            } else {
                self.rowstr[n] - self.nzloc[n - 1]
            }
        }
    }

    /// Generates a gather input: random row sizes up to `max_row`, of which
    /// a random prefix of each row (up to the whole row) is marked removed.
    pub fn generate(nrows: usize, max_row: usize, seed: u64) -> GatherInput {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rowstr = vec![0usize; nrows + 1];
        let mut removed = vec![0usize; nrows];
        for j in 0..nrows {
            let len = rng.gen_range(0..=max_row);
            rowstr[j + 1] = rowstr[j] + len;
            removed[j] = if len == 0 { 0 } else { rng.gen_range(0..=len) };
        }
        let mut nzloc = vec![0usize; nrows];
        let mut acc = 0usize;
        for j in 0..nrows {
            acc += removed[j];
            nzloc[j] = acc;
        }
        let total = rowstr[nrows];
        let v = (0..total).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let iv = (0..total).map(|_| rng.gen_range(0..1000)).collect();
        GatherInput {
            rowstr,
            nzloc,
            v,
            iv,
        }
    }

    fn row_bounds(input: &GatherInput, j: usize) -> (usize, usize, usize) {
        let j1 = if j > 0 {
            input.rowstr[j] - input.nzloc[j - 1]
        } else {
            0
        };
        let j2 = input.rowstr[j + 1] - input.nzloc[j];
        let nza = input.rowstr[j];
        (j1, j2, nza)
    }

    /// Serial gather: compacts `v`/`iv` into `(a, colidx)` of length
    /// [`GatherInput::compacted_len`].
    pub fn serial(input: &GatherInput) -> (Vec<f64>, Vec<usize>) {
        let n = input.compacted_len();
        let mut a = vec![0.0f64; n];
        let mut colidx = vec![0usize; n];
        for j in 0..input.nrows() {
            let (j1, j2, mut nza) = row_bounds(input, j);
            for k in j1..j2 {
                a[k] = input.v[nza];
                colidx[k] = input.iv[nza];
                nza += 1;
            }
        }
        (a, colidx)
    }

    /// Parallel gather over `j` (licensed by the monotonic difference
    /// between `rowstr` and `nzloc`; `nza` is private to each iteration).
    pub fn parallel(input: &GatherInput, threads: usize) -> (Vec<f64>, Vec<usize>) {
        let n = input.compacted_len();
        let mut a = vec![0.0f64; n];
        let mut colidx = vec![0usize; n];
        let a_ptr = a.as_mut_ptr() as usize;
        let c_ptr = colidx.as_mut_ptr() as usize;
        parallel_for(threads, input.nrows(), |range| {
            for j in range {
                let (j1, j2, mut nza) = row_bounds(input, j);
                for k in j1..j2 {
                    // SAFETY: the difference rowstr - nzloc is monotonic, so
                    // [j1, j2) windows of different rows are disjoint.
                    unsafe {
                        *(a_ptr as *mut f64).add(k) = input.v[nza];
                        *(c_ptr as *mut usize).add(k) = input.iv[nza];
                    }
                    nza += 1;
                }
            }
        });
        (a, colidx)
    }
}

/// Figure 7 (UA refine): `tree[nelt + i] = ...` where
/// `nelt = (front[idx] - 1) * 7` — parallel because `front` is strictly
/// monotonic (counting), so the seven-element windows written by different
/// outer iterations are disjoint.
pub mod fig7 {
    use super::*;

    /// Generates the `front` array the UA refinement loop uses: element `f`
    /// holds `f + 1` (a running element count), which is strictly monotonic
    /// and injective — exactly what the filling code on UA's side
    /// establishes.
    pub fn generate(num_refine: usize) -> Vec<usize> {
        (0..num_refine).map(|f| f + 1).collect()
    }

    /// Serial refinement loop.
    pub fn serial(front: &[usize]) -> Vec<usize> {
        let num_refine = front.len();
        let mut tree = vec![0usize; num_refine * 7];
        for idx in 0..num_refine {
            let nelt = (front[idx] - 1) * 7;
            for i in 0..7 {
                tree[nelt + i] = idx + (i + 1) % 8;
            }
        }
        tree
    }

    /// Parallel refinement loop over `idx` (licensed by the disjointness of
    /// the `nelt + 0 .. nelt + 6` windows).
    pub fn parallel(front: &[usize], threads: usize) -> Vec<usize> {
        let num_refine = front.len();
        let mut tree = vec![0usize; num_refine * 7];
        let out_ptr = tree.as_mut_ptr() as usize;
        parallel_for(threads, num_refine, |range| {
            for idx in range {
                let nelt = (front[idx] - 1) * 7;
                for i in 0..7 {
                    // SAFETY: front is strictly monotonic with step 1, so
                    // nelt strides by 7 across iterations and the 7-element
                    // windows never overlap.
                    unsafe {
                        *(out_ptr as *mut usize).add(nelt + i) = idx + (i + 1) % 8;
                    }
                }
            }
        });
        tree
    }
}

/// NPB IS: after bucket sizes are counted and turned into bucket pointers by
/// a prefix sum, each bucket's key range is post-processed independently —
/// parallel over buckets because `bucket_ptr` is monotonic.
pub mod is_rank {
    use super::*;

    /// A bucketed key set: `(keys, bucket_ptr, key_buff)` where `key_buff`
    /// holds the keys grouped by bucket and `bucket_ptr[b] .. bucket_ptr[b+1]`
    /// is bucket `b`'s range.
    pub struct Buckets {
        /// Original (unsorted) keys.
        pub keys: Vec<i64>,
        /// Monotonic bucket boundaries (length `nbuckets + 1`).
        pub bucket_ptr: Vec<usize>,
        /// Keys grouped by bucket.
        pub key_buff: Vec<i64>,
    }

    /// Generates `nkeys` random keys in `0 .. nbuckets * keys_per_bucket`
    /// and buckets them the way NPB IS does (bucket = key / keys_per_bucket).
    pub fn generate(nkeys: usize, nbuckets: usize, keys_per_bucket: usize, seed: u64) -> Buckets {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_key = (nbuckets * keys_per_bucket).max(1);
        let keys: Vec<i64> = (0..nkeys)
            .map(|_| rng.gen_range(0..max_key) as i64)
            .collect();
        let bucket_of = |k: i64| (k as usize / keys_per_bucket.max(1)).min(nbuckets - 1);
        let mut bucket_size = vec![0usize; nbuckets];
        for &k in &keys {
            bucket_size[bucket_of(k)] += 1;
        }
        let mut bucket_ptr = vec![0usize; nbuckets + 1];
        for b in 0..nbuckets {
            bucket_ptr[b + 1] = bucket_ptr[b] + bucket_size[b];
        }
        let mut cursor = bucket_ptr.clone();
        let mut key_buff = vec![0i64; nkeys];
        for &k in &keys {
            let b = bucket_of(k);
            key_buff[cursor[b]] = k;
            cursor[b] += 1;
        }
        Buckets {
            keys,
            bucket_ptr,
            key_buff,
        }
    }

    /// Serial per-bucket adjustment: every key in bucket `b` is rebased to
    /// its offset within the bucket's key range (the IS ranking step's
    /// per-bucket normalization).
    pub fn serial(buckets: &Buckets, keys_per_bucket: usize) -> Vec<i64> {
        let nbuckets = buckets.bucket_ptr.len() - 1;
        let mut out = buckets.key_buff.clone();
        for b in 0..nbuckets {
            let base = (b * keys_per_bucket) as i64;
            for k in buckets.bucket_ptr[b]..buckets.bucket_ptr[b + 1] {
                out[k] -= base;
            }
        }
        out
    }

    /// Parallel per-bucket adjustment over `b` (licensed by the monotonicity
    /// of `bucket_ptr`).
    pub fn parallel(buckets: &Buckets, keys_per_bucket: usize, threads: usize) -> Vec<i64> {
        let nbuckets = buckets.bucket_ptr.len() - 1;
        let mut out = buckets.key_buff.clone();
        let out_ptr = out.as_mut_ptr() as usize;
        parallel_for(threads, nbuckets, |range| {
            for b in range {
                let base = (b * keys_per_bucket) as i64;
                for k in buckets.bucket_ptr[b]..buckets.bucket_ptr[b + 1] {
                    // SAFETY: bucket_ptr is monotonic, so bucket ranges are
                    // disjoint across iterations of the outer loop.
                    unsafe {
                        let slot = (out_ptr as *mut i64).add(k);
                        *slot -= base;
                    }
                }
            }
        });
        out
    }
}

/// CSparse `cs_ipvec`: `x[p[k]] = b[k]` — parallel because the permutation
/// `p` is injective.
pub mod ipvec {
    use super::*;

    /// Generates a random permutation `p` and a value vector `b`.
    pub fn generate(n: usize, seed: u64) -> (Vec<usize>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p: Vec<usize> = (0..n).collect();
        p.shuffle(&mut rng);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (p, b)
    }

    /// Serial inverse-permutation scatter.
    pub fn serial(p: &[usize], b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0f64; b.len()];
        for k in 0..b.len() {
            x[p[k]] = b[k];
        }
        x
    }

    /// Parallel inverse-permutation scatter (licensed by injectivity of `p`).
    pub fn parallel(p: &[usize], b: &[f64], threads: usize) -> Vec<f64> {
        let mut x = vec![0.0f64; b.len()];
        let out_ptr = x.as_mut_ptr() as usize;
        parallel_for(threads, b.len(), |range| {
            for k in range {
                // SAFETY: p is a permutation (injective), so every k writes
                // a distinct element of x.
                unsafe {
                    *(out_ptr as *mut f64).add(p[k]) = b[k];
                }
            }
        });
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_properties::concrete;

    #[test]
    fn fig2_parallel_matches_serial_and_input_is_injective() {
        let mt_to_id = fig2::generate(10_000, 1);
        let as_i64: Vec<i64> = mt_to_id.iter().map(|&x| x as i64).collect();
        assert!(concrete::is_injective(&as_i64));
        let serial = fig2::serial(&mt_to_id);
        for threads in [2, 4, 8] {
            assert_eq!(fig2::parallel(&mt_to_id, threads), serial);
        }
        // round trip: id_to_mt inverts mt_to_id
        for (miel, &iel) in mt_to_id.iter().enumerate() {
            assert_eq!(serial[iel], miel);
        }
    }

    #[test]
    fn fig5_parallel_matches_serial_and_subset_is_injective() {
        let jmatch = fig5::generate(20_000, 0.6, 3);
        assert!(concrete::is_injective_subset(&jmatch, |x| x >= 0));
        let serial = fig5::serial(&jmatch, 20_000);
        for threads in [2, 4] {
            assert_eq!(fig5::parallel(&jmatch, 20_000, threads), serial);
        }
    }

    #[test]
    fn fig6_parallel_matches_serial() {
        let (r, p) = fig6::generate(500, 16, 5);
        let ri: Vec<i64> = r.iter().map(|&x| x as i64).collect();
        let pi: Vec<i64> = p.iter().map(|&x| x as i64).collect();
        assert!(concrete::is_monotonic_inc(&ri));
        assert!(concrete::is_injective(&pi));
        let serial = fig6::serial(&r, &p);
        for threads in [2, 4, 8] {
            assert_eq!(fig6::parallel(&r, &p, threads), serial);
        }
        // every element got a block label
        assert!(serial.iter().all(|&b| b != usize::MAX));
    }

    #[test]
    fn fig9_parallel_matches_serial() {
        let dense = fig9::generate_dense(200, 300, 0.07, 9);
        let a = CsrMatrix::from_dense(&dense);
        assert!(a.is_well_formed());
        let vector: Vec<f64> = (0..a.ncols).map(|i| 1.0 + i as f64 * 0.01).collect();
        let serial = fig9::product_serial(&a, &vector);
        for threads in [2, 4] {
            assert_eq!(fig9::product_parallel(&a, &vector, threads), serial);
        }
    }

    #[test]
    fn fig3_parallel_matches_serial_and_rowstr_is_monotonic() {
        let (rowstr, colidx) = fig3::generate(2000, 12, 500, 100, 31);
        let rs: Vec<i64> = rowstr.iter().map(|&x| x as i64).collect();
        assert!(concrete::is_monotonic_inc(&rs));
        let serial = fig3::serial(&rowstr, &colidx, 100);
        for threads in [2, 4, 8] {
            assert_eq!(fig3::parallel(&rowstr, &colidx, 100, threads), serial);
        }
        // the shift really rebased every column index
        assert!(serial.iter().all(|&c| c < 500));
    }

    #[test]
    fn fig4_parallel_matches_serial_and_difference_is_monotonic() {
        let input = fig4::generate(1500, 10, 41);
        // the enabling property: rowstr[j+1] - nzloc[j] is monotonic in j
        let rowstr: Vec<i64> = input.rowstr.iter().map(|&x| x as i64).collect();
        let nzloc: Vec<i64> = input.nzloc.iter().map(|&x| x as i64).collect();
        assert!(concrete::is_monotonic_difference(&rowstr, &nzloc));
        let (a_s, c_s) = fig4::serial(&input);
        for threads in [2, 4, 8] {
            let (a_p, c_p) = fig4::parallel(&input, threads);
            assert_eq!(a_p, a_s);
            assert_eq!(c_p, c_s);
        }
        assert_eq!(a_s.len(), input.compacted_len());
    }

    #[test]
    fn fig4_empty_and_degenerate_inputs_are_handled() {
        let empty = fig4::generate(0, 5, 1);
        assert_eq!(empty.compacted_len(), 0);
        let (a, c) = fig4::serial(&empty);
        assert!(a.is_empty() && c.is_empty());
        // rows that are entirely removed produce empty windows
        let input = fig4::GatherInput {
            rowstr: vec![0, 3, 3, 5],
            nzloc: vec![3, 3, 3],
            v: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            iv: vec![10, 20, 30, 40, 50],
        };
        assert_eq!(input.compacted_len(), 2);
        let (a, c) = fig4::serial(&input);
        assert_eq!((a.clone(), c.clone()), fig4::parallel(&input, 4));
        // row 2 keeps its last two entries, gathered from positions 3 and 4
        assert_eq!(a, vec![4.0, 5.0]);
        assert_eq!(c, vec![40, 50]);
    }

    #[test]
    fn fig7_parallel_matches_serial_and_front_is_strictly_monotonic() {
        let front = fig7::generate(1000);
        let fi: Vec<i64> = front.iter().map(|&x| x as i64).collect();
        assert!(concrete::is_strict_monotonic_inc(&fi));
        let serial = fig7::serial(&front);
        for threads in [2, 4, 8] {
            assert_eq!(fig7::parallel(&front, threads), serial);
        }
        // every element of tree was written exactly once: windows tile the array
        assert_eq!(serial.len(), 7000);
        assert_eq!(serial[0], 1);
        assert_eq!(serial[7], 1 + 1);
    }

    #[test]
    fn is_rank_parallel_matches_serial_and_bucket_ptr_is_monotonic() {
        let buckets = is_rank::generate(50_000, 64, 128, 17);
        let bp: Vec<i64> = buckets.bucket_ptr.iter().map(|&x| x as i64).collect();
        assert!(concrete::is_monotonic_inc(&bp));
        assert_eq!(*buckets.bucket_ptr.last().unwrap(), 50_000);
        let serial = is_rank::serial(&buckets, 128);
        for threads in [2, 4, 8] {
            assert_eq!(is_rank::parallel(&buckets, 128, threads), serial);
        }
        // every rebased key is a valid offset within its bucket
        assert!(serial.iter().all(|&k| (0..128).contains(&k)));
    }

    #[test]
    fn ipvec_parallel_matches_serial_and_permutation_is_injective() {
        let (p, b) = ipvec::generate(30_000, 23);
        let pi: Vec<i64> = p.iter().map(|&x| x as i64).collect();
        assert!(concrete::is_injective(&pi));
        let serial = ipvec::serial(&p, &b);
        for threads in [2, 4, 8] {
            assert_eq!(ipvec::parallel(&p, &b, threads), serial);
        }
        // the scatter really inverts the permutation
        for k in 0..p.len() {
            assert_eq!(serial[p[k]], b[k]);
        }
    }
}
