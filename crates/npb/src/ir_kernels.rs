//! Mini-C transcriptions of the paper's benchmark kernels.
//!
//! Each entry pairs one of the loops from the paper's study (Figures 2–9,
//! drawn from NPB UA, NPB CG and SuiteSparse/CSparse) with the code that
//! fills its index arrays, so that the compile-time analysis can derive the
//! enabling property from the program text alone — the paper's central
//! claim.  The catalogue drives the Figure 1 study table, the detection
//! benchmarks and the integration tests.

/// Which benchmark suite a kernel comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// NAS Parallel Benchmarks (CG, UA).
    Npb,
    /// SuiteSparse / CSparse.
    SuiteSparse,
    /// The paper's own motivating example (Figure 9).
    Paper,
}

/// The property class the paper assigns to the kernel (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternClass {
    /// Property 1: injectivity.
    Injectivity,
    /// Property 2a: non-strict monotonicity.
    Monotonicity,
    /// Property 2c: monotonic difference between arrays.
    MonotonicDifference,
    /// Property 3: injective or monotonic subsets.
    InjectiveSubset,
    /// Property 4: simultaneous monotonicity and injectivity.
    SimultaneousMonotonicInjective,
    /// Property 5: disjoint injective expressions.
    DisjointInjectiveExpressions,
    /// No compile-time property: the loop is truly carried, but its
    /// footprint is determined by loop-entry state, so the wavefront tier
    /// can schedule it into dependence level sets at run time.
    CarriedWavefront,
}

impl PatternClass {
    /// Short label used in the study table.
    pub fn label(&self) -> &'static str {
        match self {
            PatternClass::Injectivity => "injectivity",
            PatternClass::Monotonicity => "monotonicity",
            PatternClass::MonotonicDifference => "monotonic difference",
            PatternClass::InjectiveSubset => "injective subset",
            PatternClass::SimultaneousMonotonicInjective => "monotonic + injective",
            PatternClass::DisjointInjectiveExpressions => "disjoint injective expressions",
            PatternClass::CarriedWavefront => "carried wavefront",
        }
    }
}

/// A study kernel: mini-C source plus the loop the paper parallelizes.
#[derive(Debug, Clone)]
pub struct StudyKernel {
    /// Kernel name (figure reference).
    pub name: &'static str,
    /// Program / benchmark the pattern comes from.
    pub program: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// The property class of Section 2.
    pub class: PatternClass,
    /// The mini-C source (index-array filling code + target loop).
    pub source: &'static str,
    /// The id of the loop that should be proven parallel.
    pub target_loop: u32,
}

/// The full kernel catalogue.
pub fn study_kernels() -> Vec<StudyKernel> {
    vec![
        StudyKernel {
            name: "fig2_ua_transfer",
            program: "UA (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::Injectivity,
            source: r#"
                for (e = 0; e < nelt; e++) {
                    mt_to_id[e] = e;
                }
                for (miel = 0; miel < nelt; miel++) {
                    iel = mt_to_id[miel];
                    id_to_mt[iel] = miel;
                }
            "#,
            target_loop: 1,
        },
        StudyKernel {
            name: "fig3_cg_colidx",
            program: "CG (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::Monotonicity,
            source: r#"
                for (i = 0; i < nrows; i++) {
                    cnt = 0;
                    for (t = 0; t < ncols; t++) {
                        if (dense[i][t] != 0) { cnt++; }
                    }
                    rowcount[i] = cnt;
                }
                rowstr[0] = 0;
                for (r = 1; r <= nrows; r++) {
                    rowstr[r] = rowstr[r-1] + rowcount[r-1];
                }
                for (j = 0; j < nrows; j++) {
                    for (k = rowstr[j]; k < rowstr[j+1]; k++) {
                        colidx[k] = colidx[k] - firstcol;
                    }
                }
            "#,
            target_loop: 3,
        },
        StudyKernel {
            name: "fig4_cg_gather",
            program: "CG (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::MonotonicDifference,
            source: r#"
                for (i = 0; i < nrows; i++) {
                    cnt = 0;
                    for (t = 0; t < ncols; t++) {
                        if (dense[i][t] != 0) { cnt++; }
                    }
                    rowcount[i] = cnt;
                }
                rowstr[0] = 0;
                for (r = 1; r <= nrows; r++) {
                    rowstr[r] = rowstr[r-1] + rowcount[r-1];
                }
                for (j = 0; j < nrows; j++) {
                    if (j > 0) {
                        j1 = rowstr[j];
                    } else {
                        j1 = 0;
                    }
                    j2 = rowstr[j+1];
                    for (k = j1; k < j2; k++) {
                        a[k] = v[k];
                        colidx[k] = iv[k];
                    }
                }
            "#,
            target_loop: 3,
        },
        StudyKernel {
            name: "fig5_csparse_maxtrans",
            program: "CSparse (SuiteSparse 5.4)",
            suite: Suite::SuiteSparse,
            class: PatternClass::InjectiveSubset,
            source: r#"
                for (r = 0; r < m; r++) {
                    if (matched[r] > 0) {
                        jmatch[r] = r;
                    } else {
                        jmatch[r] = 0 - 1;
                    }
                }
                for (i = 0; i < m; i++) {
                    if (jmatch[i] >= 0) {
                        imatch[jmatch[i]] = i;
                    }
                }
            "#,
            target_loop: 1,
        },
        StudyKernel {
            name: "fig6_csparse_blocks",
            program: "CSparse (SuiteSparse 5.4)",
            suite: Suite::SuiteSparse,
            class: PatternClass::SimultaneousMonotonicInjective,
            source: r#"
                for (b = 0; b < nb; b++) {
                    bs = 0;
                    for (t = 0; t < bmax; t++) {
                        if (members[b][t] > 0) { bs++; }
                    }
                    blocksize[b] = bs;
                }
                r[0] = 0;
                for (b = 1; b <= nb; b++) {
                    r[b] = r[b-1] + blocksize[b-1];
                }
                nzb = r[nb];
                for (k = 0; k < nzb; k++) {
                    p[k] = k;
                }
                for (b = 0; b < nb; b++) {
                    for (k = r[b]; k < r[b+1]; k++) {
                        Blk[p[k]] = b;
                    }
                }
            "#,
            target_loop: 4,
        },
        StudyKernel {
            name: "fig7_ua_refine",
            program: "UA (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::DisjointInjectiveExpressions,
            source: r#"
                front[0] = 1;
                for (f = 1; f < num_refine; f++) {
                    front[f] = front[f-1] + 1;
                }
                for (idx = 0; idx < num_refine; idx++) {
                    nelt = (front[idx] - 1) * 7;
                    for (i = 0; i < 7; i++) {
                        tree[nelt + i] = idx + (i + 1) % 8;
                    }
                }
            "#,
            target_loop: 1,
        },
        StudyKernel {
            name: "fig9_csr_product",
            program: "paper, Figure 9",
            suite: Suite::Paper,
            class: PatternClass::Monotonicity,
            source: r#"
                index = 0;
                ind = 0;
                for (i = 0; i < ROWLEN; i++) {
                    count = 0;
                    for (j = 0; j < COLUMNLEN; j++) {
                        if (a[i][j] != 0) {
                            count++;
                            column_number[index] = j;
                            index++;
                            value[ind] = a[i][j];
                            ind++;
                        }
                    }
                    rowsize[i] = count;
                }
                rowptr[0] = 0;
                for (i = 1; i < ROWLEN + 1; i++) {
                    rowptr[i] = rowptr[i-1] + rowsize[i-1];
                }
                for (i = 0; i < ROWLEN+1; i++) {
                    if (i == 0) {
                        j1 = i;
                    } else {
                        j1 = rowptr[i-1];
                    }
                    for (j = j1; j < rowptr[i]; j++) {
                        product_array[j] = value[j] * vector[j];
                    }
                }
            "#,
            target_loop: 3,
        },
        StudyKernel {
            name: "cg_spmv_rows",
            program: "CG (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::Monotonicity,
            source: r#"
                for (i = 0; i < nrows; i++) {
                    cnt = 0;
                    for (t = 0; t < ncols; t++) {
                        if (dense[i][t] != 0) { cnt++; }
                    }
                    rowcount[i] = cnt;
                }
                rowstr[0] = 0;
                for (r = 1; r <= nrows; r++) {
                    rowstr[r] = rowstr[r-1] + rowcount[r-1];
                }
                for (j = 0; j < nrows; j++) {
                    sum = 0;
                    for (k = rowstr[j]; k < rowstr[j+1]; k++) {
                        prod[k] = aval[k] * p[colidx[k]];
                        sum = sum + prod[k];
                    }
                    q[j] = sum;
                }
            "#,
            target_loop: 3,
        },
        StudyKernel {
            name: "is_bucket_traversal",
            program: "IS (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::Monotonicity,
            source: r#"
                for (b = 0; b < nbuckets; b++) {
                    cnt = 0;
                    for (i = 0; i < nkeys; i++) {
                        if (key[i] == b) { cnt++; }
                    }
                    bucket_size[b] = cnt;
                }
                bucket_ptr[0] = 0;
                for (b = 1; b <= nbuckets; b++) {
                    bucket_ptr[b] = bucket_ptr[b-1] + bucket_size[b-1];
                }
                for (b = 0; b < nbuckets; b++) {
                    for (k = bucket_ptr[b]; k < bucket_ptr[b+1]; k++) {
                        key_buff[k] = key_buff[k] - minkey;
                    }
                }
            "#,
            target_loop: 3,
        },
        StudyKernel {
            name: "csparse_ipvec",
            program: "CSparse (SuiteSparse 5.4)",
            suite: Suite::SuiteSparse,
            class: PatternClass::Injectivity,
            source: r#"
                for (k = 0; k < n; k++) {
                    p[k] = n - 1 - k;
                }
                for (k = 0; k < n; k++) {
                    x[p[k]] = b[k];
                }
            "#,
            target_loop: 1,
        },
        StudyKernel {
            name: "cg_norm_reduction",
            program: "CG (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::Monotonicity,
            source: r#"
                for (i = 0; i < nrows; i++) {
                    cnt = 0;
                    for (t = 0; t < ncols; t++) {
                        if (dense[i][t] != 0) { cnt++; }
                    }
                    rowcount[i] = cnt;
                }
                rowstr[0] = 0;
                for (r = 1; r <= nrows; r++) {
                    rowstr[r] = rowstr[r-1] + rowcount[r-1];
                }
                total = 0;
                for (j = 0; j < nrows; j++) {
                    for (k = rowstr[j]; k < rowstr[j+1]; k++) {
                        prod[k] = aval[k] * 3;
                        total += prod[k];
                    }
                }
            "#,
            target_loop: 3,
        },
        StudyKernel {
            name: "ua_refine_scratch",
            program: "UA (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::DisjointInjectiveExpressions,
            source: r#"
                front[0] = 1;
                for (f = 1; f < num_refine; f++) {
                    front[f] = front[f-1] + 1;
                }
                for (idx = 0; idx < num_refine; idx++) {
                    int scratch[8];
                    nelt = (front[idx] - 1) * 8;
                    for (t = 0; t < 8; t++) {
                        scratch[t] = dense[idx][t] * 3;
                    }
                    for (t = 0; t < 8; t++) {
                        tree[nelt + t] = scratch[t] + idx;
                    }
                }
            "#,
            target_loop: 1,
        },
        StudyKernel {
            name: "csparse_symperm_cols",
            program: "CSparse (SuiteSparse 5.4)",
            suite: Suite::SuiteSparse,
            class: PatternClass::Monotonicity,
            source: r#"
                for (j = 0; j < n; j++) {
                    cnt = 0;
                    for (t = 0; t < n; t++) {
                        if (upper[j][t] != 0) { cnt++; }
                    }
                    colcount[j] = cnt;
                }
                cp[0] = 0;
                for (j = 1; j <= n; j++) {
                    cp[j] = cp[j-1] + colcount[j-1];
                }
                for (j = 0; j < n; j++) {
                    for (k = cp[j]; k < cp[j+1]; k++) {
                        ci[k] = ci[k] + rowshift;
                    }
                }
            "#,
            target_loop: 3,
        },
        StudyKernel {
            name: "sptrsv_levels",
            program: "CSparse (SuiteSparse 5.4)",
            suite: Suite::SuiteSparse,
            class: PatternClass::CarriedWavefront,
            source: r#"
                for (i = 0; i < n; i++) {
                    cnt = 0;
                    for (t = 0; t < i; t++) {
                        if (lower[i][t] % 17 == 0) { cnt = cnt + 1; }
                    }
                    rowcount[i] = cnt;
                }
                rowptr[0] = 0;
                for (r = 1; r <= n; r++) {
                    rowptr[r] = rowptr[r-1] + rowcount[r-1];
                }
                for (i = 0; i < n; i++) {
                    k = rowptr[i];
                    for (t = 0; t < i; t++) {
                        if (lower[i][t] % 17 == 0) {
                            col[k] = t;
                            val[k] = lower[i][t] + 1;
                            k = k + 1;
                        }
                    }
                }
                for (i = 0; i < n; i++) {
                    sum = b[i];
                    for (k = rowptr[i]; k < rowptr[i+1]; k++) {
                        sum = sum - val[k] * x[col[k]];
                    }
                    x[i] = sum;
                }
            "#,
            target_loop: 5,
        },
        StudyKernel {
            name: "gauss_seidel_sweep",
            program: "UA (NPB 3.3)",
            suite: Suite::Npb,
            class: PatternClass::CarriedWavefront,
            source: r#"
                for (i = 0; i < n; i++) {
                    cnt = 0;
                    for (t = 0; t < n; t++) {
                        if (mat[i][t] % 17 == 0) { cnt = cnt + 1; }
                    }
                    deg[i] = cnt;
                }
                ptr[0] = 0;
                for (r = 1; r <= n; r++) {
                    ptr[r] = ptr[r-1] + deg[r-1];
                }
                for (i = 0; i < n; i++) {
                    k = ptr[i];
                    for (t = 0; t < n; t++) {
                        if (mat[i][t] % 17 == 0) {
                            col[k] = t;
                            w[k] = mat[i][t] + 1;
                            k = k + 1;
                        }
                    }
                }
                for (i = 0; i < n; i++) {
                    acc = rhs[i];
                    for (k = ptr[i]; k < ptr[i+1]; k++) {
                        acc = acc - w[k] * x[col[k]];
                    }
                    x[i] = acc;
                }
            "#,
            target_loop: 5,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::parse_program;

    #[test]
    fn all_kernel_sources_parse_and_contain_the_target_loop() {
        for k in study_kernels() {
            let p = parse_program(k.name, k.source)
                .unwrap_or_else(|e| panic!("{} does not parse: {e}", k.name));
            let ids: Vec<u32> = p.loop_ids().iter().map(|l| l.0).collect();
            assert!(
                ids.contains(&k.target_loop),
                "{}: target loop {} not among {:?}",
                k.name,
                k.target_loop,
                ids
            );
        }
    }

    #[test]
    fn catalogue_covers_all_pattern_classes() {
        let kernels = study_kernels();
        assert!(kernels.len() >= 7);
        for class in [
            PatternClass::Injectivity,
            PatternClass::Monotonicity,
            PatternClass::MonotonicDifference,
            PatternClass::InjectiveSubset,
            PatternClass::SimultaneousMonotonicInjective,
            PatternClass::DisjointInjectiveExpressions,
            PatternClass::CarriedWavefront,
        ] {
            assert!(
                kernels.iter().any(|k| k.class == class),
                "missing class {:?}",
                class
            );
            assert!(!class.label().is_empty());
        }
        // both suites of the paper's study are represented
        assert!(kernels.iter().any(|k| k.suite == Suite::Npb));
        assert!(kernels.iter().any(|k| k.suite == Suite::SuiteSparse));
    }
}
