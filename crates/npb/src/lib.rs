//! # ss-npb — benchmark kernels and workloads
//!
//! The evaluation workloads of the paper:
//!
//! * [`cg`] — the NPB CG benchmark (Classes S/W/A/B/C), whose
//!   subscripted-subscript loops drive the Figure 10 speedup study;
//! * [`kernels`] — runnable serial/parallel Rust versions of the Figure 2, 5,
//!   6, 7 and 9 kernels, plus the NPB-IS bucket traversal and the CSparse
//!   `cs_ipvec` permutation scatter, with property-respecting input
//!   generators;
//! * [`ir_kernels`] — mini-C transcriptions of every study kernel (the
//!   Figure 1 catalogue), fed to the compile-time analysis.

pub mod cg;
pub mod ir_kernels;
pub mod kernels;

pub use cg::{conj_grad, makea, run_cg, run_cg_with, scaled_params, CgParams, CgResult, Class};
pub use ir_kernels::{study_kernels, PatternClass, StudyKernel, Suite};
