//! The NPB CG benchmark (Conjugate Gradient, unstructured sparse solver).
//!
//! This is the workload of the paper's Figure 10.  The structure follows the
//! NAS reference implementation: `makea` builds a random sparse symmetric
//! positive-definite matrix in CSR form (the construction is exactly the
//! count → prefix-sum → fill pattern of Figure 9, and the column-index
//! adjustment is Figure 3), and `conj_grad` runs the CG iteration whose
//! dominant loop sweeps rows through `rowstr[j] .. rowstr[j+1]`.
//!
//! Only the loops that the compile-time analysis proves parallel are
//! parallelized — everything else stays serial — so the measured speedup is
//! attributable to the subscripted-subscript analysis, as in the paper.
//!
//! The NPB class parameters (`na`, `nonzer`, `niter`, `shift`) are the
//! official ones; the random matrix generator is a simplified but
//! structurally equivalent substitute for NPB's `makea` (documented in
//! DESIGN.md), so absolute `zeta` verification values differ from the
//! reference while the sparsity structure and access patterns match.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ss_runtime::{parallel_for_mut, parallel_sum, time_it, CsrMatrix};

/// NPB problem classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Sample size (tiny, for tests).
    S,
    /// Workstation size.
    W,
    /// Class A.
    A,
    /// Class B.
    B,
    /// Class C.
    C,
}

/// Parameters of a CG problem class (from the NPB 3.3.1 specification).
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// Matrix order.
    pub na: usize,
    /// Non-zeros per generated row (before symmetrization).
    pub nonzer: usize,
    /// Outer CG iterations.
    pub niter: usize,
    /// Eigenvalue shift.
    pub shift: f64,
}

impl Class {
    /// The official NPB parameters for this class.
    pub fn params(self) -> CgParams {
        match self {
            Class::S => CgParams {
                na: 1400,
                nonzer: 7,
                niter: 15,
                shift: 10.0,
            },
            Class::W => CgParams {
                na: 7000,
                nonzer: 8,
                niter: 15,
                shift: 12.0,
            },
            Class::A => CgParams {
                na: 14000,
                nonzer: 11,
                niter: 15,
                shift: 20.0,
            },
            Class::B => CgParams {
                na: 75000,
                nonzer: 13,
                niter: 75,
                shift: 60.0,
            },
            Class::C => CgParams {
                na: 150000,
                nonzer: 15,
                niter: 75,
                shift: 110.0,
            },
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
            Class::C => "C",
        }
    }

    /// All classes in increasing size.
    pub fn all() -> &'static [Class] {
        &[Class::S, Class::W, Class::A, Class::B, Class::C]
    }
}

/// NPB's `randlc` linear congruential generator (kept for fidelity of the
/// pseudo-random column-index streams).
#[derive(Debug, Clone)]
pub struct Randlc {
    seed: f64,
    a: f64,
}

impl Randlc {
    /// Creates the generator with the NPB default seed and multiplier.
    pub fn new() -> Randlc {
        Randlc {
            seed: 314_159_265.0,
            a: 1_220_703_125.0,
        }
    }

    /// Next pseudo-random number in `(0, 1)`.
    #[allow(clippy::should_implement_trait)] // NPB's randlc() name, not Iterator
    pub fn next(&mut self) -> f64 {
        const R23: f64 = 1.1920928955078125e-7; // 2^-23
        const R46: f64 = 1.4210854715202004e-14; // 2^-46
        const T23: f64 = 8_388_608.0; // 2^23
        const T46: f64 = 70_368_744_177_664.0; // 2^46
        let t1 = R23 * self.a;
        let a1 = t1.trunc();
        let a2 = self.a - T23 * a1;
        let t1 = R23 * self.seed;
        let x1 = t1.trunc();
        let x2 = self.seed - T23 * x1;
        let t1 = a1 * x2 + a2 * x1;
        let t2 = (R23 * t1).trunc();
        let z = t1 - T23 * t2;
        let t3 = T23 * z + a2 * x2;
        let t4 = (R46 * t3).trunc();
        self.seed = t3 - T46 * t4;
        R46 * self.seed
    }
}

impl Default for Randlc {
    fn default() -> Self {
        Randlc::new()
    }
}

/// Builds the CG matrix for a class: a sparse, symmetric, diagonally
/// dominant matrix with `nonzer` off-diagonal entries per row, assembled
/// through the Figure 9 CSR-construction pattern.
#[allow(clippy::needless_range_loop)] // transcribes the NPB construction loop
pub fn makea(params: &CgParams, seed: u64) -> CsrMatrix {
    let n = params.na;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lcg = Randlc::new();
    // Per-row entry lists (upper triangle), then symmetrize.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for _ in 0..params.nonzer {
            // Mix the NPB LCG with the std generator to decorrelate rows.
            let u = lcg.next();
            let j = ((u * n as f64) as usize + rng.gen_range(0..n)) % n;
            if j == i {
                continue;
            }
            let v = 0.5 * (lcg.next() - 0.5) / params.nonzer as f64;
            rows[i].push((j, v));
        }
    }
    // Symmetrize: A := (L + L^T)/2 with a dominant diagonal.
    let mut sym: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for i in 0..n {
        for &(j, v) in &rows[i] {
            sym[i].push((j, v));
            sym[j].push((i, v));
        }
    }
    for (i, row) in sym.iter_mut().enumerate() {
        row.sort_by_key(|&(j, _)| j);
        row.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        let offdiag: f64 = row.iter().map(|&(_, v)| v.abs()).sum();
        match row.binary_search_by_key(&i, |&(j, _)| j) {
            Ok(pos) => row[pos].1 = offdiag + 1.0 + params.shift * 0.01,
            Err(pos) => row.insert(pos, (i, offdiag + 1.0 + params.shift * 0.01)),
        }
    }
    CsrMatrix::from_rows(n, &sym)
}

/// Result of a CG run.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The computed eigenvalue estimate (`shift + 1 / (x·z)`).
    pub zeta: f64,
    /// Final residual norm of the inner solve.
    pub rnorm: f64,
    /// Wall-clock seconds of the timed section.
    pub seconds: f64,
    /// Threads used for the parallelized subscripted-subscript loops.
    pub threads: usize,
}

/// The CG inner solve: 25 iterations of conjugate gradient on `A z = x`.
/// Returns the residual norm.  The row-sweep loops (SpMV) are the
/// subscripted-subscript loops parallelized according to the analysis.
pub fn conj_grad(a: &CsrMatrix, x: &[f64], z: &mut [f64], threads: usize) -> f64 {
    let n = a.nrows;
    let mut r = x.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    for zi in z.iter_mut() {
        *zi = 0.0;
    }
    let mut rho: f64 = parallel_sum(threads, n, |i| r[i] * r[i]);
    const CGITMAX: usize = 25;
    for _ in 0..CGITMAX {
        // q = A p   — the Figure 3/9 row sweep (parallelized).
        a.spmv(threads, &p, &mut q);
        let d = parallel_sum(threads, n, |i| p[i] * q[i]);
        let alpha = rho / d;
        {
            let p_ref = &p;
            let q_ref = &q;
            parallel_for_mut(threads, z, |start, chunk| {
                for (k, zi) in chunk.iter_mut().enumerate() {
                    *zi += alpha * p_ref[start + k];
                }
            });
            parallel_for_mut(threads, &mut r, |start, chunk| {
                for (k, ri) in chunk.iter_mut().enumerate() {
                    *ri -= alpha * q_ref[start + k];
                }
            });
        }
        let rho_new = parallel_sum(threads, n, |i| r[i] * r[i]);
        let beta = rho_new / rho;
        rho = rho_new;
        let r_ref = &r;
        parallel_for_mut(threads, &mut p, |start, chunk| {
            for (k, pi) in chunk.iter_mut().enumerate() {
                *pi = r_ref[start + k] + beta * *pi;
            }
        });
    }
    // ||x - A z||
    a.spmv(threads, z, &mut q);
    let sum = parallel_sum(threads, n, |i| {
        let d = x[i] - q[i];
        d * d
    });
    sum.sqrt()
}

/// Runs the full CG benchmark for a class with the given thread count.
/// `threads = 1` is the serial baseline.
pub fn run_cg(class: Class, threads: usize, seed: u64) -> CgResult {
    let params = class.params();
    run_cg_with(&params, threads, seed)
}

/// Runs CG with explicit parameters (used by the benchmark harness to scale
/// problem sizes down for quick runs).
pub fn run_cg_with(params: &CgParams, threads: usize, seed: u64) -> CgResult {
    let a = makea(params, seed);
    let n = params.na;
    let mut x = vec![1.0f64; n];
    let mut z = vec![0.0f64; n];
    let mut zeta = 0.0;
    let mut rnorm = 0.0;
    let (_, seconds) = time_it(|| {
        for _ in 0..params.niter {
            rnorm = conj_grad(&a, &x, &mut z, threads);
            let xz = parallel_sum(threads, n, |i| x[i] * z[i]);
            let zz = parallel_sum(threads, n, |i| z[i] * z[i]);
            zeta = params.shift + 1.0 / xz.max(f64::MIN_POSITIVE);
            let norm = 1.0 / zz.sqrt();
            for i in 0..n {
                x[i] = norm * z[i];
            }
        }
    });
    CgResult {
        zeta,
        rnorm,
        seconds,
        threads,
    }
}

/// A scaled-down parameter set for a class, keeping the class's sparsity and
/// iteration structure but shrinking `na` so the full sweep fits in a quick
/// benchmark run. `fraction` of 1.0 returns the official parameters.
pub fn scaled_params(class: Class, fraction: f64) -> CgParams {
    let p = class.params();
    let na = ((p.na as f64 * fraction).round() as usize).max(64);
    CgParams {
        na,
        nonzer: p.nonzer,
        niter: p.niter.min(15),
        shift: p.shift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parameters_match_the_npb_tables() {
        assert_eq!(Class::A.params().na, 14000);
        assert_eq!(Class::A.params().nonzer, 11);
        assert_eq!(Class::B.params().na, 75000);
        assert_eq!(Class::C.params().na, 150000);
        assert_eq!(Class::B.params().niter, 75);
        assert_eq!(Class::S.name(), "S");
        assert_eq!(Class::all().len(), 5);
    }

    #[test]
    fn randlc_is_deterministic_and_in_range() {
        let mut a = Randlc::new();
        let mut b = Randlc::new();
        for _ in 0..1000 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn makea_produces_a_well_formed_symmetric_matrix() {
        let params = CgParams {
            na: 200,
            nonzer: 5,
            niter: 1,
            shift: 10.0,
        };
        let a = makea(&params, 42);
        assert!(a.is_well_formed());
        assert_eq!(a.nrows, 200);
        // symmetry: (i, j) present implies (j, i) present with equal value
        for i in 0..a.nrows {
            for idx in a.rowptr[i]..a.rowptr[i + 1] {
                let j = a.colidx[idx];
                let v = a.values[idx];
                let found = (a.rowptr[j]..a.rowptr[j + 1])
                    .any(|k| a.colidx[k] == i && (a.values[k] - v).abs() < 1e-12);
                assert!(found, "missing symmetric entry ({j},{i})");
            }
        }
    }

    #[test]
    fn conj_grad_converges_on_small_problems() {
        let params = CgParams {
            na: 300,
            nonzer: 6,
            niter: 3,
            shift: 10.0,
        };
        let r = run_cg_with(&params, 1, 7);
        assert!(r.rnorm < 1e-6, "rnorm = {}", r.rnorm);
        assert!(r.zeta.is_finite());
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let params = CgParams {
            na: 400,
            nonzer: 5,
            niter: 2,
            shift: 12.0,
        };
        let serial = run_cg_with(&params, 1, 11);
        for threads in [2, 4] {
            let par = run_cg_with(&params, threads, 11);
            assert!(
                (par.zeta - serial.zeta).abs() < 1e-6,
                "zeta mismatch at {threads} threads: {} vs {}",
                par.zeta,
                serial.zeta
            );
        }
    }

    #[test]
    fn scaled_params_shrink_but_keep_structure() {
        let p = scaled_params(Class::B, 0.01);
        assert_eq!(p.nonzer, 13);
        assert!(p.na >= 64 && p.na < 75000);
        let full = scaled_params(Class::S, 1.0);
        assert_eq!(full.na, 1400);
    }
}
