//! Tuned-policy persistence invariants, asserted through the process-wide
//! tuner counter (`compile_once.rs` style): the first tuned run of a
//! (program, input shape) searches the policy space, every later run
//! reapplies the persisted winner with **zero** re-search, and the
//! persisted policy is an ordinary cache citizen — charged to the session
//! byte bound on the next recharge and evicted together with its
//! artifacts.
//!
//! These assertions diff a global counter around runs, so they live in
//! their own test binary and serialize on a shared lock.

use ss_interp::{tune_search_count, RunPolicy, RunRequest, Session, TunerConfig};
use std::sync::Mutex;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

const SRC: &str = r#"
    for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
    for (miel = 0; miel < nelt; miel++) {
        iel = mt_to_id[miel];
        id_to_mt[iel] = miel;
    }
"#;

fn tuned_request(scale: i64) -> RunRequest {
    RunRequest::new("tuned", SRC)
        .scale(scale)
        .threads(2)
        .policy(RunPolicy::Tuned)
}

fn quick() -> TunerConfig {
    TunerConfig {
        budget_trials: Some(4),
        repeats: 1,
        ..TunerConfig::default()
    }
}

#[test]
fn second_tuned_run_applies_the_persisted_policy_with_zero_re_search() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let session = Session::new();
    let before = tune_search_count();

    let first = session.run(&tuned_request(48)).unwrap();
    assert_eq!(first.policy, "tuned");
    assert_eq!(first.policy_provenance.as_deref(), Some("tuned-search"));
    assert_eq!(tune_search_count(), before + 1);

    let second = session.run(&tuned_request(48)).unwrap();
    assert_eq!(second.policy_provenance.as_deref(), Some("tuned-cache"));
    assert_eq!(second.heap, first.heap);
    assert_eq!(
        tune_search_count(),
        before + 1,
        "a persisted-policy hit must not re-search"
    );

    // A different input shape is a different signature: re-search.
    let other = session.run(&tuned_request(64)).unwrap();
    assert_eq!(other.policy_provenance.as_deref(), Some("tuned-search"));
    assert_eq!(tune_search_count(), before + 2);

    let stats = session.tuner_stats();
    assert_eq!((stats.searches, stats.hits), (2, 1));
}

#[test]
fn trial_tables_are_deterministic_under_a_fixed_seed() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let labels = |session: &Session| -> Vec<String> {
        let outcome = session
            .tune(
                &RunRequest::new("det", SRC).scale(32).threads(2),
                &TunerConfig {
                    repeats: 1,
                    seed: 7,
                    ..TunerConfig::default()
                },
            )
            .unwrap();
        outcome
            .policy
            .trials
            .iter()
            .map(|t| t.point.label())
            .collect()
    };
    let a = labels(&Session::new());
    let b = labels(&Session::new());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must measure the same trials in order");
}

#[test]
fn tuned_policies_are_byte_charged_and_evicted_with_their_artifacts() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Unbounded session: the persisted policy grows the entry's byte
    // charge once the cache recharges it on the next hit.
    let session = Session::new();
    session.artifacts("tuned", SRC).unwrap();
    let before_bytes = session.cache_stats().bytes;
    session.tune(&tuned_request(32), &quick()).unwrap();
    session.artifacts("tuned", SRC).unwrap();
    assert!(
        session.cache_stats().bytes > before_bytes,
        "the persisted policy must be charged to the byte accounting"
    );

    // Byte-bounded session: evicting the artifacts evicts the policy with
    // them, and the next tuned run has to search again.
    let bounded = Session::new().with_cache_capacity_bytes(1);
    let before = tune_search_count();
    bounded.tune(&tuned_request(32), &quick()).unwrap();
    bounded.tune(&tuned_request(32), &quick()).unwrap();
    assert_eq!(
        tune_search_count(),
        before + 1,
        "the MRU entry survives the byte bound, so the second tune hits"
    );
    bounded.artifacts("other", "x = 1;").unwrap();
    assert!(
        bounded.cache_stats().evictions >= 1,
        "the new entry must push the tuned one over the byte bound"
    );
    bounded.tune(&tuned_request(32), &quick()).unwrap();
    assert_eq!(
        tune_search_count(),
        before + 2,
        "an evicted policy cannot be reapplied: the tuner searches afresh"
    );
    let stats = bounded.tuner_stats();
    assert_eq!((stats.searches, stats.hits), (2, 1));
}
