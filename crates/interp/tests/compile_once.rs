//! Compile-once and spawn-once guarantees, asserted through the
//! process-wide counters — now *session invariants*: one
//! [`Artifacts`](ss_parallelizer::Artifacts) invocation compiles each pass
//! exactly once, every engine consumes the same artifacts without
//! recompiling, a [`Session`] compiles each distinct program at most once
//! per process (the content-addressed cache), and one process-wide thread
//! team serves all parallel regions of all runs.
//!
//! These assertions diff global counters around runs, so they live in
//! their own test binary and serialize on a shared lock — inside the
//! unit-test binary any concurrently running engine test would perturb the
//! counts.

use ss_interp::{EngineRegistry, ExecOptions, Heap, OptLevel, RunRequest, Session, ValidationMode};
use ss_parallelizer::Artifacts;
use std::sync::Mutex;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

const SRC: &str = r#"
    for (r = 0; r < reps; r++) {
        for (i = 0; i < n; i++) {
            out[i] = out[i] + r;
        }
    }
"#;

fn heap(reps: i64) -> Heap {
    Heap::new()
        .with_scalar("reps", reps)
        .with_scalar("n", 500)
        .with_array("out", vec![0; 500])
}

fn opts(threads: usize) -> ExecOptions {
    ExecOptions {
        threads,
        ..ExecOptions::default()
    }
}

#[test]
fn compiled_engine_runs_do_not_recompile_per_loop_entry() {
    // The dispatched loop is entered `reps` times with many iterations
    // each; the pipeline compiles the program exactly once — the slot
    // table is resolved up front and reused, never recomputed per loop
    // entry or per iteration.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = EngineRegistry::builtin();
    let before = ss_ir::slots::compilation_count();
    let artifacts = Artifacts::compile_source("reuse", SRC).unwrap();
    assert!(!artifacts.report.outermost_parallel_loops().is_empty());
    assert_eq!(
        ss_ir::slots::compilation_count(),
        before + 1,
        "one slot compilation per pipeline invocation"
    );
    let compiled = registry.get("compiled").unwrap();
    let par = compiled
        .run_parallel(&artifacts, heap(20), &opts(4))
        .unwrap();
    assert_eq!(
        ss_ir::slots::compilation_count(),
        before + 1,
        "executions never recompile, regardless of loop entries"
    );
    let id = ss_ir::LoopId(1);
    assert_eq!(par.stats.loops[&id].invocations, 20);
    assert_eq!(par.stats.loops[&id].iterations, 20 * 500);
    let reference = registry.reference().unwrap();
    let serial = reference
        .run_serial(&artifacts, heap(20), &opts(1))
        .unwrap();
    assert_eq!(par.heap, serial.heap);
}

#[test]
fn bytecode_engine_compiles_once_and_runs_on_the_shared_team() {
    // 30 adjacent dispatched regions: one slot compilation, one bytecode
    // compilation, and at most one team's worth of spawned workers — zero
    // if an earlier test in this process already registered a team of this
    // size (the team is process-wide, not per-run).
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = EngineRegistry::builtin();
    let slots_before = ss_ir::slots::compilation_count();
    let bc_before = ss_ir::bytecode::bytecode_compilation_count();
    let artifacts = Artifacts::compile_source("reuse", SRC).unwrap();
    assert_eq!(ss_ir::slots::compilation_count(), slots_before + 1);
    assert_eq!(
        ss_ir::bytecode::bytecode_compilation_count(),
        bc_before + 1,
        "one bytecode compilation per pipeline invocation"
    );
    let spawned_before = ss_runtime::team_threads_spawned();
    let threads = 3;
    let bytecode = registry.default_engine();
    assert_eq!(bytecode.name(), "bytecode");
    let par = bytecode
        .run_parallel(&artifacts, heap(30), &opts(threads))
        .unwrap();
    assert_eq!(ss_ir::slots::compilation_count(), slots_before + 1);
    assert_eq!(ss_ir::bytecode::bytecode_compilation_count(), bc_before + 1);
    let spawned = ss_runtime::team_threads_spawned() - spawned_before;
    assert!(
        spawned <= threads as u64,
        "30 adjacent parallel regions must reuse one persistent team \
         (spawned {spawned} workers)"
    );
    let id = ss_ir::LoopId(1);
    assert_eq!(par.stats.loops[&id].invocations, 30);
    let serial = registry
        .reference()
        .unwrap()
        .run_serial(&artifacts, heap(30), &opts(1))
        .unwrap();
    assert_eq!(par.heap, serial.heap);
}

#[test]
fn one_team_serves_repeated_runs_in_process() {
    // Repeated `sspar run`-style invocations in one process share the
    // process-wide team.  Whatever the first run had to spawn, the runs
    // after it spawn *nothing*.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let artifacts = Artifacts::compile_source("reuse", SRC).unwrap();
    let threads = 3;
    let bytecode = EngineRegistry::builtin().default_engine();
    let first = bytecode
        .run_parallel(&artifacts, heap(5), &opts(threads))
        .unwrap();
    assert!(!first.stats.parallel_loops().is_empty());
    let spawned_after_first = ss_runtime::team_threads_spawned();
    for _ in 0..5 {
        let again = bytecode
            .run_parallel(&artifacts, heap(5), &opts(threads))
            .unwrap();
        assert_eq!(again.heap, first.heap);
    }
    assert_eq!(
        ss_runtime::team_threads_spawned(),
        spawned_after_first,
        "runs after the first must not spawn a single worker"
    );
}

#[test]
fn session_cache_makes_compilation_once_per_program_per_process() {
    // The tentpole invariant of the Session API: the *first* run of a
    // source compiles (counters advance by exactly one per pass); every
    // later run of the identical source — any engine, any opt level, any
    // validation mode — hits the content-addressed cache and the counters
    // stay frozen.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let session = Session::new();
    let slots_before = ss_ir::slots::compilation_count();
    let bc_before = ss_ir::bytecode::bytecode_compilation_count();

    let base = RunRequest::new("cached", SRC)
        .initial_heap(heap(6))
        .threads(2);
    let first = session.run(&base.clone()).unwrap();
    assert!(!first.cache_hit);
    assert_eq!(ss_ir::slots::compilation_count(), slots_before + 1);
    assert_eq!(ss_ir::bytecode::bytecode_compilation_count(), bc_before + 1);

    // 4 engines × 2 opt levels × differential validation: many executions,
    // zero compilations.
    for engine in ["bytecode", "threaded", "compiled", "ast"] {
        for level in [OptLevel::O0, OptLevel::O1] {
            let out = session
                .run(
                    &base
                        .clone()
                        .engine(engine)
                        .opt_level(level)
                        .validation(ValidationMode::Differential),
                )
                .unwrap();
            assert!(out.cache_hit, "{engine} {level}");
            assert!(
                out.heaps_match(),
                "{engine} {level}: {:?}",
                out.mismatches()
            );
            assert_eq!(out.heap, first.heap);
        }
    }
    assert_eq!(
        ss_ir::slots::compilation_count(),
        slots_before + 1,
        "cache hits must not recompile the slot pass"
    );
    assert_eq!(
        ss_ir::bytecode::bytecode_compilation_count(),
        bc_before + 1,
        "cache hits must not recompile the bytecode pass"
    );
    let stats = session.cache_stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 8);
    assert_eq!(stats.entries, 1);
}

#[test]
fn threaded_engine_lowers_once_per_artifact_and_level() {
    // The threaded tier lowers the bytecode stream into its handler chain
    // at most once per (artifacts, opt level) — repeated runs, serial or
    // parallel, reuse the lowering cached in the artifact's
    // engine-extension slot.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = EngineRegistry::builtin();
    let threaded = registry.get("threaded").unwrap();
    let artifacts = Artifacts::compile_source("lower-once", SRC).unwrap();
    let before = ss_interp::engine::threaded::threaded_lowering_count();
    let mut heaps = Vec::new();
    for _ in 0..3 {
        for &level in threaded.caps().opt_levels {
            let serial = ExecOptions {
                opt_level: level,
                ..opts(1)
            };
            heaps.push(threaded.run_serial(&artifacts, heap(6), &serial).unwrap());
            let par = ExecOptions {
                opt_level: level,
                ..opts(3)
            };
            heaps.push(threaded.run_parallel(&artifacts, heap(6), &par).unwrap());
        }
    }
    assert_eq!(
        ss_interp::engine::threaded::threaded_lowering_count(),
        before + 2,
        "one lowering per opt level, reused by every later run"
    );
    for outcome in &heaps {
        assert_eq!(outcome.heap, heaps[0].heap);
    }
}

#[test]
fn wavefront_engine_builds_each_schedule_once_per_artifacts_and_input() {
    // The wavefront tier inspects a carried loop and builds its level-set
    // schedule exactly once per (artifacts, input state) — repeated runs
    // on the same heap, at either opt level, reuse the schedule cached in
    // the artifact's engine-extension slot; a different input re-inspects.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const WF: &str = r#"
        for (i = 0; i < n; i++) {
            x[idx[i]] = x[idx[i]] + i;
        }
    "#;
    let wf_heap = |stride: i64| {
        Heap::new()
            .with_scalar("n", 40)
            .with_array("idx", (0..40).map(|i| (i * stride) % 8).collect())
            .with_array("x", vec![0; 8])
    };
    let registry = EngineRegistry::builtin();
    let wavefront = registry.get("wavefront").unwrap();
    let artifacts = Artifacts::compile_source("schedule-once", WF).unwrap();
    let before = ss_inspector::levelset_build_count();
    let first = wavefront
        .run_parallel(&artifacts, wf_heap(1), &opts(4))
        .unwrap();
    assert_eq!(
        ss_inspector::levelset_build_count(),
        before + 1,
        "the first run inspects the loop and builds its schedule"
    );
    for level in [OptLevel::O0, OptLevel::O1] {
        let o = ExecOptions {
            opt_level: level,
            ..opts(4)
        };
        let again = wavefront.run_parallel(&artifacts, wf_heap(1), &o).unwrap();
        assert_eq!(again.heap, first.heap);
    }
    assert_eq!(
        ss_inspector::levelset_build_count(),
        before + 1,
        "identical inputs at either opt level reuse the cached schedule"
    );
    // A different index pattern is a different dependence structure: the
    // cache must key on the input state, not just the loop.
    wavefront
        .run_parallel(&artifacts, wf_heap(3), &opts(4))
        .unwrap();
    assert_eq!(
        ss_inspector::levelset_build_count(),
        before + 2,
        "a new input state re-inspects and builds a fresh schedule"
    );
}

#[test]
fn one_pipeline_invocation_feeds_every_engine_without_recompiling() {
    // Registry-wide: Artifacts::compile is the only compile of the run.
    // Afterwards every registered engine (serial and parallel, every opt
    // level it distinguishes) executes with the counters frozen.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let registry = EngineRegistry::builtin();
    let reference = registry.reference().unwrap();
    let slots_before = ss_ir::slots::compilation_count();
    let bc_before = ss_ir::bytecode::bytecode_compilation_count();
    let artifacts = Artifacts::compile_source("pipeline", SRC).unwrap();
    assert_eq!(ss_ir::slots::compilation_count(), slots_before + 1);
    assert_eq!(ss_ir::bytecode::bytecode_compilation_count(), bc_before + 1);

    let expected = reference.run_serial(&artifacts, heap(6), &opts(1)).unwrap();
    let mut executions = 0;
    for engine in registry.iter() {
        for &level in engine.caps().opt_levels {
            let o = ExecOptions {
                opt_level: level,
                ..opts(1)
            };
            let serial = engine.run_serial(&artifacts, heap(6), &o).unwrap();
            assert_eq!(serial.heap, expected.heap);
            let par_opts = ExecOptions {
                opt_level: level,
                ..opts(4)
            };
            let par = engine.run_parallel(&artifacts, heap(6), &par_opts).unwrap();
            assert_eq!(par.heap, expected.heap);
            executions += 2;
        }
    }
    assert!(executions >= 12, "matrix covered {executions} executions");
    assert_eq!(
        ss_ir::slots::compilation_count(),
        slots_before + 1,
        "engines consuming artifacts must not recompile the slot pass"
    );
    assert_eq!(
        ss_ir::bytecode::bytecode_compilation_count(),
        bc_before + 1,
        "engines consuming artifacts must not recompile the bytecode pass"
    );
}
