//! Compile-once and spawn-once guarantees, asserted through the
//! process-wide counters.
//!
//! These assertions diff global counters around a single run, so they live
//! in their own test binary and serialize on a shared lock — inside the
//! unit-test binary any concurrently running engine test would perturb the
//! counts.

use ss_interp::{run_parallel, run_serial, EngineChoice, ExecOptions, Heap};
use ss_ir::parse_program;
use ss_parallelizer::parallelize;
use std::sync::Mutex;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

const SRC: &str = r#"
    for (r = 0; r < reps; r++) {
        for (i = 0; i < n; i++) {
            out[i] = out[i] + r;
        }
    }
"#;

fn heap(reps: i64) -> Heap {
    Heap::new()
        .with_scalar("reps", reps)
        .with_scalar("n", 500)
        .with_array("out", vec![0; 500])
}

fn opts(threads: usize, engine: EngineChoice) -> ExecOptions {
    ExecOptions {
        threads,
        engine,
        ..ExecOptions::default()
    }
}

#[test]
fn compiled_engine_compiles_once_per_run_not_per_iteration() {
    // The dispatched loop is entered `reps` times with many iterations
    // each; the whole run must compile the program exactly once — the slot
    // table is resolved up front and reused, never recomputed per loop
    // entry or per iteration.
    let _guard = COUNTER_LOCK.lock().unwrap();
    let p = parse_program("reuse", SRC).unwrap();
    let report = parallelize(&p);
    assert!(!report.outermost_parallel_loops().is_empty());
    let before = ss_ir::slots::compilation_count();
    let par = run_parallel(&p, &report, heap(20), &opts(4, EngineChoice::Compiled)).unwrap();
    assert_eq!(
        ss_ir::slots::compilation_count(),
        before + 1,
        "one compilation per run, regardless of loop entries"
    );
    let id = ss_ir::LoopId(1);
    assert_eq!(par.stats.loops[&id].invocations, 20);
    assert_eq!(par.stats.loops[&id].iterations, 20 * 500);
    assert_eq!(par.heap, run_serial(&p, heap(20)).unwrap().heap);
}

#[test]
fn bytecode_engine_compiles_once_and_spawns_one_team_per_run() {
    // 30 adjacent dispatched regions: one slot compilation, one bytecode
    // compilation, and exactly `threads` spawned workers for the whole run
    // (the persistent team is reused region to region).
    let _guard = COUNTER_LOCK.lock().unwrap();
    let p = parse_program("reuse", SRC).unwrap();
    let report = parallelize(&p);
    assert!(!report.outermost_parallel_loops().is_empty());
    let slots_before = ss_ir::slots::compilation_count();
    let bc_before = ss_ir::bytecode::bytecode_compilation_count();
    let spawned_before = ss_runtime::team_threads_spawned();
    let threads = 3;
    let par = run_parallel(
        &p,
        &report,
        heap(30),
        &opts(threads, EngineChoice::Bytecode),
    )
    .unwrap();
    assert_eq!(ss_ir::slots::compilation_count(), slots_before + 1);
    assert_eq!(
        ss_ir::bytecode::bytecode_compilation_count(),
        bc_before + 1,
        "one bytecode compilation per run"
    );
    assert_eq!(
        ss_runtime::team_threads_spawned(),
        spawned_before + threads as u64,
        "30 adjacent parallel regions must reuse one persistent team"
    );
    let id = ss_ir::LoopId(1);
    assert_eq!(par.stats.loops[&id].invocations, 30);
    assert_eq!(par.heap, run_serial(&p, heap(30)).unwrap().heap);
}

#[test]
fn serial_bytecode_runs_compile_both_passes_exactly_once() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let p = parse_program("serial", "for (i = 0; i < n; i++) { out[i] = i * 2; }").unwrap();
    let slots_before = ss_ir::slots::compilation_count();
    let bc_before = ss_ir::bytecode::bytecode_compilation_count();
    let heap = Heap::new()
        .with_scalar("n", 100)
        .with_array("out", vec![0; 100]);
    let _ = run_serial(&p, heap).unwrap();
    assert_eq!(ss_ir::slots::compilation_count(), slots_before + 1);
    assert_eq!(ss_ir::bytecode::bytecode_compilation_count(), bc_before + 1);
}
