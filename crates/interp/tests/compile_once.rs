//! Compile-once and spawn-once guarantees, asserted through the
//! process-wide counters — now *pipeline invariants*: one
//! [`Artifacts`](ss_parallelizer::Artifacts) invocation compiles each pass
//! exactly once, every engine consumes the same artifacts without
//! recompiling, and one process-wide thread team serves all parallel
//! regions of all runs.
//!
//! These assertions diff global counters around runs, so they live in
//! their own test binary and serialize on a shared lock — inside the
//! unit-test binary any concurrently running engine test would perturb the
//! counts.

use ss_interp::{
    run_parallel, run_parallel_artifacts, run_serial, run_serial_artifacts, EngineChoice,
    ExecOptions, Heap, OptLevel,
};
use ss_ir::parse_program;
use ss_parallelizer::{parallelize, Artifacts};
use std::sync::Mutex;

static COUNTER_LOCK: Mutex<()> = Mutex::new(());

const SRC: &str = r#"
    for (r = 0; r < reps; r++) {
        for (i = 0; i < n; i++) {
            out[i] = out[i] + r;
        }
    }
"#;

fn heap(reps: i64) -> Heap {
    Heap::new()
        .with_scalar("reps", reps)
        .with_scalar("n", 500)
        .with_array("out", vec![0; 500])
}

fn opts(threads: usize, engine: EngineChoice) -> ExecOptions {
    ExecOptions {
        threads,
        engine,
        ..ExecOptions::default()
    }
}

#[test]
fn compiled_engine_compiles_once_per_run_not_per_iteration() {
    // The dispatched loop is entered `reps` times with many iterations
    // each; the whole run must compile the program exactly once — the slot
    // table is resolved up front and reused, never recomputed per loop
    // entry or per iteration.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = parse_program("reuse", SRC).unwrap();
    let report = parallelize(&p);
    assert!(!report.outermost_parallel_loops().is_empty());
    let before = ss_ir::slots::compilation_count();
    let par = run_parallel(&p, &report, heap(20), &opts(4, EngineChoice::Compiled)).unwrap();
    assert_eq!(
        ss_ir::slots::compilation_count(),
        before + 1,
        "one compilation per run, regardless of loop entries"
    );
    let id = ss_ir::LoopId(1);
    assert_eq!(par.stats.loops[&id].invocations, 20);
    assert_eq!(par.stats.loops[&id].iterations, 20 * 500);
    assert_eq!(par.heap, run_serial(&p, heap(20)).unwrap().heap);
}

#[test]
fn bytecode_engine_compiles_once_and_runs_on_the_shared_team() {
    // 30 adjacent dispatched regions: one slot compilation, one bytecode
    // compilation, and at most one team's worth of spawned workers — zero
    // if an earlier test in this process already registered a team of this
    // size (the team is process-wide, not per-run).
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = parse_program("reuse", SRC).unwrap();
    let report = parallelize(&p);
    assert!(!report.outermost_parallel_loops().is_empty());
    let slots_before = ss_ir::slots::compilation_count();
    let bc_before = ss_ir::bytecode::bytecode_compilation_count();
    let spawned_before = ss_runtime::team_threads_spawned();
    let threads = 3;
    let par = run_parallel(
        &p,
        &report,
        heap(30),
        &opts(threads, EngineChoice::Bytecode),
    )
    .unwrap();
    assert_eq!(ss_ir::slots::compilation_count(), slots_before + 1);
    assert_eq!(
        ss_ir::bytecode::bytecode_compilation_count(),
        bc_before + 1,
        "one bytecode compilation per run"
    );
    let spawned = ss_runtime::team_threads_spawned() - spawned_before;
    assert!(
        spawned <= threads as u64,
        "30 adjacent parallel regions must reuse one persistent team \
         (spawned {spawned} workers)"
    );
    let id = ss_ir::LoopId(1);
    assert_eq!(par.stats.loops[&id].invocations, 30);
    assert_eq!(par.heap, run_serial(&p, heap(30)).unwrap().heap);
}

#[test]
fn one_team_serves_repeated_runs_in_process() {
    // The ROADMAP item this pins: repeated `sspar run`-style invocations in
    // one process share the CLI/pipeline-level team.  Whatever the first
    // run had to spawn, the runs after it spawn *nothing*.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = parse_program("reuse", SRC).unwrap();
    let report = parallelize(&p);
    let threads = 3;
    let o = opts(threads, EngineChoice::Bytecode);
    let first = run_parallel(&p, &report, heap(5), &o).unwrap();
    assert!(!first.stats.parallel_loops().is_empty());
    let spawned_after_first = ss_runtime::team_threads_spawned();
    for _ in 0..5 {
        let again = run_parallel(&p, &report, heap(5), &o).unwrap();
        assert_eq!(again.heap, first.heap);
    }
    assert_eq!(
        ss_runtime::team_threads_spawned(),
        spawned_after_first,
        "runs after the first must not spawn a single worker"
    );
}

#[test]
fn serial_bytecode_runs_compile_both_passes_exactly_once() {
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = parse_program("serial", "for (i = 0; i < n; i++) { out[i] = i * 2; }").unwrap();
    let slots_before = ss_ir::slots::compilation_count();
    let bc_before = ss_ir::bytecode::bytecode_compilation_count();
    let heap = Heap::new()
        .with_scalar("n", 100)
        .with_array("out", vec![0; 100]);
    let _ = run_serial(&p, heap).unwrap();
    assert_eq!(ss_ir::slots::compilation_count(), slots_before + 1);
    assert_eq!(ss_ir::bytecode::bytecode_compilation_count(), bc_before + 1);
}

#[test]
fn one_pipeline_invocation_feeds_every_engine_without_recompiling() {
    // The tentpole invariant: Artifacts::compile is the only compile of the
    // run.  Afterwards the AST, compiled and bytecode engines (serial and
    // parallel, both opt levels) all execute with the counters frozen.
    let _guard = COUNTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let p = parse_program("pipeline", SRC).unwrap();
    let reference = run_serial(&p, heap(6)).unwrap();
    let slots_before = ss_ir::slots::compilation_count();
    let bc_before = ss_ir::bytecode::bytecode_compilation_count();
    let artifacts = Artifacts::compile(&p);
    assert_eq!(
        ss_ir::slots::compilation_count(),
        slots_before + 1,
        "the pipeline runs the slot pass exactly once"
    );
    assert_eq!(
        ss_ir::bytecode::bytecode_compilation_count(),
        bc_before + 1,
        "the pipeline runs the bytecode pass exactly once (the optimizer \
         rewrites, it does not recompile)"
    );

    let mut outs = Vec::new();
    for engine in [
        EngineChoice::Ast,
        EngineChoice::Compiled,
        EngineChoice::Bytecode,
    ] {
        for opt_level in [OptLevel::O0, OptLevel::O1] {
            let o = ExecOptions {
                opt_level,
                ..opts(1, engine)
            };
            outs.push(run_serial_artifacts(&artifacts, heap(6), &o).unwrap());
            let par = ExecOptions {
                opt_level,
                ..opts(4, engine)
            };
            outs.push(run_parallel_artifacts(&artifacts, heap(6), &par).unwrap());
        }
    }
    for out in &outs {
        assert_eq!(out.heap, reference.heap);
    }
    assert_eq!(
        ss_ir::slots::compilation_count(),
        slots_before + 1,
        "engines consuming artifacts must not recompile the slot pass"
    );
    assert_eq!(
        ss_ir::bytecode::bytecode_compilation_count(),
        bc_before + 1,
        "engines consuming artifacts must not recompile the bytecode pass"
    );
}
