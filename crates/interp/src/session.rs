//! [`Session`] — the stable, embeddable execution API.
//!
//! A `Session` is the long-lived facade every consumer (the `sspar` CLI,
//! the differential fuzz harness, the benches, the examples, embedders)
//! drives instead of reaching into crate internals:
//!
//! * it owns a **content-addressed artifact cache**: compiling a source is
//!   keyed by a hash of `(name, source)`, so compile-once — a pipeline
//!   invariant within one run since PR 4 — becomes
//!   compile-once-*per-program-per-process*, with hit/miss/eviction
//!   counters ([`Session::cache_stats`]);
//! * it owns the **engine registry** ([`EngineRegistry`]): requests select
//!   engines by name, capabilities come from [`EngineCaps`](crate::EngineCaps) flags, and
//!   registering a new engine makes it available to every surface (CLI
//!   `--engine`, `sspar engines`, validation, fuzzing) at once;
//! * it runs builder-style [`RunRequest`]s into structured
//!   [`RunOutcome`]s: final heap, per-stage pipeline timings, per-loop
//!   verdict summaries, per-loop execution statistics, the engine that
//!   actually ran, cache provenance, and — in
//!   [`ValidationMode::Differential`] — the full cross-engine
//!   bit-identical-heap comparison;
//! * every failure is one [`SsError`] with a stable
//!   [`exit_code`](SsError::exit_code).
//!
//! ```
//! use ss_interp::{RunRequest, Session, ValidationMode};
//!
//! let session = Session::new();
//! let request = RunRequest::new(
//!     "fig2",
//!     r#"
//!         for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
//!         for (miel = 0; miel < nelt; miel++) {
//!             iel = mt_to_id[miel];
//!             id_to_mt[iel] = miel;
//!         }
//!     "#,
//! )
//! .threads(4)
//! .scale(256)
//! .validation(ValidationMode::Differential);
//!
//! let outcome = session.run(&request).unwrap();
//! assert!(outcome.heaps_match());
//! assert!(!outcome.dispatched.is_empty());
//!
//! // The second run of the same source is a cache hit: no recompilation.
//! session.run(&request).unwrap();
//! let stats = session.cache_stats();
//! assert_eq!((stats.misses, stats.hits), (1, 1));
//! ```

use crate::engine::{Engine, EngineRegistry, ExecOptions, ExecStats, ScheduleChoice};
use crate::error::SsError;
use crate::heap::Heap;
use crate::inputs::{synthesize_inputs, InputSpec};
use crate::json;
use crate::tuner::{self, PolicyPoint, TunedPolicy, TunerConfig};
use ss_ir::opt::OptLevel;
use ss_ir::LoopId;
use ss_parallelizer::{Artifacts, ParallelizationReport, StageTiming, VerdictKind};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// Where a run's initial heap comes from.
#[derive(Debug, Clone)]
pub enum InputSource {
    /// Synthesize inputs from the program itself (discovery pass; see
    /// [`crate::inputs`]).
    Synthesized(InputSpec),
    /// Use this heap verbatim.
    Explicit(Heap),
}

/// How much cross-checking a run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationMode {
    /// Execute only what [`ExecutionMode`] asks for.
    #[default]
    None,
    /// Execute the full differential matrix — the reference engine plus
    /// every registered engine at every level it distinguishes, serially,
    /// and the requested engine in parallel — and diff all final heaps bit
    /// for bit ([`RunOutcome::validation`]).
    Differential,
}

/// How a run picks its execution policy (engine, opt level, schedule,
/// chunk, threads).
#[derive(Debug, Clone, Default)]
pub enum RunPolicy {
    /// The request's own knobs, verbatim (engine default, `O1`, auto
    /// schedule unless overridden).
    #[default]
    Default,
    /// Apply the tuned policy persisted for `(program, input shape)` —
    /// searching once (see [`Session::tune`]) if none is persisted yet.
    /// Overrides the request's engine/threads/schedule/opt-level knobs.
    Tuned,
    /// Apply this exact policy point (no search, no cache).
    Explicit(PolicyPoint),
}

/// Which executions a non-validating run performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Serial only.
    Serial,
    /// Parallel only.
    Parallel,
    /// Serial then parallel (so [`RunOutcome::speedup`] is available).
    #[default]
    Both,
}

/// A builder-style description of one execution: program, engine, threads,
/// schedule, opt level, inputs and validation mode.  Construct with
/// [`RunRequest::new`], refine with the chained setters, hand to
/// [`Session::run`].
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Program name (used in reports and error messages).
    pub name: String,
    /// Mini-C source text.
    pub source: String,
    /// Engine name, resolved against the session's registry (`None` = the
    /// registry default).
    pub engine: Option<String>,
    /// Worker threads (`None` = all hardware threads).
    pub threads: Option<usize>,
    /// Scheduling of dispatched loops.
    pub schedule: ScheduleChoice,
    /// Which bytecode stream opt-level-sensitive engines execute.
    pub opt_level: OptLevel,
    /// The initial heap.
    pub inputs: InputSource,
    /// Cross-checking performed by the run.
    pub validation: ValidationMode,
    /// Which executions a [`ValidationMode::None`] run performs.
    pub mode: ExecutionMode,
    /// Record the runtime-inspector baseline on compile-time-serial loops
    /// (parallel legs run on an inspector-capable engine).
    pub baseline_inspector: bool,
    /// Iteration cap per loop invocation (`None` = engine default).
    pub while_cap: Option<u64>,
    /// Persistent-team group dispatched loops run in (see
    /// [`ExecOptions::team_group`]); servers map one group per shard.
    pub team_group: usize,
    /// How the run picks its execution policy ([`RunPolicy::Tuned`]
    /// applies — searching once if needed — the persisted winner for this
    /// program and input shape).
    pub policy: RunPolicy,
    /// Fixed dynamic-schedule chunk size (`None` = auto-derived).
    pub chunk: Option<usize>,
}

impl RunRequest {
    /// A request with default knobs: registry-default engine, all hardware
    /// threads, auto schedule, `O1`, synthesized inputs at the default
    /// scale, no validation, serial + parallel execution.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> RunRequest {
        RunRequest {
            name: name.into(),
            source: source.into(),
            engine: None,
            threads: None,
            schedule: ScheduleChoice::default(),
            opt_level: OptLevel::O1,
            inputs: InputSource::Synthesized(InputSpec::default()),
            validation: ValidationMode::None,
            mode: ExecutionMode::default(),
            baseline_inspector: false,
            while_cap: None,
            team_group: 0,
            policy: RunPolicy::Default,
            chunk: None,
        }
    }

    /// Selects the engine by registry name (e.g. `"bytecode"`).
    pub fn engine(mut self, name: impl Into<String>) -> RunRequest {
        self.engine = Some(name.into());
        self
    }

    /// Worker threads for dispatched loops.
    pub fn threads(mut self, threads: usize) -> RunRequest {
        self.threads = Some(threads);
        self
    }

    /// Scheduling of dispatched loops.
    pub fn schedule(mut self, schedule: ScheduleChoice) -> RunRequest {
        self.schedule = schedule;
        self
    }

    /// Which bytecode stream opt-level-sensitive engines execute.
    pub fn opt_level(mut self, level: OptLevel) -> RunRequest {
        self.opt_level = level;
        self
    }

    /// Input scale for synthesized inputs (loop bounds / data modulus).
    /// Resets explicit inputs back to synthesis.
    pub fn scale(mut self, scale: i64) -> RunRequest {
        let seed = match &self.inputs {
            InputSource::Synthesized(spec) => spec.seed,
            InputSource::Explicit(_) => InputSpec::default().seed,
        };
        self.inputs = InputSource::Synthesized(InputSpec { scale, seed });
        self
    }

    /// Input data seed for synthesized inputs.  Resets explicit inputs
    /// back to synthesis.
    pub fn seed(mut self, seed: u64) -> RunRequest {
        let scale = match &self.inputs {
            InputSource::Synthesized(spec) => spec.scale,
            InputSource::Explicit(_) => InputSpec::default().scale,
        };
        self.inputs = InputSource::Synthesized(InputSpec { scale, seed });
        self
    }

    /// Uses `heap` verbatim as the initial program state.
    pub fn initial_heap(mut self, heap: Heap) -> RunRequest {
        self.inputs = InputSource::Explicit(heap);
        self
    }

    /// Sets the validation mode.
    pub fn validation(mut self, mode: ValidationMode) -> RunRequest {
        self.validation = mode;
        self
    }

    /// Sets which executions a non-validating run performs.
    pub fn mode(mut self, mode: ExecutionMode) -> RunRequest {
        self.mode = mode;
        self
    }

    /// Records the runtime-inspector baseline on compile-time-serial loops.
    pub fn baseline_inspector(mut self, on: bool) -> RunRequest {
        self.baseline_inspector = on;
        self
    }

    /// Iteration cap per loop invocation.
    pub fn while_cap(mut self, cap: u64) -> RunRequest {
        self.while_cap = Some(cap);
        self
    }

    /// Persistent-team group dispatched loops run in.  Distinct groups
    /// hold independent thread teams, so a server can execute concurrent
    /// requests on per-shard teams instead of serializing on one.
    pub fn team_group(mut self, group: usize) -> RunRequest {
        self.team_group = group;
        self
    }

    /// Sets how the run picks its execution policy.
    pub fn policy(mut self, policy: RunPolicy) -> RunRequest {
        self.policy = policy;
        self
    }

    /// Fixed dynamic-schedule chunk size for dispatched loops.
    pub fn chunk(mut self, chunk: usize) -> RunRequest {
        self.chunk = Some(chunk);
        self
    }

    fn exec_options(&self) -> ExecOptions {
        let defaults = ExecOptions::default();
        ExecOptions {
            threads: self.threads.unwrap_or(defaults.threads),
            schedule: self.schedule,
            chunk: self.chunk,
            opt_level: self.opt_level,
            baseline_inspector: self.baseline_inspector,
            while_cap: self.while_cap.unwrap_or(defaults.while_cap),
            team_group: self.team_group,
            ..defaults
        }
    }
}

// ---------------------------------------------------------------------------
// Outcomes.
// ---------------------------------------------------------------------------

/// One loop's verdict and execution facts, as reported to consumers
/// (tables, JSON, assertions).
#[derive(Debug, Clone)]
pub struct LoopVerdictSummary {
    /// The loop.
    pub loop_id: LoopId,
    /// Loop index variable (empty for `while` loops).
    pub index_var: String,
    /// Nesting depth (0 = outermost).
    pub depth: usize,
    /// The compile-time verdict class.
    pub verdict: VerdictKind,
    /// Whether the property-free baseline also proves the loop parallel.
    pub baseline_parallel: bool,
    /// Parallel under the extended test but not the baseline — the loops
    /// the paper's technique newly enables.
    pub newly_enabled: bool,
    /// Recognized reductions as `op:var` clauses (`+:total`).
    pub reductions: Vec<String>,
    /// Whether the parallel leg of this run dispatched the loop.
    pub dispatched: bool,
}

/// Builds the per-loop verdict summaries from an analysis report;
/// `dispatched` marks the loops a parallel run actually sent to threads.
pub fn verdict_summary(
    report: &ParallelizationReport,
    dispatched: &[LoopId],
) -> Vec<LoopVerdictSummary> {
    report
        .loops
        .iter()
        .map(|l| LoopVerdictSummary {
            loop_id: l.loop_id,
            index_var: l.index_var.clone(),
            depth: l.depth,
            verdict: l.verdict(),
            baseline_parallel: l.baseline_parallel,
            newly_enabled: l.parallel && !l.baseline_parallel,
            reductions: l
                .reductions
                .iter()
                .map(|r| format!("{}:{}", r.op.symbol(), r.var))
                .collect(),
            dispatched: dispatched.contains(&l.loop_id),
        })
        .collect()
}

/// The cross-engine comparison of a [`ValidationMode::Differential`] run.
#[derive(Debug, Clone)]
pub struct ValidationSummary {
    /// Labels of every execution that was diffed against the reference
    /// (engine name, `@O<n>`-suffixed where the engine distinguishes
    /// levels, and the parallel leg).
    pub compared: Vec<String>,
    /// True when every final heap was bit-identical to the reference.
    pub heaps_match: bool,
    /// Human-readable differences otherwise, each prefixed with the
    /// comparison that produced it.
    pub mismatches: Vec<String>,
}

/// Everything one [`Session::run`] produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Program name.
    pub program: String,
    /// The engine that ran the requested execution.
    pub engine: String,
    /// The engine that ran the parallel leg (differs from
    /// [`engine`](Self::engine) when the inspector baseline redirected it
    /// to an inspector-capable engine); `None` when no parallel leg ran.
    pub parallel_engine: Option<String>,
    /// Opt level the request asked for.
    pub opt_level: OptLevel,
    /// Worker threads the parallel leg used.
    pub threads: usize,
    /// True when the artifacts came from the session cache (no
    /// recompilation).
    pub cache_hit: bool,
    /// Wall-clock cost of each compile-pipeline stage (zero-cost on cache
    /// hits: the timings are the cached compilation's).
    pub stages: Vec<StageTiming>,
    /// Per-loop verdicts and dispatch facts.
    pub verdicts: Vec<LoopVerdictSummary>,
    /// Loops the analysis proved parallelizable (outermost ones, reduction
    /// loops included).
    pub proven_parallel: Vec<LoopId>,
    /// Loops the parallel leg actually dispatched to threads.
    pub dispatched: Vec<LoopId>,
    /// Statistics of the serial leg (the requested engine's), when one ran.
    pub serial: Option<ExecStats>,
    /// Statistics of the parallel leg, when one ran.
    pub parallel: Option<ExecStats>,
    /// The final heap (of the parallel leg when one ran, else the serial
    /// leg; under differential validation all heaps are compared anyway).
    pub heap: Heap,
    /// The cross-engine comparison, for differential runs.
    pub validation: Option<ValidationSummary>,
    /// Which policy class selected the engine/opt/schedule/threads:
    /// `"default"`, `"tuned"` or `"explicit"`.
    pub policy: String,
    /// Where a non-default policy came from: `"tuned-cache"` (persisted
    /// winner applied with zero re-search), `"tuned-search"` (searched on
    /// this run) or `"explicit"`; `None` for default-policy runs.
    pub policy_provenance: Option<String>,
}

impl RunOutcome {
    /// True unless a differential run found diverging heaps.
    pub fn heaps_match(&self) -> bool {
        self.validation
            .as_ref()
            .map(|v| v.heaps_match)
            .unwrap_or(true)
    }

    /// The mismatch descriptions of a diverging differential run.
    pub fn mismatches(&self) -> &[String] {
        self.validation
            .as_ref()
            .map(|v| v.mismatches.as_slice())
            .unwrap_or(&[])
    }

    /// Errors with [`SsError::Validation`] when a differential run found
    /// diverging heaps — the hook CLI `--validate` exits through.
    pub fn ensure_validated(&self) -> Result<(), SsError> {
        match &self.validation {
            Some(v) if !v.heaps_match => Err(SsError::Validation {
                program: self.program.clone(),
                mismatches: v.mismatches.clone(),
            }),
            _ => Ok(()),
        }
    }

    /// Serial over parallel wall-clock, when both legs ran.
    pub fn speedup(&self) -> Option<f64> {
        match (&self.serial, &self.parallel) {
            (Some(s), Some(p)) => Some(s.total_seconds / p.total_seconds.max(1e-12)),
            _ => None,
        }
    }

    /// The outcome as one stable JSON object (schema documented on
    /// [`Session`]): program, engine, opt level, threads, cache
    /// provenance, stage timings, per-loop verdicts, wall-clock totals,
    /// speedup and the validation summary.  The final heap is *not*
    /// embedded (it can be arbitrarily large); consumers needing state
    /// read [`RunOutcome::heap`].
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// [`to_json`](Self::to_json) plus a trailing `"heap"` field rendered
    /// by [`json::heap_json`] — the form the `sspard` daemon returns when
    /// a client asks for final state (`include_heap`).  Same serializer
    /// path, strictly additive schema.
    pub fn to_json_with_heap(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, include_heap: bool) -> String {
        let mut fields = vec![
            ("program", json::string(&self.program)),
            ("engine", json::string(&self.engine)),
            (
                "parallel_engine",
                match &self.parallel_engine {
                    Some(e) => json::string(e),
                    None => "null".to_string(),
                },
            ),
            ("opt_level", json::string(&self.opt_level.to_string())),
            ("threads", self.threads.to_string()),
            ("policy", json::string(&self.policy)),
            (
                "policy_provenance",
                match &self.policy_provenance {
                    Some(p) => json::string(p),
                    None => "null".to_string(),
                },
            ),
            ("cache_hit", self.cache_hit.to_string()),
            ("stages", stages_json(&self.stages)),
            ("verdicts", verdicts_json(&self.verdicts)),
            (
                "proven_parallel",
                json::array(self.proven_parallel.iter().map(|l| l.0.to_string())),
            ),
            (
                "dispatched",
                json::array(self.dispatched.iter().map(|l| l.0.to_string())),
            ),
            (
                "serial_seconds",
                self.serial
                    .as_ref()
                    .map(|s| json::number(s.total_seconds))
                    .unwrap_or_else(|| "null".to_string()),
            ),
            (
                "parallel_seconds",
                self.parallel
                    .as_ref()
                    .map(|s| json::number(s.total_seconds))
                    .unwrap_or_else(|| "null".to_string()),
            ),
            (
                "speedup",
                self.speedup()
                    .map(json::number)
                    .unwrap_or_else(|| "null".to_string()),
            ),
        ];
        fields.push((
            "validation",
            match &self.validation {
                Some(v) => json::object([
                    ("heaps_match", v.heaps_match.to_string()),
                    (
                        "compared",
                        json::string_array(v.compared.iter().map(String::as_str)),
                    ),
                    (
                        "mismatches",
                        json::string_array(v.mismatches.iter().map(String::as_str)),
                    ),
                ]),
                None => "null".to_string(),
            },
        ));
        if include_heap {
            fields.push(("heap", json::heap_json(&self.heap)));
        }
        json::object(fields)
    }
}

fn stages_json(stages: &[StageTiming]) -> String {
    json::array(stages.iter().map(|s| {
        json::object([
            ("stage", json::string(s.stage)),
            ("seconds", json::number(s.seconds)),
        ])
    }))
}

fn verdicts_json(verdicts: &[LoopVerdictSummary]) -> String {
    json::array(verdicts.iter().map(|v| {
        json::object([
            ("loop", v.loop_id.0.to_string()),
            ("index_var", json::string(&v.index_var)),
            ("depth", v.depth.to_string()),
            ("verdict", json::string(v.verdict.label())),
            ("baseline_parallel", v.baseline_parallel.to_string()),
            ("newly_enabled", v.newly_enabled.to_string()),
            (
                "reductions",
                json::string_array(v.reductions.iter().map(String::as_str)),
            ),
            ("dispatched", v.dispatched.to_string()),
        ])
    }))
}

/// The analysis half of the JSON surface (`sspar analyze --format json`):
/// verdicts, pipeline stage timings and the annotated source of one
/// compiled program — no execution involved.
pub fn analysis_json(artifacts: &Artifacts) -> String {
    let verdicts = verdict_summary(&artifacts.report, &[]);
    json::object([
        ("program", json::string(&artifacts.report.name)),
        ("stages", stages_json(&artifacts.stages)),
        ("verdicts", verdicts_json(&verdicts)),
        (
            "reasons",
            json::array(artifacts.report.loops.iter().map(|l| {
                json::object([
                    ("loop", l.loop_id.0.to_string()),
                    (
                        "reasons",
                        json::string_array(l.reasons.iter().map(String::as_str)),
                    ),
                    (
                        "blockers",
                        json::string_array(l.blockers.iter().map(String::as_str)),
                    ),
                ])
            })),
        ),
        (
            "annotated_source",
            json::string(&artifacts.report.annotated_source),
        ),
    ])
}

/// The engine registry as one stable JSON object (`sspar engines
/// --format json`): per engine its name, default flag, description,
/// capability flags and distinguished opt levels — all escaped through
/// the same emitter as every other JSON surface.
pub fn registry_json(registry: &EngineRegistry) -> String {
    json::object([(
        "engines",
        json::array(registry.iter().enumerate().map(|(i, e)| {
            let caps = e.caps();
            json::object([
                ("name", json::string(e.name())),
                ("default", (i == 0).to_string()),
                ("description", json::string(e.description())),
                ("reference", caps.reference.to_string()),
                ("reductions", caps.reductions.to_string()),
                ("local_arrays", caps.local_arrays.to_string()),
                ("inspector_baseline", caps.inspector_baseline.to_string()),
                ("persistent_team", caps.persistent_team.to_string()),
                (
                    "opt_levels",
                    json::array(caps.opt_levels.iter().map(|l| json::string(&l.to_string()))),
                ),
            ])
        })),
    )])
}

// ---------------------------------------------------------------------------
// The session.
// ---------------------------------------------------------------------------

/// Counters of the session's content-addressed artifact cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found compiled artifacts.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries dropped to respect the capacity bounds (entry-count or
    /// byte).
    pub evictions: u64,
    /// Programs currently cached.
    pub entries: usize,
    /// Entry-count capacity bound (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Approximate bytes currently held (sum of
    /// [`Artifacts::approx_bytes`](ss_parallelizer::Artifacts::approx_bytes)
    /// over cached entries).
    pub bytes: usize,
    /// Byte capacity bound (`None` = unbounded).
    pub capacity_bytes: Option<usize>,
    /// Eviction policy under the capacity bounds (`"lru"`).
    pub policy: &'static str,
}

struct CacheState {
    /// Cached artifacts plus each entry's approximate byte charge.
    map: HashMap<u128, (Arc<Artifacts>, usize)>,
    /// Recency order (front = least recently used): hits move an entry to
    /// the back, eviction under the capacity bounds pops the front.
    order: VecDeque<u128>,
    /// Sum of the byte charges of every entry in `map`.
    bytes: usize,
}

/// The long-lived execution facade: engine registry + content-addressed
/// artifact cache + [`RunRequest`] execution.  See the [module
/// docs](crate::session) for the JSON schema and an end-to-end example.
///
/// `Session` is `Send + Sync`; one instance can serve concurrent callers
/// (the cache is internally locked, engines are stateless).
pub struct Session {
    registry: EngineRegistry,
    cache: Mutex<CacheState>,
    capacity: Option<usize>,
    capacity_bytes: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    tuned_searches: AtomicU64,
    tuned_hits: AtomicU64,
}

/// Counters of the session's tuned-policy activity (see
/// [`Session::tuner_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerStats {
    /// Policy searches this session ran (each persisted one winner).
    pub searches: u64,
    /// Runs/tunes that applied a persisted policy with zero re-search.
    pub hits: u64,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A session over the built-in engine registry and an unbounded cache.
    pub fn new() -> Session {
        Session::with_registry(EngineRegistry::builtin())
    }

    /// A session over a custom registry.
    pub fn with_registry(registry: EngineRegistry) -> Session {
        Session {
            registry,
            cache: Mutex::new(CacheState {
                map: HashMap::new(),
                order: VecDeque::new(),
                bytes: 0,
            }),
            capacity: None,
            capacity_bytes: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            tuned_searches: AtomicU64::new(0),
            tuned_hits: AtomicU64::new(0),
        }
    }

    /// Bounds the artifact cache to `capacity` programs (LRU eviction;
    /// long-running embedders and fuzz loops set this to keep memory
    /// flat while their hot programs stay cached).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Session {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// Bounds the artifact cache to approximately `bytes` of cached
    /// artifacts (each entry charged its
    /// [`Artifacts::approx_bytes`](ss_parallelizer::Artifacts::approx_bytes),
    /// refreshed on every hit so lazily attached engine lowerings are
    /// accounted; LRU eviction, composable with
    /// [`Session::with_cache_capacity`](Self::with_cache_capacity)).  The
    /// most recently used entry is never evicted, so a single program
    /// larger than the bound still caches (and the bound holds again as
    /// soon as anything else is inserted).
    pub fn with_cache_capacity_bytes(mut self, bytes: usize) -> Session {
        self.capacity_bytes = Some(bytes.max(1));
        self
    }

    /// The engine registry backing this session.
    pub fn registry(&self) -> &EngineRegistry {
        &self.registry
    }

    /// Registers (or replaces) an engine.
    pub fn register_engine(&mut self, engine: Arc<dyn Engine>) {
        self.registry.register(engine);
    }

    /// Tuned-policy counters: searches run vs persisted policies applied
    /// with zero re-search.
    pub fn tuner_stats(&self) -> TunerStats {
        TunerStats {
            searches: self.tuned_searches.load(Ordering::Relaxed),
            hits: self.tuned_hits.load(Ordering::Relaxed),
        }
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        let state = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: state.map.len(),
            capacity: self.capacity,
            bytes: state.bytes,
            capacity_bytes: self.capacity_bytes,
            policy: "lru",
        }
    }

    /// Compiles `source` through the staged pipeline — or returns the
    /// cached artifacts when this session has compiled the identical
    /// `(name, source)` pair before.
    pub fn artifacts(&self, name: &str, source: &str) -> Result<Arc<Artifacts>, SsError> {
        Ok(self.artifacts_traced(name, source)?.0)
    }

    /// Evicts least-recently-used entries until both cache bounds hold
    /// again.  The most recently used entry (the back of the recency
    /// order) is never evicted, so a single oversized program still
    /// caches.
    fn evict_over_bounds(&self, state: &mut CacheState) {
        let over = |state: &CacheState| {
            self.capacity.is_some_and(|cap| state.map.len() > cap)
                || self.capacity_bytes.is_some_and(|cap| state.bytes > cap)
        };
        while state.map.len() > 1 && over(state) {
            if let Some(old) = state.order.pop_front() {
                if let Some((_, freed)) = state.map.remove(&old) {
                    state.bytes -= freed;
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// [`artifacts`](Self::artifacts), plus whether the result was a cache
    /// hit.
    pub fn artifacts_traced(
        &self,
        name: &str,
        source: &str,
    ) -> Result<(Arc<Artifacts>, bool), SsError> {
        let key = content_key(name, source);
        {
            let mut state = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some((found, old_charge)) = state.map.get(&key).map(|(a, c)| (Arc::clone(a), *c))
            {
                // LRU: a hit moves the entry to the back of the recency
                // order, and re-charges it — engine lowerings attach to
                // `Artifacts` lazily after insertion, so the byte account
                // is refreshed here.
                if let Some(pos) = state.order.iter().position(|k| *k == key) {
                    state.order.remove(pos);
                }
                state.order.push_back(key);
                let new_charge = found.approx_bytes();
                if new_charge != old_charge {
                    state.bytes = state.bytes + new_charge - old_charge;
                    if let Some(entry) = state.map.get_mut(&key) {
                        entry.1 = new_charge;
                    }
                    // The refreshed charge can push the account over the
                    // byte bound; re-run eviction so the invariant
                    // `bytes ≤ capacity_bytes` holds after hits too.  The
                    // just-hit entry is at the back of the order, so it is
                    // never the one evicted.
                    self.evict_over_bounds(&mut state);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((found, true));
            }
        }
        // Compile outside the lock: concurrent misses on the same key may
        // both compile, but the cache stays consistent (last insert wins)
        // and no caller ever blocks on another's compilation.
        let compiled = Arc::new(Artifacts::compile_source(name, source)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let charge = compiled.approx_bytes();
        let mut state = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let std::collections::hash_map::Entry::Vacant(slot) = state.map.entry(key) {
            slot.insert((Arc::clone(&compiled), charge));
            state.order.push_back(key);
            state.bytes += charge;
            // Evict least-recently-used entries under either bound; the
            // entry just inserted is never evicted, so oversized
            // singletons still cache.
            self.evict_over_bounds(&mut state);
        }
        Ok((compiled, false))
    }

    /// The initial heap of `request` (synthesized or explicit).
    fn initial_heap(&self, request: &RunRequest, artifacts: &Artifacts) -> Result<Heap, SsError> {
        Ok(match &request.inputs {
            InputSource::Synthesized(spec) => synthesize_inputs(&artifacts.program, spec)?,
            InputSource::Explicit(heap) => heap.clone(),
        })
    }

    /// The tuned policy for `(artifacts, initial)`: the persisted winner
    /// when one exists (zero re-search — `true` in the result), else a
    /// fresh [`tuner::search`] whose winner is persisted on the artifacts
    /// (and thereby charged to the cache byte bound on the next hit's
    /// recharge, like every lazily attached engine lowering).
    fn tuned_policy(
        &self,
        artifacts: &Artifacts,
        initial: &Heap,
        base: &ExecOptions,
        config: &TunerConfig,
    ) -> Result<(Arc<TunedPolicy>, bool), SsError> {
        let signature = tuner::input_signature(initial);
        if let Some(policy) = tuner::cached_policy(artifacts, signature) {
            self.tuned_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((policy, true));
        }
        let policy = Arc::new(tuner::search(
            &self.registry,
            artifacts,
            initial,
            base,
            config,
        )?);
        tuner::store_policy(artifacts, signature, Arc::clone(&policy));
        self.tuned_searches.fetch_add(1, Ordering::Relaxed);
        Ok((policy, false))
    }

    /// Tunes one program + input shape: compile (or fetch from cache),
    /// synthesize or adopt inputs, then return the persisted tuned policy
    /// — searching the policy space only when none is persisted yet for
    /// `(program hash, input-shape signature)`.  See [`crate::tuner`] for
    /// the search itself.
    pub fn tune(&self, request: &RunRequest, config: &TunerConfig) -> Result<TuneOutcome, SsError> {
        let (artifacts, _) = self.artifacts_traced(&request.name, &request.source)?;
        let initial = self.initial_heap(request, &artifacts)?;
        let signature = tuner::input_signature(&initial);
        let (policy, cache_hit) =
            self.tuned_policy(&artifacts, &initial, &request.exec_options(), config)?;
        Ok(TuneOutcome {
            program: artifacts.report.name.clone(),
            policy,
            signature,
            cache_hit,
        })
    }

    /// Runs one [`RunRequest`] end to end: compile (or fetch from cache),
    /// resolve the policy and engine, synthesize or adopt inputs, execute
    /// per the request's [`ExecutionMode`]/[`ValidationMode`], and
    /// assemble the structured [`RunOutcome`].
    pub fn run(&self, request: &RunRequest) -> Result<RunOutcome, SsError> {
        let (artifacts, cache_hit) = self.artifacts_traced(&request.name, &request.source)?;
        let initial = self.initial_heap(request, &artifacts)?;
        let (engine_name, opts, policy_label, policy_provenance) = match &request.policy {
            RunPolicy::Default => (
                request.engine.clone(),
                request.exec_options(),
                "default",
                None,
            ),
            RunPolicy::Explicit(point) => (
                Some(point.engine.clone()),
                point.apply(request.exec_options()),
                "explicit",
                Some("explicit".to_string()),
            ),
            RunPolicy::Tuned => {
                let base = request.exec_options();
                let (policy, hit) =
                    self.tuned_policy(&artifacts, &initial, &base, &TunerConfig::default())?;
                (
                    Some(policy.point.engine.clone()),
                    policy.point.apply(base),
                    "tuned",
                    Some(if hit { "tuned-cache" } else { "tuned-search" }.to_string()),
                )
            }
        };
        let engine = match &engine_name {
            Some(name) => self.registry.get(name)?,
            None => self.registry.default_engine(),
        };
        // Every engine this run will execute gets exactly one prepare()
        // call (its chance to veto the artifact store) before its first
        // execution, the requested one included.
        let mut prepared: Vec<&'static str> = Vec::new();
        let prepare_once =
            |e: &Arc<dyn Engine>, prepared: &mut Vec<&'static str>| -> Result<(), SsError> {
                if !prepared.contains(&e.name()) {
                    e.prepare(&artifacts)?;
                    prepared.push(e.name());
                }
                Ok(())
            };
        prepare_once(&engine, &mut prepared)?;
        // The inspector baseline records through the tree-walker's store:
        // redirect the parallel leg to an inspector-capable engine, the
        // way `--baseline inspector` always has.
        let parallel_engine = if opts.baseline_inspector && !engine.caps().inspector_baseline {
            self.registry
                .inspector_capable()
                .ok_or_else(|| SsError::Unsupported {
                    engine: engine.name().to_string(),
                    reason: "the inspector baseline needs an engine with the \
                             inspector_baseline capability, and none is registered"
                        .to_string(),
                })?
        } else {
            Arc::clone(&engine)
        };
        prepare_once(&parallel_engine, &mut prepared)?;

        let mut serial: Option<ExecStats> = None;
        let mut parallel: Option<ExecStats> = None;
        let mut validation: Option<ValidationSummary> = None;
        let mut parallel_engine_used: Option<String> = None;
        let heap;

        match request.validation {
            ValidationMode::Differential => {
                let reference = self
                    .registry
                    .reference()
                    .ok_or_else(|| SsError::Unsupported {
                        engine: engine.name().to_string(),
                        reason: "differential validation needs a reference engine, \
                                     and none is registered"
                            .to_string(),
                    })?;
                prepare_once(&reference, &mut prepared)?;
                let ref_out = reference.run_serial(&artifacts, initial.clone(), &opts)?;
                let mut compared = Vec::new();
                let mut mismatches = Vec::new();
                for other in self.registry.iter() {
                    if other.name() == reference.name() {
                        continue; // the reference run itself
                    }
                    prepare_once(other, &mut prepared)?;
                    for &level in other.caps().opt_levels {
                        let label = engine_label(other.as_ref(), level);
                        let level_opts = ExecOptions {
                            opt_level: level,
                            ..opts.clone()
                        };
                        let out = other.run_serial(&artifacts, initial.clone(), &level_opts)?;
                        for m in ref_out.heap.diff(&out.heap) {
                            mismatches.push(format!(
                                "serial {} vs serial {label}: {m}",
                                reference.name()
                            ));
                        }
                        if other.name() == engine.name()
                            && (level == opts.opt_level || other.caps().opt_levels.len() == 1)
                        {
                            serial = Some(out.stats);
                        }
                        compared.push(label);
                    }
                }
                if serial.is_none() {
                    // The requested engine is the reference itself.
                    serial = Some(ref_out.stats.clone());
                }
                let par_out = parallel_engine.run_parallel(&artifacts, initial.clone(), &opts)?;
                for m in ref_out.heap.diff(&par_out.heap) {
                    mismatches.push(format!("serial vs parallel: {m}"));
                }
                compared.push(format!("parallel {}", parallel_engine.name()));
                parallel_engine_used = Some(parallel_engine.name().to_string());
                validation = Some(ValidationSummary {
                    compared,
                    heaps_match: mismatches.is_empty(),
                    mismatches,
                });
                parallel = Some(par_out.stats);
                heap = ref_out.heap;
            }
            ValidationMode::None => {
                let run_serial_leg =
                    matches!(request.mode, ExecutionMode::Serial | ExecutionMode::Both);
                let run_parallel_leg =
                    matches!(request.mode, ExecutionMode::Parallel | ExecutionMode::Both);
                let mut last_heap: Option<Heap> = None;
                if run_serial_leg {
                    let out = engine.run_serial(&artifacts, initial.clone(), &opts)?;
                    serial = Some(out.stats);
                    last_heap = Some(out.heap);
                }
                if run_parallel_leg {
                    let out = parallel_engine.run_parallel(&artifacts, initial.clone(), &opts)?;
                    parallel = Some(out.stats);
                    parallel_engine_used = Some(parallel_engine.name().to_string());
                    last_heap = Some(out.heap);
                }
                heap = last_heap.expect("ExecutionMode always runs at least one leg");
            }
        }

        let dispatched = parallel
            .as_ref()
            .map(|p| p.parallel_loops())
            .unwrap_or_default();
        Ok(RunOutcome {
            program: artifacts.report.name.clone(),
            engine: engine.name().to_string(),
            parallel_engine: parallel_engine_used,
            opt_level: opts.opt_level,
            threads: opts.threads,
            cache_hit,
            stages: artifacts.stages.clone(),
            verdicts: verdict_summary(&artifacts.report, &dispatched),
            proven_parallel: artifacts.report.outermost_parallel_loops(),
            dispatched,
            serial,
            parallel,
            heap,
            validation,
            policy: policy_label.to_string(),
            policy_provenance,
        })
    }
}

/// Everything one [`Session::tune`] produces: the (possibly
/// freshly-searched) tuned policy, the input-shape signature it is keyed
/// by, and whether it came from the persisted cache.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Program name.
    pub program: String,
    /// The tuned policy (winner + full search table).
    pub policy: Arc<TunedPolicy>,
    /// The input-shape signature half of the persistence key.
    pub signature: u64,
    /// True when the policy was already persisted (zero re-search).
    pub cache_hit: bool,
}

impl TuneOutcome {
    /// The outcome as one stable JSON object: program, provenance, the
    /// winner (engine/opt/schedule/chunk/threads + its median), the
    /// default policy's median, the speedup, the full search table and
    /// the pruner's notes — the body `sspar tune --format json` and the
    /// daemon `tune` op return.
    pub fn to_json(&self) -> String {
        let point_fields = |p: &PolicyPoint| {
            vec![
                ("engine", json::string(&p.engine)),
                ("opt_level", json::string(&p.opt_level.to_string())),
                (
                    "schedule",
                    json::string(match p.schedule {
                        ScheduleChoice::Auto => "auto",
                        ScheduleChoice::Static => "static",
                        ScheduleChoice::Dynamic => "dynamic",
                    }),
                ),
                (
                    "chunk",
                    p.chunk
                        .map(|c| c.to_string())
                        .unwrap_or_else(|| "null".to_string()),
                ),
                ("threads", p.threads.to_string()),
                ("label", json::string(&p.label())),
            ]
        };
        let mut winner = point_fields(&self.policy.point);
        winner.push(("median_seconds", json::number(self.policy.median_seconds)));
        json::object([
            ("program", json::string(&self.program)),
            (
                "signature",
                json::string(&format!("{:016x}", self.signature)),
            ),
            (
                "provenance",
                json::string(if self.cache_hit {
                    "tuned-cache"
                } else {
                    "tuned-search"
                }),
            ),
            ("winner", json::object(winner)),
            (
                "default_median_seconds",
                json::number(self.policy.default_median_seconds),
            ),
            (
                "speedup_vs_default",
                json::number(self.policy.speedup_vs_default()),
            ),
            (
                "trials",
                json::array(self.policy.trials.iter().map(|t| {
                    let mut fields = point_fields(&t.point);
                    fields.push(("median_seconds", json::number(t.median_seconds)));
                    json::object(fields)
                })),
            ),
            (
                "pruned",
                json::string_array(self.policy.pruned.iter().map(String::as_str)),
            ),
        ])
    }
}

/// `name` for single-level engines, `name@O<n>` for opt-level-sensitive
/// ones — the labels the differential matrix and the fuzz harness report.
pub fn engine_label(engine: &dyn Engine, level: OptLevel) -> String {
    if engine.caps().opt_levels.len() > 1 {
        format!("{}@{level}", engine.name())
    } else {
        engine.name().to_string()
    }
}

/// The cache key: a 128-bit content hash of `(name, source)`.
fn content_key(name: &str, source: &str) -> u128 {
    let mut lo = DefaultHasher::new();
    0u8.hash(&mut lo);
    name.hash(&mut lo);
    source.hash(&mut lo);
    let mut hi = DefaultHasher::new();
    1u8.hash(&mut hi);
    name.hash(&mut hi);
    source.hash(&mut hi);
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = r#"
        for (e = 0; e < nelt; e++) { mt_to_id[e] = nelt - 1 - e; }
        for (miel = 0; miel < nelt; miel++) {
            iel = mt_to_id[miel];
            id_to_mt[iel] = miel;
        }
    "#;

    #[test]
    fn differential_run_validates_figure2_end_to_end() {
        let session = Session::new();
        let outcome = session
            .run(
                &RunRequest::new("fig2", FIG2)
                    .threads(4)
                    .scale(512)
                    .seed(3)
                    .validation(ValidationMode::Differential),
            )
            .unwrap();
        assert!(outcome.heaps_match(), "{:?}", outcome.mismatches());
        assert!(outcome.ensure_validated().is_ok());
        assert_eq!(outcome.proven_parallel, vec![LoopId(0), LoopId(1)]);
        assert_eq!(outcome.dispatched, vec![LoopId(0), LoopId(1)]);
        assert_eq!(outcome.engine, "bytecode");
        assert_eq!(outcome.parallel_engine.as_deref(), Some("bytecode"));
        assert!(outcome.serial.is_some() && outcome.parallel.is_some());
        assert!(outcome.speedup().unwrap() > 0.0);
        let v = outcome.validation.as_ref().unwrap();
        // compiled + bytecode/threaded/wavefront @O0/O1 serial legs, one
        // parallel leg.
        assert_eq!(v.compared.len(), 8, "{:?}", v.compared);
        assert!(v.compared.contains(&"bytecode@O0".to_string()));
        assert!(v.compared.contains(&"threaded@O0".to_string()));
        assert!(v.compared.contains(&"threaded@O1".to_string()));
        assert!(v.compared.contains(&"wavefront@O0".to_string()));
        assert!(v.compared.contains(&"wavefront@O1".to_string()));
        assert!(v.compared.contains(&"compiled".to_string()));
    }

    #[test]
    fn cache_hits_skip_recompilation_and_count() {
        let session = Session::new();
        let req = RunRequest::new("fig2", FIG2).threads(2).scale(64);
        session.run(&req).unwrap();
        let first = session.cache_stats();
        assert_eq!((first.hits, first.misses, first.entries), (0, 1, 1));
        let again = session.run(&req).unwrap();
        assert!(again.cache_hit);
        let second = session.cache_stats();
        assert_eq!((second.hits, second.misses, second.entries), (1, 1, 1));
        // A different source is a different content address.
        session
            .run(&RunRequest::new("other", "x = 1;").scale(4))
            .unwrap();
        assert_eq!(session.cache_stats().misses, 2);
    }

    #[test]
    fn bounded_caches_evict_the_least_recently_used_entry() {
        let session = Session::new().with_cache_capacity(2);
        session.artifacts("p0", "x = 1;").unwrap();
        session.artifacts("p1", "x = 2;").unwrap();
        // Touch p0: under LRU it is now the *most* recently used, so the
        // next insert must evict p1 instead (FIFO would drop p0).
        session.artifacts("p0", "x = 1;").unwrap();
        session.artifacts("p2", "x = 3;").unwrap();
        let stats = session.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, Some(2));
        assert_eq!(stats.policy, "lru");
        // p0 survived its hit; p1 was evicted and recompiles as a miss.
        session.artifacts("p0", "x = 1;").unwrap();
        assert_eq!(session.cache_stats().hits, 2);
        session.artifacts("p1", "x = 2;").unwrap();
        assert_eq!(session.cache_stats().misses, 4);
    }

    #[test]
    fn byte_bounded_caches_evict_lru_but_keep_the_newest_entry() {
        // A 1-byte budget cannot hold any artifact, yet the newest entry is
        // never evicted: each insert displaces the previous one.
        let session = Session::new().with_cache_capacity_bytes(1);
        session.artifacts("p0", "x = 1;").unwrap();
        let first = session.cache_stats();
        assert_eq!((first.entries, first.evictions), (1, 0));
        assert!(first.bytes > 0);
        assert_eq!(first.capacity_bytes, Some(1));

        session.artifacts("p1", "x = 2;").unwrap();
        let second = session.cache_stats();
        assert_eq!((second.entries, second.evictions), (1, 1));
        // The byte gauge reflects only the surviving entry.
        assert!(second.bytes > 0 && second.bytes < first.bytes * 2);

        // The survivor is still a hit; the evicted program recompiles.
        session.artifacts("p1", "x = 2;").unwrap();
        session.artifacts("p0", "x = 1;").unwrap();
        let third = session.cache_stats();
        assert_eq!((third.hits, third.misses), (1, 3));
    }

    #[test]
    fn hit_path_recharge_re_runs_eviction_and_keeps_the_byte_bound() {
        // Engine lowerings attach to cached artifacts lazily, so a cache
        // *hit* can grow an entry's byte charge.  The refreshed account
        // must re-run eviction: `bytes ≤ capacity_bytes` is an invariant
        // after hits, not just after inserts.
        let src0 = "for (i = 0; i < n; i++) { a[i] = i; }";
        let src1 = "for (i = 0; i < n; i++) { b[i] = i + 1; }";
        let base0 = {
            let s = Session::new();
            s.artifacts("p0", src0).unwrap();
            s.cache_stats().bytes
        };
        let base1 = {
            let s = Session::new();
            s.artifacts("p1", src1).unwrap();
            s.cache_stats().bytes
        };
        let grown0 = {
            // Running through the threaded engine attaches its lowering to
            // the artifacts; the next hit refreshes the charge.
            let s = Session::new();
            s.run(&RunRequest::new("p0", src0).engine("threaded").scale(8))
                .unwrap();
            s.artifacts("p0", src0).unwrap();
            s.cache_stats().bytes
        };
        assert!(grown0 > base0, "lowering should grow the charge");

        // Fits both fresh entries, but not the grown p0 plus p1.
        let cap = grown0 + base1 - 1;
        let session = Session::new().with_cache_capacity_bytes(cap);
        session
            .run(&RunRequest::new("p0", src0).engine("threaded").scale(8))
            .unwrap();
        session.artifacts("p1", src1).unwrap();
        let before = session.cache_stats();
        assert_eq!((before.entries, before.evictions), (2, 0));
        assert!(before.bytes <= cap);

        // The hit on p0 refreshes its charge past the bound: p1 (the LRU
        // entry) must be evicted — never the just-hit p0.
        session.artifacts("p0", src0).unwrap();
        let after = session.cache_stats();
        assert_eq!((after.entries, after.evictions), (1, 1));
        assert!(
            after.bytes <= cap,
            "bytes {} exceeds capacity {} after a hit",
            after.bytes,
            cap
        );
        // p0 survived (hit), p1 recompiles (miss).
        session.artifacts("p0", src0).unwrap();
        session.artifacts("p1", src1).unwrap();
        let third = session.cache_stats();
        assert_eq!((third.hits, third.misses), (2, 3));
    }

    #[test]
    fn generous_byte_budget_keeps_everything() {
        let session = Session::new().with_cache_capacity_bytes(64 << 20);
        for (i, src) in ["x = 1;", "x = 2;", "x = 3;"].iter().enumerate() {
            session.artifacts(&format!("p{i}"), src).unwrap();
        }
        let stats = session.cache_stats();
        assert_eq!((stats.entries, stats.evictions), (3, 0));
        assert!(stats.bytes > 0 && stats.bytes <= 64 << 20);
    }

    #[test]
    fn serial_only_and_parallel_only_modes_run_one_leg() {
        let session = Session::new();
        let serial = session
            .run(
                &RunRequest::new("fig2", FIG2)
                    .scale(32)
                    .mode(ExecutionMode::Serial),
            )
            .unwrap();
        assert!(serial.serial.is_some() && serial.parallel.is_none());
        assert!(serial.dispatched.is_empty());
        assert!(serial.speedup().is_none());
        let parallel = session
            .run(
                &RunRequest::new("fig2", FIG2)
                    .scale(32)
                    .threads(2)
                    .mode(ExecutionMode::Parallel),
            )
            .unwrap();
        assert!(parallel.serial.is_none() && parallel.parallel.is_some());
        assert!(!parallel.dispatched.is_empty());
        assert_eq!(parallel.heap, serial.heap);
    }

    #[test]
    fn explicit_heaps_are_used_verbatim() {
        let session = Session::new();
        let heap = Heap::new()
            .with_scalar("nelt", 5)
            .with_array("mt_to_id", vec![0; 5])
            .with_array("id_to_mt", vec![0; 5]);
        let outcome = session
            .run(
                &RunRequest::new("fig2", FIG2)
                    .initial_heap(heap)
                    .validation(ValidationMode::Differential),
            )
            .unwrap();
        assert!(outcome.heaps_match());
        assert_eq!(outcome.heap.scalars["nelt"], 5);
        assert_eq!(outcome.heap.arrays["id_to_mt"].data.len(), 5);
    }

    #[test]
    fn unknown_engines_fail_with_the_registry_names() {
        let session = Session::new();
        let err = session
            .run(&RunRequest::new("p", "x = 1;").engine("jit"))
            .unwrap_err();
        assert!(matches!(err, SsError::UnknownEngine { .. }));
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn parse_errors_carry_spans_through_the_session() {
        let session = Session::new();
        let err = session
            .run(&RunRequest::new("bad", "for (i = 0 i < n; i++) {}"))
            .unwrap_err();
        assert!(matches!(err, SsError::Parse(_)));
        assert!(err.span().is_some());
        assert_eq!(err.exit_code(), 4);
        // Failed compilations are not cached.
        assert_eq!(session.cache_stats().entries, 0);
    }

    #[test]
    fn inspector_requests_redirect_the_parallel_leg() {
        let session = Session::new();
        let outcome = session
            .run(
                &RunRequest::new("hist", "for (i = 0; i < n; i++) { h[idx[i]] = i; }")
                    .scale(64)
                    .threads(2)
                    .baseline_inspector(true)
                    .validation(ValidationMode::Differential),
            )
            .unwrap();
        assert!(outcome.heaps_match());
        assert_eq!(outcome.engine, "bytecode");
        assert_eq!(outcome.parallel_engine.as_deref(), Some("ast"));
        let stats = outcome.parallel.as_ref().unwrap();
        assert!(stats.loops[&LoopId(0)].inspector_conflict_free.is_some());
    }

    #[test]
    fn run_outcome_json_has_the_stable_shape() {
        let session = Session::new();
        let outcome = session
            .run(
                &RunRequest::new("fig2", FIG2)
                    .threads(2)
                    .scale(48)
                    .validation(ValidationMode::Differential),
            )
            .unwrap();
        let j = outcome.to_json();
        for key in [
            "\"program\":\"fig2\"",
            "\"engine\":\"bytecode\"",
            "\"opt_level\":\"O1\"",
            "\"cache_hit\":false",
            "\"stages\":[{\"stage\":\"analyze\"",
            "\"verdicts\":[",
            "\"verdict\":\"parallel\"",
            "\"newly_enabled\":true",
            "\"validation\":{\"heaps_match\":true",
            "\"speedup\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn registry_json_reflects_the_live_registry() {
        let session = Session::new();
        let j = registry_json(session.registry());
        assert!(j.starts_with("{\"engines\":["), "{j}");
        for e in session.registry().iter() {
            assert!(j.contains(&format!("\"name\":\"{}\"", e.name())), "{j}");
        }
        assert!(j.contains("\"default\":true"), "{j}");
        assert!(j.contains("\"opt_levels\":[\"O0\",\"O1\"]"), "{j}");
        // Exactly one default engine.
        assert_eq!(j.matches("\"default\":true").count(), 1);
    }

    #[test]
    fn prepare_is_called_once_per_engine_per_run() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc as StdArc;

        #[derive(Debug)]
        struct CountingEngine {
            inner: crate::engine::registry::BytecodeEngine,
            prepares: StdArc<AtomicUsize>,
        }
        impl Engine for CountingEngine {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn description(&self) -> &'static str {
                "bytecode wrapper that counts prepare() calls"
            }
            fn caps(&self) -> crate::engine::EngineCaps {
                self.inner.caps()
            }
            fn prepare(&self, _artifacts: &Artifacts) -> Result<(), SsError> {
                self.prepares.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            fn run_serial(
                &self,
                a: &Artifacts,
                h: Heap,
                o: &ExecOptions,
            ) -> Result<crate::engine::ExecOutcome, SsError> {
                self.inner.run_serial(a, h, o)
            }
            fn run_parallel(
                &self,
                a: &Artifacts,
                h: Heap,
                o: &ExecOptions,
            ) -> Result<crate::engine::ExecOutcome, SsError> {
                self.inner.run_parallel(a, h, o)
            }
        }

        let prepares = StdArc::new(AtomicUsize::new(0));
        let mut session = Session::new();
        session.register_engine(Arc::new(CountingEngine {
            inner: crate::engine::registry::BytecodeEngine,
            prepares: StdArc::clone(&prepares),
        }));
        // A differential run executes the counting engine at both opt
        // levels serially — prepare still fires exactly once.
        session
            .run(
                &RunRequest::new("p", "for (i = 0; i < n; i++) { out[i] = i; }")
                    .scale(16)
                    .threads(2)
                    .engine("counting")
                    .validation(ValidationMode::Differential),
            )
            .unwrap();
        assert_eq!(prepares.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn analysis_json_reports_verdicts_without_executing() {
        let session = Session::new();
        let artifacts = session.artifacts("fig2", FIG2).unwrap();
        let j = analysis_json(&artifacts);
        for key in [
            "\"program\":\"fig2\"",
            "\"verdicts\":[",
            "\"annotated_source\":",
            "#pragma omp parallel for",
            "\"reasons\":[",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn reduction_verdicts_surface_in_the_summary() {
        let session = Session::new();
        let outcome = session
            .run(
                &RunRequest::new(
                    "sum",
                    "total = 0;\nfor (k = 0; k < n; k++) { total += a[k]; }",
                )
                .scale(64)
                .threads(2)
                .validation(ValidationMode::Differential),
            )
            .unwrap();
        assert!(outcome.heaps_match());
        let v = &outcome.verdicts[0];
        assert_eq!(v.verdict, VerdictKind::Reduction);
        assert_eq!(v.reductions, vec!["+:total".to_string()]);
        assert!(v.dispatched);
        assert!(outcome.to_json().contains("\"reductions\":[\"+:total\"]"));
    }
}
