//! Minimal JSON emission (the vendored `serde` is a no-op stand-in, so
//! machine-readable output is rendered by hand here).
//!
//! Only what the stable output schemas of [`crate::session`] need: string
//! escaping per RFC 8259 and finite-number formatting.

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub(crate) fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A JSON number for `v`, or `null` when it is not finite (JSON has no
/// NaN/Infinity).
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 (shortest representation) and always
        // parses as a JSON number.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// `[a,b,c]` from already-rendered JSON values.
pub(crate) fn array(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

/// An array of string literals.
pub(crate) fn string_array<'a>(items: impl IntoIterator<Item = &'a str>) -> String {
    array(items.into_iter().map(string))
}

/// `{"k":v,…}` from already-rendered JSON values.
pub(crate) fn object<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> String {
    let body: Vec<String> = fields
        .into_iter()
        .map(|(k, v)| format!("{}:{v}", string(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_newlines_and_control_chars() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hi"), "\"hi\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_becomes_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn composites_render() {
        assert_eq!(
            object([("a", "1".to_string()), ("b", string_array(["x"]))]),
            r#"{"a":1,"b":["x"]}"#
        );
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
    }
}
