//! Minimal JSON emission (the vendored `serde` is a no-op stand-in, so
//! machine-readable output is rendered by hand here).
//!
//! This is the **single serializer path** for every machine-readable
//! surface of the system: `sspar run --format json`, the stable schemas
//! of [`crate::session`], and the `sspard` daemon's wire responses all
//! render through these helpers, so the formats cannot drift apart.
//! Strings are escaped per RFC 8259 and non-finite numbers become `null`.

use crate::heap::Heap;

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string literal.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A JSON number for `v`, or `null` when it is not finite (JSON has no
/// NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` round-trips f64 (shortest representation) and always
        // parses as a JSON number.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// `[a,b,c]` from already-rendered JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

/// An array of string literals.
pub fn string_array<'a>(items: impl IntoIterator<Item = &'a str>) -> String {
    array(items.into_iter().map(string))
}

/// `{"k":v,…}` from already-rendered JSON values.
pub fn object<'a>(fields: impl IntoIterator<Item = (&'a str, String)>) -> String {
    let body: Vec<String> = fields
        .into_iter()
        .map(|(k, v)| format!("{}:{v}", string(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// The full contents of a [`Heap`] as one JSON object:
/// `{"scalars":{name:value,…},"arrays":{name:{"dims":[…],"data":[…]},…}}`.
///
/// `BTreeMap` iteration makes the rendering deterministic, so two
/// bit-identical heaps always serialize to byte-identical JSON — the
/// property the daemon soak test and cross-engine validation rely on.
pub fn heap_json(heap: &Heap) -> String {
    let scalars = object(
        heap.scalars
            .iter()
            .map(|(name, value)| (name.as_str(), value.to_string())),
    );
    let arrays = object(heap.arrays.iter().map(|(name, arr)| {
        (
            name.as_str(),
            object([
                ("dims", array(arr.dims.iter().map(|d| d.to_string()))),
                ("data", array(arr.data.iter().map(|v| v.to_string()))),
            ]),
        )
    }));
    object([("scalars", scalars), ("arrays", arrays)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_newlines_and_control_chars() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(string("hi"), "\"hi\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_becomes_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0.0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn heap_renders_scalars_and_arrays_deterministically() {
        let heap = Heap::new().with_scalar("n", 3).with_array("a", vec![7, -1]);
        assert_eq!(
            heap_json(&heap),
            r#"{"scalars":{"n":3},"arrays":{"a":{"dims":[2],"data":[7,-1]}}}"#
        );
    }

    #[test]
    fn composites_render() {
        assert_eq!(
            object([("a", "1".to_string()), ("b", string_array(["x"]))]),
            r#"{"a":1,"b":["x"]}"#
        );
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
    }
}
