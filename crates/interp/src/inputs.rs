//! Input synthesis: turn *any* parsed mini-C program into a concrete,
//! reproducible initial [`Heap`] so it can actually be executed.
//!
//! The programs of the paper's figures reference symbolic inputs — size
//! scalars like `nelt` or `ROWLEN`, and data arrays like the dense matrix
//! `a[i][j]` — and the array extents they need depend on the program's own
//! behavior (the number of nonzeros determines how long `value` must be).
//! Rather than asking the caller to size everything by hand, synthesis runs
//! a **discovery pass**: the program is executed once, serially, against a
//! growable recording store in which
//!
//! * every free scalar ([`ss_ir::free_scalars`]) is bound to the requested
//!   `scale`,
//! * a read of a never-written array element yields a deterministic
//!   pseudo-random value `hash(seed, array, indices) % scale`,
//! * every access records the maximal index per dimension.
//!
//! The discovered extents (+1) become the allocation sizes, and the initial
//! heap fills **every** array with the same hash values the discovery read —
//! so the real serial and parallel runs observe exactly the accesses the
//! discovery did, with no out-of-bounds surprises and no second source of
//! randomness.

use crate::engine::serial::{exec_stmts, ExecEnv, NoDispatch};
use crate::engine::store::Store;
use crate::engine::{ExecError, ExecOptions, ExecStats};
use crate::heap::{ArrayVal, Heap};
use ss_ir::{free_scalars, Program};
use std::collections::HashMap;

/// Parameters of input synthesis.
#[derive(Debug, Clone, Copy)]
pub struct InputSpec {
    /// Value given to every free scalar (loop bounds etc.), and the modulus
    /// of generated array data — so synthesized index values always lie in
    /// `0 .. scale`.
    pub scale: i64,
    /// Seed decorrelating the generated array data across runs.
    pub seed: u64,
}

impl Default for InputSpec {
    fn default() -> InputSpec {
        InputSpec { scale: 64, seed: 1 }
    }
}

/// The deterministic "initial memory" function: what array element
/// `name[indices]` contains before the program writes it.
pub fn input_value(seed: u64, name: &str, indices: &[i64], scale: i64) -> i64 {
    let mut h: u64 = seed ^ 0x9e37_79b9_7f4a_7c15;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &i in indices {
        h ^= i as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finalizer for avalanche.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h % scale.max(1) as u64) as i64
}

#[derive(Default)]
struct DiscoveredArray {
    /// Max index seen per dimension (rank fixed by first access).
    max_index: Vec<i64>,
    /// Elements written so far during discovery, with current values.
    written: HashMap<Vec<i64>, i64>,
    /// Declared extents (for arrays introduced by `int a[n];`), which also
    /// fix the allocation even if the program touches less.  Declared arrays
    /// are zero-initialized — reads of unwritten elements must yield 0, like
    /// the real engines' `declare_array`, not synthesized input data.
    declared: Option<Vec<usize>>,
}

struct DiscoveryStore {
    scalars: HashMap<String, i64>,
    arrays: HashMap<String, DiscoveredArray>,
    spec: InputSpec,
}

impl DiscoveryStore {
    fn touch(&mut self, array: &str, indices: &[i64]) -> Result<&mut DiscoveredArray, ExecError> {
        let a = self.arrays.entry(array.to_string()).or_default();
        if a.max_index.is_empty() && a.written.is_empty() && a.declared.is_none() {
            a.max_index = vec![-1; indices.len()];
        }
        if indices.len() != a.max_index.len() {
            return Err(ExecError::ArityMismatch {
                array: array.to_string(),
                expected: a.max_index.len(),
                got: indices.len(),
            });
        }
        for (&idx, max) in indices.iter().zip(&mut a.max_index) {
            if idx < 0 {
                return Err(ExecError::OutOfBounds {
                    array: array.to_string(),
                    indices: indices.to_vec(),
                    dims: vec![],
                });
            }
            if idx > *max {
                *max = idx;
            }
        }
        Ok(a)
    }
}

impl Store for DiscoveryStore {
    fn scalar(&mut self, name: &str) -> i64 {
        self.scalars.get(name).copied().unwrap_or(0)
    }

    fn set_scalar(&mut self, name: &str, v: i64) {
        self.scalars.insert(name.to_string(), v);
    }

    fn read_elem(&mut self, array: &str, indices: &[i64]) -> Result<i64, ExecError> {
        let spec = self.spec;
        let a = self.touch(array, indices)?;
        Ok(match a.written.get(indices) {
            Some(&v) => v,
            None if a.declared.is_some() => 0,
            None => input_value(spec.seed, array, indices, spec.scale),
        })
    }

    fn write_elem(&mut self, array: &str, indices: &[i64], v: i64) -> Result<(), ExecError> {
        let a = self.touch(array, indices)?;
        a.written.insert(indices.to_vec(), v);
        Ok(())
    }

    fn declare_array(&mut self, name: &str, dims: Vec<usize>) -> Result<(), ExecError> {
        let a = self.arrays.entry(name.to_string()).or_default();
        a.max_index = dims.iter().map(|&d| d as i64 - 1).collect();
        a.declared = Some(dims);
        a.written.clear();
        Ok(())
    }
}

/// Runs the discovery pass and builds the initial heap for `program`.
///
/// The returned heap is what every engine should start from; feeding
/// clones of it to each [`Engine`](crate::Engine) run guarantees all
/// executions observe identical initial memory.
pub fn synthesize_inputs(program: &Program, spec: &InputSpec) -> Result<Heap, ExecError> {
    let mut store = DiscoveryStore {
        scalars: free_scalars(program)
            .into_iter()
            .map(|s| (s, spec.scale))
            .collect(),
        arrays: HashMap::new(),
        spec: *spec,
    };
    let mut stats = ExecStats::default();
    let mut env = ExecEnv {
        stats: &mut stats,
        timing: false,
        while_cap: ExecOptions::default().while_cap,
    };
    exec_stmts(&mut store, &program.body, &mut NoDispatch, &mut env)?;

    let mut heap = Heap::new();
    for name in free_scalars(program) {
        heap.scalars.insert(name, spec.scale);
    }
    for (name, d) in &store.arrays {
        let dims: Vec<usize> = match &d.declared {
            Some(dims) => dims.clone(),
            None => d
                .max_index
                .iter()
                .map(|&m| (m + 1).max(0) as usize)
                .collect(),
        };
        let mut a = ArrayVal::zeros(dims.clone());
        // Declared arrays start zeroed (their `Decl` re-zeroes them anyway);
        // everything else starts as synthesized input data.
        if !a.data.is_empty() && d.declared.is_none() {
            fill_with_input_values(&mut a, name, &dims, spec);
        }
        heap.arrays.insert(name.clone(), a);
    }
    Ok(heap)
}

fn fill_with_input_values(a: &mut ArrayVal, name: &str, dims: &[usize], spec: &InputSpec) {
    let mut indices = vec![0i64; dims.len()];
    for flat in 0..a.data.len() {
        a.data[flat] = input_value(spec.seed, name, &indices, spec.scale);
        // Row-major increment.
        for d in (0..dims.len()).rev() {
            indices[d] += 1;
            if (indices[d] as usize) < dims[d] {
                break;
            }
            indices[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineRegistry, ExecOutcome};
    use ss_ir::parse_program;

    /// Runs `p` serially on the default registry engine (off a one-shot
    /// pipeline invocation).
    fn run_serial(p: &Program, heap: Heap) -> Result<ExecOutcome, crate::SsError> {
        let artifacts = ss_parallelizer::Artifacts::compile(p);
        EngineRegistry::builtin().default_engine().run_serial(
            &artifacts,
            heap,
            &ExecOptions::default(),
        )
    }

    #[test]
    fn discovery_sizes_arrays_from_observed_extents() {
        let p = parse_program(
            "fig2",
            r#"
            for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#,
        )
        .unwrap();
        let spec = InputSpec { scale: 32, seed: 7 };
        let heap = synthesize_inputs(&p, &spec).unwrap();
        assert_eq!(heap.scalars["nelt"], 32);
        assert_eq!(heap.arrays["mt_to_id"].dims, vec![32]);
        assert_eq!(heap.arrays["id_to_mt"].dims, vec![32]);
        // The synthesized heap actually executes.
        let out = run_serial(&p, heap).unwrap();
        // mt_to_id was filled with the identity, so id_to_mt inverts it.
        assert_eq!(
            out.heap.arrays["id_to_mt"].data,
            (0..32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn data_dependent_extents_are_discovered() {
        // The length of `value` depends on how many generated a[i][j] are
        // nonzero — only discoverable by running the filling code.
        let p = parse_program(
            "fig9ish",
            r#"
            index = 0;
            for (i = 0; i < ROWLEN; i++) {
                for (j = 0; j < COLUMNLEN; j++) {
                    if (a[i][j] != 0) {
                        value[index] = a[i][j];
                        index++;
                    }
                }
            }
        "#,
        )
        .unwrap();
        let spec = InputSpec { scale: 16, seed: 3 };
        let heap = synthesize_inputs(&p, &spec).unwrap();
        assert_eq!(heap.arrays["a"].dims, vec![16, 16]);
        let nonzeros = heap.arrays["a"].data.iter().filter(|&&v| v != 0).count();
        assert!(nonzeros > 0);
        assert_eq!(heap.arrays["value"].dims, vec![nonzeros]);
        // Rerunning on the materialized heap stays in bounds and reproduces
        // the discovered fill count.
        let out = run_serial(&p, heap).unwrap();
        assert_eq!(out.heap.scalars["index"], nonzeros as i64);
    }

    #[test]
    fn generated_values_are_deterministic_and_bounded() {
        for idx in [vec![0i64], vec![5], vec![3, 4]] {
            let v1 = input_value(9, "arr", &idx, 50);
            let v2 = input_value(9, "arr", &idx, 50);
            assert_eq!(v1, v2);
            assert!((0..50).contains(&v1));
            assert_ne!(
                input_value(9, "arr", &idx, 1 << 62),
                input_value(10, "arr", &idx, 1 << 62),
                "seeds must decorrelate"
            );
        }
        assert_eq!(input_value(1, "x", &[0], 1), 0);
    }

    #[test]
    fn declared_arrays_use_their_declared_extents() {
        let p = parse_program(
            "t",
            r#"
            int buf[n];
            for (i = 0; i < 3; i++) { buf[i] = i; }
        "#,
        )
        .unwrap();
        let heap = synthesize_inputs(&p, &InputSpec { scale: 8, seed: 1 }).unwrap();
        assert_eq!(heap.arrays["buf"].dims, vec![8]);
    }

    #[test]
    fn negative_subscripts_fail_discovery() {
        let p = parse_program("t", "x = a[0 - 1];").unwrap();
        assert!(matches!(
            synthesize_inputs(&p, &InputSpec::default()),
            Err(ExecError::OutOfBounds { .. })
        ));
    }
}
