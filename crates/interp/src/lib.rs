//! # ss-interp — executing analyzed programs, serially and in parallel
//!
//! The paper's central claim is that compile-time analysis of the code that
//! fills index arrays licenses parallel execution with **zero** runtime
//! machinery.  The rest of this workspace *analyzes* mini-C programs; this
//! crate *runs* them, closing the analyze → prove → execute → validate loop
//! for arbitrary inputs:
//!
//! * [`heap`] — the typed heap all engines execute against (integer
//!   scalars, dense row-major arrays);
//! * [`engine`] — the execution engines: a **bytecode** engine (default)
//!   that executes the flat register-machine stream of `ss_ir::bytecode`
//!   (parallel loops run on a persistent thread team), a **compiled**
//!   engine executing slot-resolved op sequences over dense frames, and
//!   the **tree-walking** reference engine behind
//!   [`EngineChoice::Ast`](crate::EngineChoice).  All consume the
//!   [`ParallelizationReport`](ss_parallelizer::ParallelizationReport) and
//!   dispatch every proven-parallel loop onto `ss_runtime` worker threads
//!   (static or chunk-stealing dynamic scheduling); the bytecode and
//!   compiled engines additionally dispatch reduction loops (per-thread
//!   partials merged by the combiner) and loops with body-local array
//!   declarations (private per-iteration storage).  An optional
//!   runtime-inspector baseline runs on the loops the analysis left
//!   serial;
//! * [`inputs`] — reproducible input synthesis for any program via a
//!   discovery pass (sizes arrays by observation, fills them with
//!   deterministic pseudo-random data);
//! * [`validate`] — the differential harness asserting ast ≡ compiled ≡
//!   bytecode ≡ parallel final heaps, which turns every compile-time
//!   verdict — and both compilation passes — into a tested claim.  The
//!   generative counterpart is `tests/engine_fuzz.rs` at the workspace
//!   root, which asserts the same over randomly generated programs.
//!
//! ```
//! use ss_interp::{validate_source, ExecOptions, InputSpec};
//!
//! let outcome = validate_source(
//!     "fig2",
//!     r#"
//!         for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
//!         for (miel = 0; miel < nelt; miel++) {
//!             iel = mt_to_id[miel];
//!             id_to_mt[iel] = miel;
//!         }
//!     "#,
//!     &InputSpec { scale: 256, seed: 1 },
//!     &ExecOptions { threads: 4, ..ExecOptions::default() },
//! )
//! .unwrap();
//! assert!(outcome.heaps_match);
//! assert!(!outcome.dispatched.is_empty());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod heap;
pub mod inputs;
pub mod validate;

pub use engine::{
    run_parallel, run_parallel_artifacts, run_serial, run_serial_artifacts, run_serial_with,
    EngineChoice, ExecError, ExecMode, ExecOptions, ExecOutcome, ExecStats, LoopStats,
    ScheduleChoice,
};
pub use heap::{ArrayVal, Heap};
pub use inputs::{input_value, synthesize_inputs, InputSpec};
pub use ss_ir::opt::OptLevel;
pub use validate::{validate, validate_source, ValidationError, ValidationOutcome};
