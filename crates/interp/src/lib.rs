//! # ss-interp — executing analyzed programs, serially and in parallel
//!
//! The paper's central claim is that compile-time analysis of the code that
//! fills index arrays licenses parallel execution with **zero** runtime
//! machinery.  The rest of this workspace *analyzes* mini-C programs; this
//! crate *runs* them, closing the analyze → prove → execute → validate loop
//! for arbitrary inputs:
//!
//! * [`heap`] — the typed heap all engines execute against (integer
//!   scalars, dense row-major arrays);
//! * [`engine`] — the execution engines: a **compiled** engine (default)
//!   that executes slot-resolved op sequences over dense frames, and the
//!   **tree-walking** reference engine behind
//!   [`EngineChoice::Ast`](crate::EngineChoice).  Both consume the
//!   [`ParallelizationReport`](ss_parallelizer::ParallelizationReport) and
//!   dispatch every proven-parallel loop onto `ss_runtime` worker threads
//!   (static or chunk-stealing dynamic scheduling); the compiled engine
//!   additionally dispatches reduction loops (per-thread partials merged by
//!   the combiner) and loops with body-local array declarations (private
//!   per-iteration storage).  An optional runtime-inspector baseline runs
//!   on the loops the analysis left serial;
//! * [`inputs`] — reproducible input synthesis for any program via a
//!   discovery pass (sizes arrays by observation, fills them with
//!   deterministic pseudo-random data);
//! * [`validate`] — the differential harness asserting serial-ast ≡
//!   serial-compiled ≡ parallel final heaps, which turns every compile-time
//!   verdict — and the compilation pass itself — into a tested claim.
//!
//! ```
//! use ss_interp::{validate_source, ExecOptions, InputSpec};
//!
//! let outcome = validate_source(
//!     "fig2",
//!     r#"
//!         for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
//!         for (miel = 0; miel < nelt; miel++) {
//!             iel = mt_to_id[miel];
//!             id_to_mt[iel] = miel;
//!         }
//!     "#,
//!     &InputSpec { scale: 256, seed: 1 },
//!     &ExecOptions { threads: 4, ..ExecOptions::default() },
//! )
//! .unwrap();
//! assert!(outcome.heaps_match);
//! assert!(!outcome.dispatched.is_empty());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod heap;
pub mod inputs;
pub mod validate;

pub use engine::{
    run_parallel, run_serial, run_serial_with, EngineChoice, ExecError, ExecMode, ExecOptions,
    ExecOutcome, ExecStats, LoopStats, ScheduleChoice,
};
pub use heap::{ArrayVal, Heap};
pub use inputs::{input_value, synthesize_inputs, InputSpec};
pub use validate::{validate, validate_source, ValidationError, ValidationOutcome};
