//! # ss-interp — executing analyzed programs, serially and in parallel
//!
//! The paper's central claim is that compile-time analysis of the code that
//! fills index arrays licenses parallel execution with **zero** runtime
//! machinery.  The rest of this workspace *analyzes* mini-C programs; this
//! crate *runs* them — and exposes the stable, embeddable API every
//! consumer (the `sspar` CLI, the fuzz harness, the benches, embedders)
//! drives:
//!
//! * [`session`] — [`Session`], the long-lived facade: a content-addressed
//!   artifact cache (compile once per program per process, with hit/miss
//!   counters), builder-style [`RunRequest`]s, structured [`RunOutcome`]s
//!   (final heap, stage timings, verdict summary, stable JSON), and the
//!   differential validation mode asserting every engine produces
//!   bit-identical final heaps;
//! * [`engine`] — the [`Engine`] trait and [`EngineRegistry`]: execution
//!   strategies as pluggable trait objects with capability flags.  Built
//!   in: the **bytecode** engine (default) executing the flat
//!   register-machine stream of `ss_ir::bytecode` on a persistent thread
//!   team, the **compiled** engine executing slot-resolved op sequences
//!   over dense frames, and the **tree-walking** reference engine.  All
//!   consume precompiled [`Artifacts`](ss_parallelizer::Artifacts) and
//!   dispatch every proven-parallel loop onto `ss_runtime` worker threads;
//! * [`error`] — [`SsError`], the unified error spanning parse, analysis,
//!   compilation, execution and validation, with stable
//!   [`exit_code`](SsError::exit_code)s;
//! * [`heap`] — the typed heap all engines execute against (integer
//!   scalars, dense row-major arrays);
//! * [`inputs`] — reproducible input synthesis for any program via a
//!   discovery pass (sizes arrays by observation, fills them with
//!   deterministic pseudo-random data);
//! * [`tuner`] — the kease-style auto-tuner: measured search over the
//!   policy space (engine × opt level × schedule × chunk × threads),
//!   pruned by the compile-time loop facts, with winners persisted per
//!   `(program hash, input-shape signature)` in the session artifact
//!   cache and auto-applied by [`RunPolicy::Tuned`].
//!
//! The generative counterpart of the differential mode is
//! `tests/engine_fuzz.rs` at the workspace root, which asserts the same
//! cross-engine agreement over randomly generated programs.
//!
//! ```
//! use ss_interp::{RunRequest, Session, ValidationMode};
//!
//! let session = Session::new();
//! let outcome = session
//!     .run(
//!         &RunRequest::new(
//!             "fig2",
//!             r#"
//!                 for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
//!                 for (miel = 0; miel < nelt; miel++) {
//!                     iel = mt_to_id[miel];
//!                     id_to_mt[iel] = miel;
//!                 }
//!             "#,
//!         )
//!         .threads(4)
//!         .validation(ValidationMode::Differential),
//!     )
//!     .unwrap();
//! assert!(outcome.heaps_match());
//! assert!(!outcome.dispatched.is_empty());
//! assert_eq!(session.cache_stats().misses, 1);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod heap;
pub mod inputs;
pub mod json;
pub mod session;
pub mod tuner;

pub use engine::bytecode::{reset_pair_counts, set_pair_profiling, top_instruction_pairs};
pub use engine::{
    Engine, EngineCaps, EngineRegistry, ExecError, ExecMode, ExecOptions, ExecOutcome, ExecStats,
    LoopStats, ScheduleChoice,
};
pub use error::SsError;
pub use heap::{ArrayVal, Heap};
pub use inputs::{input_value, synthesize_inputs, InputSpec};
pub use json::heap_json;
pub use session::{
    analysis_json, engine_label, registry_json, verdict_summary, CacheStats, ExecutionMode,
    InputSource, LoopVerdictSummary, RunOutcome, RunPolicy, RunRequest, Session, TuneOutcome,
    TunerStats, ValidationMode, ValidationSummary,
};
pub use ss_ir::opt::OptLevel;
pub use tuner::{tune_search_count, PolicyPoint, TunedPolicy, TunerConfig};
