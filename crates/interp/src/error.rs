//! [`SsError`] — the one error type of the embeddable API.
//!
//! Every failure a caller can observe through [`crate::Session`] (and
//! through the `sspar` CLI built on it) is a variant here: command-line
//! usage, I/O, parse/compile, unknown names, capability mismatches,
//! runtime faults and differential-validation divergence.  Each variant
//! maps to a **stable** process exit code via [`SsError::exit_code`], so
//! scripts and CI can distinguish failure classes without scraping stderr;
//! parse errors keep their source span ([`SsError::span`]).

use crate::engine::ExecError;
use ss_ir::IrError;

/// The unified error of the `sspar` stack: parse, analysis, compilation,
/// execution and validation failures behind one type with stable exit
/// codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsError {
    /// The command line did not form a valid invocation; the payload is
    /// the usage text to print.  Exit code 2.
    Usage(String),
    /// A file could not be read.  Exit code 3.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying OS error text.
        message: String,
    },
    /// The source did not lex/parse (spans available via
    /// [`SsError::span`]).  Exit code 4.
    Parse(IrError),
    /// No catalogue kernel of the requested name.  Exit code 5.
    UnknownKernel(String),
    /// No registered engine of the requested name.  Exit code 5.
    UnknownEngine {
        /// The name that failed to resolve.
        name: String,
        /// Every name the registry does know, for the error message.
        available: Vec<String>,
    },
    /// An engine's [`prepare`](crate::Engine::prepare) refused the
    /// program (artifact store missing something the engine needs, or a
    /// construct outside its capabilities).  Exit code 6.
    Unsupported {
        /// The refusing engine.
        engine: String,
        /// Why it refused.
        reason: String,
    },
    /// The program failed while executing (out of bounds, division by
    /// zero, runaway loop, …).  Exit code 7.
    Runtime(ExecError),
    /// Differential validation found diverging final heaps.  Exit code 8.
    Validation {
        /// The program whose heaps diverged.
        program: String,
        /// Human-readable differences, each prefixed with the comparison
        /// that produced it.
        mismatches: Vec<String>,
    },
}

impl SsError {
    /// The stable process exit code of this failure class:
    ///
    /// | code | class |
    /// |------|-------|
    /// | 0    | success (no `SsError`) |
    /// | 2    | usage |
    /// | 3    | I/O |
    /// | 4    | parse / compile |
    /// | 5    | unknown kernel or engine name |
    /// | 6    | capability mismatch (engine refused the program) |
    /// | 7    | runtime fault |
    /// | 8    | validation divergence |
    ///
    /// These values are part of the CLI contract and asserted by the CLI
    /// test suite; never renumber an existing class.
    pub fn exit_code(&self) -> i32 {
        match self {
            SsError::Usage(_) => 2,
            SsError::Io { .. } => 3,
            SsError::Parse(_) => 4,
            SsError::UnknownKernel(_) | SsError::UnknownEngine { .. } => 5,
            SsError::Unsupported { .. } => 6,
            SsError::Runtime(_) => 7,
            SsError::Validation { .. } => 8,
        }
    }

    /// The 1-based `(line, column)` source position, for errors anchored
    /// to one (lex/parse errors).
    pub fn span(&self) -> Option<(usize, usize)> {
        match self {
            SsError::Parse(e) => e.position(),
            _ => None,
        }
    }
}

impl std::fmt::Display for SsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsError::Usage(u) => write!(f, "{u}"),
            SsError::Io { path, message } => write!(f, "error: cannot read {path}: {message}"),
            SsError::Parse(e) => write!(f, "{e}"),
            SsError::UnknownKernel(k) => {
                write!(
                    f,
                    "error: no catalogue kernel named '{k}' (try `sspar kernels`)"
                )
            }
            SsError::UnknownEngine { name, available } => {
                write!(
                    f,
                    "error: no engine named '{name}' (registered: {})",
                    available.join(", ")
                )
            }
            SsError::Unsupported { engine, reason } => {
                write!(
                    f,
                    "error: engine '{engine}' cannot run this program: {reason}"
                )
            }
            SsError::Runtime(e) => write!(f, "execution error: {e}"),
            SsError::Validation {
                program,
                mismatches,
            } => {
                write!(
                    f,
                    "validation FAILED: {program}: final heaps diverge:\n  {}",
                    mismatches.join("\n  ")
                )
            }
        }
    }
}

impl std::error::Error for SsError {}

impl From<IrError> for SsError {
    fn from(e: IrError) -> SsError {
        SsError::Parse(e)
    }
}

impl From<ExecError> for SsError {
    fn from(e: ExecError) -> SsError {
        SsError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_and_distinct_per_class() {
        let errors = [
            (SsError::Usage("u".into()), 2),
            (
                SsError::Io {
                    path: "x".into(),
                    message: "gone".into(),
                },
                3,
            ),
            (SsError::Parse(IrError::parse(1, 2, "bad".into())), 4),
            (SsError::UnknownKernel("k".into()), 5),
            (
                SsError::UnknownEngine {
                    name: "jit".into(),
                    available: vec!["bytecode".into()],
                },
                5,
            ),
            (
                SsError::Unsupported {
                    engine: "x".into(),
                    reason: "y".into(),
                },
                6,
            ),
            (SsError::Runtime(ExecError::DivisionByZero), 7),
            (
                SsError::Validation {
                    program: "p".into(),
                    mismatches: vec!["m".into()],
                },
                8,
            ),
        ];
        for (e, code) in errors {
            assert_eq!(e.exit_code(), code, "{e}");
        }
    }

    #[test]
    fn parse_errors_carry_their_span() {
        let e = SsError::from(IrError::parse(7, 3, "expected ';'".into()));
        assert_eq!(e.span(), Some((7, 3)));
        assert_eq!(SsError::Runtime(ExecError::DivisionByZero).span(), None);
    }

    #[test]
    fn display_names_the_failure_class() {
        assert!(SsError::UnknownEngine {
            name: "jit".into(),
            available: vec!["bytecode".into(), "ast".into()],
        }
        .to_string()
        .contains("bytecode, ast"));
        assert!(SsError::Runtime(ExecError::DivisionByZero)
            .to_string()
            .contains("division by zero"));
    }
}
