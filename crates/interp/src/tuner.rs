//! The auto-tuner (`ss_tuner`): kease-style measured search over the
//! execution-policy space, with winners persisted on the compiled
//! artifacts.
//!
//! The engine ladder gives every kernel a real policy space — engine
//! {bytecode, threaded, wavefront} × opt level {O0, O1} × schedule
//! {static, dynamic} × dynamic chunk size {1, 4, 16, 64} × thread count —
//! and the right point depends on the kernel *and* its input shape (a
//! skewed CSR matrix wants dynamic scheduling; a pure recurrence wants to
//! stay serial).  Instead of hand-picking, [`search`] measures: every
//! candidate runs `warmup` untimed repetitions followed by `repeats`
//! timed ones, and the candidate with the smallest median wall-clock
//! wins.  The default policy (bytecode @ O1, auto schedule) is always
//! candidate #0, so the winner's median is ≤ the default's **by
//! construction** on the measuring host.
//!
//! The search is deterministic: candidates are enumerated in a fixed
//! order, shuffled only by the explicit [`TunerConfig::seed`] (a stable
//! hash-ranked permutation, so two searches with one seed measure the
//! same candidates in the same order — the property the determinism
//! tests pin).  It is also *pruned by the compile-time facts* already on
//! the artifacts, so no time is burned on legs the analysis can reject:
//!
//! * kernels whose loops carry no skew fact and no wavefront fact keep
//!   every leg; **skewed** kernels skip the static-only legs (dynamic
//!   scheduling dominates on skewed iteration spaces);
//! * kernels with **no wavefront-schedulable loop** skip the wavefront
//!   engine entirely (its serial path *is* the bytecode engine);
//! * kernels with **no dispatchable loop at all** (nothing proven
//!   parallel, nothing wavefront-schedulable) skip every multi-thread
//!   leg.
//!
//! The winning [`TunedPolicy`] is persisted in the Session artifact
//! cache: it lives in an [`EngineArtifact`] extension slot on the
//! [`Artifacts`] (slot `("tuner", 0)`), keyed inside the slot by the
//! [`input_signature`] of the initial heap — so the full persistence key
//! is `(program content hash, input-shape signature)`, the policy rides
//! the session's LRU order, and its footprint is charged to the byte
//! bound through [`EngineArtifact::approx_bytes`] like any other engine
//! lowering.  [`Session::run`](crate::Session::run) with
//! [`RunPolicy::Tuned`](crate::RunPolicy::Tuned) applies a cached policy
//! with **zero re-search** (counter-asserted by [`tune_search_count`]).

use crate::engine::{EngineRegistry, ExecOptions, ScheduleChoice};
use crate::error::SsError;
use crate::heap::Heap;
use ss_ir::bytecode::{BcFor, Instr};
use ss_ir::opt::OptLevel;
use ss_parallelizer::{Artifacts, EngineArtifact};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The engines the tuner searches over, in enumeration order.  The
/// `compiled` and `ast` tiers are differential references, never
/// performance candidates; the wavefront leg is pruned per-kernel when
/// the artifacts carry no wavefront fact.
pub const TUNED_ENGINES: [&str; 3] = ["bytecode", "threaded", "wavefront"];

/// The chunk sizes the dynamic-schedule legs sweep.
pub const CHUNK_SIZES: [usize; 4] = [1, 4, 16, 64];

static TUNE_SEARCHES: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`search`] invocations (the tuner analogue of
/// `ss_ir::bytecode::bytecode_compilation_count`): a tuned-policy cache
/// hit applies the persisted winner without advancing this counter —
/// the zero-re-search invariant the cache tests assert.
pub fn tune_search_count() -> u64 {
    TUNE_SEARCHES.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Policy points and tuned winners.
// ---------------------------------------------------------------------------

/// One point of the policy space: everything a run needs to reproduce a
/// trial — engine, opt level, schedule (with the dynamic chunk size) and
/// thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyPoint {
    /// Engine name, resolved against the session registry.
    pub engine: String,
    /// Bytecode stream the engine executes.
    pub opt_level: OptLevel,
    /// Scheduling of dispatched loops.
    pub schedule: ScheduleChoice,
    /// Fixed dynamic chunk size (`None` = auto-derived; ignored by static
    /// schedules).
    pub chunk: Option<usize>,
    /// Worker threads; `1` means the serial path.
    pub threads: usize,
}

impl PolicyPoint {
    /// The default policy every consumer gets without tuning: the
    /// registry-default bytecode engine at O1, auto schedule, `threads`
    /// workers.  Always measured as candidate #0, so a tuned winner can
    /// never be slower than it on the measuring host.
    pub fn default_point(threads: usize) -> PolicyPoint {
        PolicyPoint {
            engine: "bytecode".to_string(),
            opt_level: OptLevel::O1,
            schedule: ScheduleChoice::Auto,
            chunk: None,
            threads,
        }
    }

    /// Stable human/machine label: `bytecode@O1 serial`,
    /// `threaded@O0 x4 static`, `wavefront@O1 x2 dynamic/16`.
    pub fn label(&self) -> String {
        let sched = match (self.schedule, self.chunk) {
            (ScheduleChoice::Auto, _) => "auto".to_string(),
            (ScheduleChoice::Static, _) => "static".to_string(),
            (ScheduleChoice::Dynamic, None) => "dynamic".to_string(),
            (ScheduleChoice::Dynamic, Some(c)) => format!("dynamic/{c}"),
        };
        if self.threads <= 1 {
            format!("{}@{} serial", self.engine, self.opt_level)
        } else {
            format!(
                "{}@{} x{} {}",
                self.engine, self.opt_level, self.threads, sched
            )
        }
    }

    /// The engine options this point selects, layered over `base` (which
    /// keeps the non-tuned knobs: iteration cap, team group, trip
    /// threshold, inspector flag).
    pub fn apply(&self, base: ExecOptions) -> ExecOptions {
        ExecOptions {
            threads: self.threads,
            schedule: self.schedule,
            chunk: self.chunk,
            opt_level: self.opt_level,
            ..base
        }
    }
}

/// One measured trial of the search table.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The candidate measured.
    pub point: PolicyPoint,
    /// Median wall-clock seconds over [`TunerConfig::repeats`] timed runs.
    pub median_seconds: f64,
}

/// The search result: the winning point, the full measured table and what
/// the pruner skipped.  Persisted (behind an `Arc`) in the artifact-cache
/// extension slot; [`approx_bytes`](Self::approx_bytes) is its charge
/// against the session byte bound.
#[derive(Debug, Clone)]
pub struct TunedPolicy {
    /// The winning policy point (smallest measured median; earliest in
    /// trial order on ties).
    pub point: PolicyPoint,
    /// The winner's median wall-clock seconds.
    pub median_seconds: f64,
    /// The default policy's median on the same host — the before/after
    /// baseline (winner ≤ default always holds: the default is measured
    /// as candidate #0).
    pub default_median_seconds: f64,
    /// Every measured trial, in measurement order (the search table).
    pub trials: Vec<Trial>,
    /// What the fact-based pruner (and the trial budget) skipped.
    pub pruned: Vec<String>,
}

impl TunedPolicy {
    /// Winner speedup over the default policy (≥ 1.0 up to timer noise).
    pub fn speedup_vs_default(&self) -> f64 {
        self.default_median_seconds / self.median_seconds.max(1e-12)
    }

    /// Approximate in-memory footprint (same contract as
    /// [`Artifacts::approx_bytes`]): monotone in table size, not exact.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .trials
                .iter()
                .map(|t| std::mem::size_of::<Trial>() + t.point.engine.len())
                .sum::<usize>()
            + self.pruned.iter().map(|p| 24 + p.len()).sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Persistence: the tuned-policy cache as an engine artifact.
// ---------------------------------------------------------------------------

/// Tuned policies cached on the artifacts, keyed by input-shape
/// signature.  The enclosing Session cache entry is keyed by the program
/// content hash, so the full persistence key is
/// `(program hash, input-shape signature)`; eviction of the artifacts
/// evicts the policies with them, and the footprint is charged through
/// [`EngineArtifact::approx_bytes`].
#[derive(Default)]
pub struct TunedPolicyCache {
    map: Mutex<HashMap<u64, Arc<TunedPolicy>>>,
}

impl EngineArtifact for TunedPolicyCache {
    fn approx_bytes(&self) -> usize {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::size_of::<Self>() + map.values().map(|p| 16 + p.approx_bytes()).sum::<usize>()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn policy_cache(artifacts: &Artifacts) -> Arc<dyn EngineArtifact> {
    artifacts.engine_artifact("tuner", 0, || Arc::<TunedPolicyCache>::default())
}

fn as_cache(arc: &Arc<dyn EngineArtifact>) -> &TunedPolicyCache {
    arc.as_any()
        .downcast_ref::<TunedPolicyCache>()
        .expect("the tuner owns its artifact slot")
}

/// The policy persisted for `signature` on these artifacts, if any.
pub fn cached_policy(artifacts: &Artifacts, signature: u64) -> Option<Arc<TunedPolicy>> {
    let cache = policy_cache(artifacts);
    let map = as_cache(&cache)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    map.get(&signature).cloned()
}

/// Persists `policy` for `signature` on these artifacts (last write wins,
/// like concurrent compilations of one program).
pub fn store_policy(artifacts: &Artifacts, signature: u64, policy: Arc<TunedPolicy>) {
    let cache = policy_cache(artifacts);
    as_cache(&cache)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(signature, policy);
}

/// Number of tuned policies persisted on these artifacts.
pub fn cached_policy_count(artifacts: &Artifacts) -> usize {
    let cache = policy_cache(artifacts);
    let map = as_cache(&cache)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    map.len()
}

/// The input-*shape* signature a tuned policy is keyed by: an FNV-1a hash
/// of the scalars (name and value — loop bounds live here) and the array
/// names and extents.  Array *contents* are deliberately excluded: a
/// policy is a performance choice, not a correctness artifact, so inputs
/// of one shape share a policy even when their data differs (the
/// wavefront engine's own schedule cache — a correctness artifact — keys
/// by contents).
pub fn input_signature(heap: &Heap) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for (name, value) in &heap.scalars {
        eat(name.as_bytes());
        eat(&value.to_le_bytes());
    }
    for (name, arr) in &heap.arrays {
        eat(name.as_bytes());
        for &d in &arr.dims {
            eat(&(d as u64).to_le_bytes());
        }
    }
    // SplitMix64 finalizer, same avalanche as the input synthesizer's.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

// ---------------------------------------------------------------------------
// The search.
// ---------------------------------------------------------------------------

/// Knobs of one tuning search.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Maximum number of candidates measured (the default policy is always
    /// measured and does not count against the budget); `None` measures
    /// every enumerated candidate.
    pub budget_trials: Option<usize>,
    /// Timed repetitions per candidate (the median is the score).
    pub repeats: usize,
    /// Untimed warmup repetitions per candidate.
    pub warmup: usize,
    /// Orders the non-default candidates (a stable hash-ranked
    /// permutation): one seed, one trial order — always.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> TunerConfig {
        TunerConfig {
            budget_trials: None,
            repeats: 3,
            warmup: 1,
            seed: 0,
        }
    }
}

/// The compile-time facts the pruner consults.
struct KernelFacts {
    /// Any loop in the O1 stream is skewed (CSR-shaped inner bounds).
    skewed: bool,
    /// Any loop carries a wavefront fact.
    wavefront: bool,
    /// Any loop is proven parallel (outermost).
    parallel: bool,
}

fn collect_fors<'a>(code: &'a [Instr], out: &mut Vec<&'a BcFor>) {
    for i in code {
        if let Instr::For(f) = i {
            out.push(f);
            collect_fors(&f.body, out);
        }
    }
}

fn kernel_facts(artifacts: &Artifacts) -> KernelFacts {
    let mut fors = Vec::new();
    collect_fors(&artifacts.bytecode_at(OptLevel::O1).main, &mut fors);
    KernelFacts {
        skewed: fors.iter().any(|f| f.skewed),
        wavefront: artifacts.report.loops.iter().any(|l| l.wavefront.is_some()),
        parallel: !artifacts.report.outermost_parallel_loops().is_empty(),
    }
}

fn rank(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^ (h >> 31)
}

/// Enumerates the candidate policy points for these artifacts, pruned by
/// the compile-time loop facts, in the deterministic trial order `seed`
/// selects.  The default point ([`PolicyPoint::default_point`]) is always
/// first; `pruned` receives one note per skipped leg class.  Pure: same
/// artifacts, same seed, same list — the determinism tests pin this.
pub fn enumerate_candidates(
    artifacts: &Artifacts,
    base_threads: usize,
    seed: u64,
    pruned: &mut Vec<String>,
) -> Vec<PolicyPoint> {
    let facts = kernel_facts(artifacts);
    let mut engines: Vec<&str> = TUNED_ENGINES.to_vec();
    if !facts.wavefront {
        engines.retain(|e| *e != "wavefront");
        pruned.push("wavefront legs (no wavefront-schedulable loop)".to_string());
    }
    let mut thread_legs: Vec<usize> = Vec::new();
    if facts.parallel || facts.wavefront {
        for t in [2, ss_runtime::hardware_threads(), base_threads] {
            if t > 1 && !thread_legs.contains(&t) {
                thread_legs.push(t);
            }
        }
        thread_legs.sort_unstable();
    } else {
        pruned.push("multi-thread legs (no dispatchable loop)".to_string());
    }
    let mut schedules: Vec<(ScheduleChoice, Option<usize>)> = Vec::new();
    if facts.skewed {
        pruned.push("static legs (skewed loops)".to_string());
    } else {
        schedules.push((ScheduleChoice::Static, None));
    }
    for c in CHUNK_SIZES {
        schedules.push((ScheduleChoice::Dynamic, Some(c)));
    }

    let mut candidates = Vec::new();
    for engine in &engines {
        for level in [OptLevel::O0, OptLevel::O1] {
            // Serial legs: the wavefront engine's serial path *is* the
            // bytecode engine, so it gets no serial candidates.
            if *engine != "wavefront" {
                candidates.push(PolicyPoint {
                    engine: engine.to_string(),
                    opt_level: level,
                    schedule: ScheduleChoice::Auto,
                    chunk: None,
                    threads: 1,
                });
            }
            for &threads in &thread_legs {
                for &(schedule, chunk) in &schedules {
                    candidates.push(PolicyPoint {
                        engine: engine.to_string(),
                        opt_level: level,
                        schedule,
                        chunk,
                        threads,
                    });
                }
            }
        }
    }
    // An undispatchable kernel never hands a loop to the thread team, so
    // the default's thread count is behaviorally irrelevant; pin it to 1
    // to keep the candidate set serial-only.
    let default_threads = if facts.parallel || facts.wavefront {
        base_threads
    } else {
        1
    };
    let default = PolicyPoint::default_point(default_threads);
    candidates.retain(|p| *p != default);
    candidates.sort_by_key(|p| rank(seed, &p.label()));
    candidates.insert(0, default);
    candidates
}

/// Searches the policy space for these artifacts and input: warmup +
/// median-of-`repeats` timed trials per candidate, deterministic trial
/// ordering, fact-pruned legs, winner by smallest median (first in trial
/// order on exact ties — so the default wins draws).  Does **not**
/// consult or fill the persisted-policy cache; that is
/// [`Session::tune`](crate::Session::tune)'s job.
pub fn search(
    registry: &EngineRegistry,
    artifacts: &Artifacts,
    initial: &Heap,
    base: &ExecOptions,
    config: &TunerConfig,
) -> Result<TunedPolicy, SsError> {
    TUNE_SEARCHES.fetch_add(1, Ordering::Relaxed);
    let mut pruned = Vec::new();
    let candidates = enumerate_candidates(artifacts, base.threads.max(1), config.seed, &mut pruned);
    let budget = config.budget_trials.unwrap_or(usize::MAX).max(1);
    if candidates.len() > budget {
        pruned.push(format!(
            "budget: measured {budget} of {} candidates",
            candidates.len()
        ));
    }
    let mut trials = Vec::new();
    for point in candidates.into_iter().take(budget) {
        let engine = registry.get(&point.engine)?;
        let opts = point.apply(base.clone());
        let mut samples = Vec::with_capacity(config.repeats.max(1));
        for rep in 0..config.warmup + config.repeats.max(1) {
            let out = if point.threads <= 1 {
                engine.run_serial(artifacts, initial.clone(), &opts)?
            } else {
                engine.run_parallel(artifacts, initial.clone(), &opts)?
            };
            if rep >= config.warmup {
                samples.push(out.stats.total_seconds);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
        let median = samples[samples.len() / 2];
        trials.push(Trial {
            point,
            median_seconds: median,
        });
    }
    let default_median = trials[0].median_seconds;
    let winner = trials
        .iter()
        .min_by(|a, b| {
            a.median_seconds
                .partial_cmp(&b.median_seconds)
                .expect("wall times are finite")
        })
        .expect("the default candidate is always measured");
    Ok(TunedPolicy {
        point: winner.point.clone(),
        median_seconds: winner.median_seconds,
        default_median_seconds: default_median,
        trials: trials.clone(),
        pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG9: &str = r#"
        for (i = 0; i < n; i++) {
            cnt = 0;
            for (t = 0; t < 5; t++) {
                if (w[i][t] != 0) { cnt++; }
            }
            rowsize[i] = cnt;
        }
        rowptr[0] = 0;
        for (i = 1; i <= n; i++) { rowptr[i] = rowptr[i-1] + rowsize[i-1]; }
        for (i = 0; i < n; i++) {
            for (j = rowptr[i]; j < rowptr[i+1]; j++) {
                out[j] = v[j] * 2;
            }
        }
    "#;

    #[test]
    fn default_point_is_always_first_and_unique() {
        let art = Artifacts::compile_source("fig9", FIG9).unwrap();
        let mut pruned = Vec::new();
        let c = enumerate_candidates(&art, 4, 7, &mut pruned);
        assert_eq!(c[0], PolicyPoint::default_point(4));
        let labels: Vec<String> = c.iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            labels.len(),
            "duplicate candidates: {labels:?}"
        );
    }

    #[test]
    fn skewed_kernels_skip_static_legs() {
        let art = Artifacts::compile_source("fig9", FIG9).unwrap();
        let mut pruned = Vec::new();
        let c = enumerate_candidates(&art, 2, 0, &mut pruned);
        assert!(
            c.iter()
                .all(|p| !matches!(p.schedule, ScheduleChoice::Static)),
            "static legs must be pruned on skewed kernels"
        );
        assert!(
            pruned.iter().any(|p| p.contains("static legs")),
            "{pruned:?}"
        );
    }

    #[test]
    fn non_wavefront_kernels_skip_the_wavefront_leg() {
        let src = "for (i = 0; i < n; i++) { out[i] = a[i] + 1; }";
        let art = Artifacts::compile_source("map", src).unwrap();
        let mut pruned = Vec::new();
        let c = enumerate_candidates(&art, 2, 0, &mut pruned);
        assert!(c.iter().all(|p| p.engine != "wavefront"));
        assert!(
            pruned.iter().any(|p| p.contains("wavefront legs")),
            "{pruned:?}"
        );
    }

    #[test]
    fn undispatchable_kernels_keep_only_serial_legs() {
        let src = "x = 0; for (i = 0; i < n; i++) { x = x * 2 + a[i] - x; }";
        let art = Artifacts::compile_source("chain", src).unwrap();
        if !kernel_facts(&art).parallel && !kernel_facts(&art).wavefront {
            let mut pruned = Vec::new();
            let c = enumerate_candidates(&art, 4, 0, &mut pruned);
            assert!(c.iter().all(|p| p.threads == 1), "{c:?}");
            assert!(pruned.iter().any(|p| p.contains("multi-thread")));
        }
    }

    #[test]
    fn trial_order_is_a_pure_function_of_the_seed() {
        let art = Artifacts::compile_source("fig9", FIG9).unwrap();
        let order = |seed| {
            let mut pruned = Vec::new();
            enumerate_candidates(&art, 2, seed, &mut pruned)
                .iter()
                .map(|p| p.label())
                .collect::<Vec<_>>()
        };
        assert_eq!(order(11), order(11));
        let (a, b) = (order(1), order(2));
        let mut sa = a.clone();
        let mut sb = b.clone();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb, "seeds permute, never change, the candidate set");
        assert_ne!(a, b, "different seeds order the trials differently");
    }

    #[test]
    fn input_signature_tracks_shape_not_contents() {
        let a = Heap::new().with_scalar("n", 8).with_array("x", vec![0; 8]);
        let b = Heap::new().with_scalar("n", 8).with_array("x", vec![9; 8]);
        let c = Heap::new().with_scalar("n", 9).with_array("x", vec![0; 8]);
        assert_eq!(input_signature(&a), input_signature(&b));
        assert_ne!(input_signature(&a), input_signature(&c));
    }
}
