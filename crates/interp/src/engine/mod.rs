//! The execution engines.
//!
//! Four execution strategies share one set of verdicts, each behind the
//! object-safe [`Engine`] trait and enumerable through the
//! [`EngineRegistry`] (consumers resolve engines by name or capability,
//! never by pattern-matching):
//!
//! * the **bytecode** engine ([`bytecode`], [`registry::BytecodeEngine`])
//!   executes the flat register-machine stream of [`ss_ir::bytecode`] — no
//!   per-expression tree walking at all, and the parallel dispatcher runs
//!   its workers on a persistent thread team.  This is the default;
//! * the **threaded** engine ([`threaded`], [`registry::ThreadedEngine`])
//!   lowers that stream once more into a direct-threaded chain of
//!   monomorphized handler pointers with pre-decoded operands — no opcode
//!   decode per instruction, native counted loops for invariant headers —
//!   and hands proven-parallel loops to the bytecode dispatcher;
//! * the **compiled** engine ([`compiled`], [`registry::CompiledEngine`])
//!   executes the slot-resolved [`ss_ir::CompiledProgram`] over dense
//!   frames — name resolution happens once, before the first iteration, so
//!   the hot path pays no hashing and no per-entry free-variable analysis,
//!   but expressions are still walked as (slot-addressed) trees.  Kept as
//!   the mid-level differential stage;
//! * the **tree-walking** engine ([`serial`], [`dispatch`],
//!   [`registry::AstEngine`]) interprets the AST directly against the
//!   name-keyed heap.  It is the semantic reference
//!   ([`EngineCaps::reference`]).
//!
//! Cross-engine agreement is itself a validation axis, on top of
//! serial-vs-parallel: the [`Session`](crate::Session) differential mode
//! asserts ast ≡ compiled ≡ bytecode ≡ parallel bit-identical final heaps,
//! and `tests/engine_fuzz.rs` asserts the same over generated programs.
//! The bytecode and compiled engines both dispatch reduction loops
//! (per-thread partials merged by the combiner) and loops with loop-local
//! array declarations (per-iteration private storage); the AST engine
//! leaves those serial — all recorded as [`EngineCaps`] flags, which is
//! what consumers branch on.
//!
//! Module layout: [`registry`] holds the [`Engine`] trait, the built-in
//! implementations and the [`EngineRegistry`]; [`store`] the tree-walker's
//! pluggable stores (whole heap, recording inspector, shared-array worker
//! views); [`serial`] the statement walker and serial engine; [`dispatch`]
//! the AST parallel engine; [`compiled`] the slot-addressed engines;
//! [`bytecode`] the register-machine engines; [`threaded`] the
//! direct-threaded tier above them; [`wavefront`] the level-set
//! scheduler for serial-proven carried loops.

pub mod bytecode;
pub mod compiled;
pub mod dispatch;
pub mod registry;
pub mod serial;
pub mod store;
pub mod threaded;
pub mod wavefront;

use crate::heap::Heap;
use ss_ir::ast::LoopId;
use ss_ir::opt::OptLevel;
use std::collections::BTreeMap;

pub use registry::{Engine, EngineCaps, EngineRegistry};

/// A runtime failure of the interpreted program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An array was accessed that the heap does not contain.
    UndefinedArray(String),
    /// An array was accessed with the wrong number of subscripts.
    ArityMismatch {
        /// The array.
        array: String,
        /// Its rank.
        expected: usize,
        /// Subscripts supplied.
        got: usize,
    },
    /// A subscript fell outside the array's extents (or was negative).
    OutOfBounds {
        /// The array.
        array: String,
        /// The offending subscript vector.
        indices: Vec<i64>,
        /// The array's extents.
        dims: Vec<usize>,
    },
    /// Division or remainder by zero (or `i64::MIN / -1`).
    DivisionByZero,
    /// A loop exceeded the iteration cap (runaway `while`, zero step, …).
    NonTerminating {
        /// The loop.
        loop_id: LoopId,
        /// The cap it exceeded.
        cap: u64,
    },
    /// An array was declared inside a parallel worker of the tree-walking
    /// engine (the compiled engine gives such arrays private storage; the
    /// AST engine leaves such loops serial).
    ArrayDeclInWorker(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UndefinedArray(a) => write!(f, "undefined array '{a}'"),
            ExecError::ArityMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array '{array}' has rank {expected} but was subscripted with {got} index(es)"
            ),
            ExecError::OutOfBounds {
                array,
                indices,
                dims,
            } => write!(
                f,
                "subscript {indices:?} out of bounds for '{array}' with extents {dims:?}"
            ),
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::NonTerminating { loop_id, cap } => {
                write!(f, "loop {loop_id} exceeded {cap} iterations")
            }
            ExecError::ArrayDeclInWorker(a) => {
                write!(f, "array '{a}' declared inside a parallel loop body")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// How a loop was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Ran on one thread.
    #[default]
    Serial,
    /// Dispatched onto worker threads.
    Parallel {
        /// Worker count.
        threads: usize,
        /// True under chunk-stealing (dynamic) scheduling.
        dynamic: bool,
    },
}

/// Accumulated execution facts for one loop.
#[derive(Debug, Clone, Default)]
pub struct LoopStats {
    /// Times the loop was entered.
    pub invocations: u64,
    /// Total iterations across invocations.
    pub iterations: u64,
    /// Wall-clock seconds inside the loop (nested loop time included).
    pub seconds: f64,
    /// How the loop ran (last invocation).
    pub mode: ExecMode,
    /// For serial loops run under the inspector baseline: whether a runtime
    /// inspector would have licensed parallel execution (AND over
    /// invocations); `None` when not inspected.
    pub inspector_conflict_free: Option<bool>,
    /// For loops the wavefront engine executed as dependence level sets:
    /// `(level count, average level width)` of the schedule that ran (last
    /// invocation) — the schedule-quality facts `sspar run` surfaces
    /// without the golden dumps.
    pub wavefront: Option<(usize, f64)>,
}

/// Execution statistics for one engine run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Per-loop statistics (only loops executed at the spine level; loops
    /// inside dispatched bodies are accounted to their dispatched ancestor).
    pub loops: BTreeMap<LoopId, LoopStats>,
    /// Wall-clock seconds for the whole program.
    pub total_seconds: f64,
}

impl ExecStats {
    /// Loops that were dispatched to threads in this run.
    pub fn parallel_loops(&self) -> Vec<LoopId> {
        self.loops
            .iter()
            .filter(|(_, s)| matches!(s.mode, ExecMode::Parallel { .. }))
            .map(|(id, _)| *id)
            .collect()
    }

    pub(crate) fn record(&mut self, id: LoopId, iterations: u64, seconds: f64, mode: ExecMode) {
        let s = self.loops.entry(id).or_default();
        s.invocations += 1;
        s.iterations += iterations;
        s.seconds += seconds;
        s.mode = mode;
    }

    pub(crate) fn record_wavefront(&mut self, id: LoopId, levels: usize, avg_width: f64) {
        let s = self.loops.entry(id).or_default();
        s.wavefront = Some((levels, avg_width));
    }

    pub(crate) fn record_inspection(&mut self, id: LoopId, conflict_free: bool) {
        let s = self.loops.entry(id).or_default();
        s.inspector_conflict_free =
            Some(s.inspector_conflict_free.unwrap_or(true) && conflict_free);
    }
}

/// Walker state shared down the recursion of both engines: per-loop stats,
/// whether to record wall times (off inside workers: the dispatching spine
/// times the whole loop instead), and the runaway-loop cap.
pub(crate) struct ExecEnvTiming<'a> {
    pub stats: &'a mut ExecStats,
    pub timing: bool,
    pub while_cap: u64,
}

/// Materializes the iteration values of a dispatchable loop from its
/// once-evaluated header (initial value, bound, step): the per-iteration
/// index values plus the index variable's exit value.  Shared by both
/// parallel dispatchers so the termination rules (iteration cap, zero
/// step) cannot diverge between engines.
pub(crate) fn materialize_iteration_space(
    v0: i64,
    bound: i64,
    step: i64,
    cond_op: ss_ir::ast::BinOp,
    loop_id: LoopId,
    while_cap: u64,
) -> Result<(Vec<i64>, i64), ExecError> {
    let mut values = Vec::new();
    let mut v = v0;
    while serial::compare(cond_op, v, bound) {
        if values.len() as u64 >= while_cap {
            return Err(ExecError::NonTerminating {
                loop_id,
                cap: while_cap,
            });
        }
        values.push(v);
        v = v.wrapping_add(step);
        if step == 0 {
            return Err(ExecError::NonTerminating {
                loop_id,
                cap: while_cap,
            });
        }
    }
    Ok((values, v))
}

/// Maps the user's schedule choice (plus the loop's skew fact) onto a
/// concrete runtime schedule — the other half of dispatch both engines
/// must agree on.  `chunk` overrides the auto-derived dynamic chunk size
/// (the tuner's chunk axis); `None` keeps
/// [`Schedule::dynamic_for`](ss_runtime::Schedule::dynamic_for)'s derivation.
pub(crate) fn choose_schedule(
    choice: ScheduleChoice,
    skewed: bool,
    n: usize,
    threads: usize,
    chunk: Option<usize>,
) -> ss_runtime::Schedule {
    use ss_runtime::Schedule;
    let dynamic = || match chunk {
        Some(c) => Schedule::Dynamic { chunk: c.max(1) },
        None => Schedule::dynamic_for(n, threads),
    };
    match choice {
        ScheduleChoice::Static => Schedule::Static,
        ScheduleChoice::Dynamic => dynamic(),
        ScheduleChoice::Auto => {
            if skewed {
                dynamic()
            } else {
                Schedule::Static
            }
        }
    }
}

/// Result of an engine run: the final heap plus statistics.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Program state after execution.
    pub heap: Heap,
    /// Per-loop and total timing/mode facts.
    pub stats: ExecStats,
}

/// Which schedule the parallel engine uses for dispatched loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleChoice {
    /// Static for uniform iteration spaces, dynamic for skewed ones (loops
    /// whose nested bounds go through an index array, the CSR row shape).
    #[default]
    Auto,
    /// Always static chunking.
    Static,
    /// Always dynamic (chunk-stealing).
    Dynamic,
}

/// Knobs of the engines.  Which *engine* runs is no longer in here: pick
/// one from the [`EngineRegistry`] (or let
/// [`Session`](crate::Session)/[`RunRequest`](crate::RunRequest) resolve
/// it by name) and hand it these options.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for dispatched loops.
    pub threads: usize,
    /// Scheduling of dispatched loops.
    pub schedule: ScheduleChoice,
    /// Fixed chunk size for dynamic (chunk-stealing) scheduling; `None`
    /// derives the chunk from the iteration count and thread count.  Only
    /// consulted when the resolved schedule is dynamic — this is the
    /// tuner's chunk-size axis.
    pub chunk: Option<usize>,
    /// Which bytecode stream the bytecode engine executes: the base
    /// compiler's (`O0`) or the optimized one (`O1`, the default).  Both
    /// are produced by the one pipeline invocation and are bit-identical
    /// in observable behavior — differential validation asserts it.
    /// Engines that do not consume the bytecode stream ignore this.
    pub opt_level: OptLevel,
    /// Run the runtime-inspector baseline on loops the compile-time analysis
    /// left serial, recording whether an inspector/executor scheme would
    /// have parallelized them (see [`LoopStats::inspector_conflict_free`]).
    /// Only engines with [`EngineCaps::inspector_baseline`] accept this for
    /// parallel runs; others refuse with
    /// [`SsError::Unsupported`](crate::SsError::Unsupported).
    pub baseline_inspector: bool,
    /// Loops with fewer iterations than this run serially (dispatch would
    /// cost more than it buys).
    pub min_parallel_trip: usize,
    /// Iteration cap per loop invocation, against runaway `while` loops.
    pub while_cap: u64,
    /// Which process-wide persistent-team group dispatched loops run in
    /// (see `ss_runtime::with_shared_team_in`).  Group 0 — the default —
    /// is the team every one-shot consumer shares; a server that shards
    /// requests across independent teams assigns one group per shard so
    /// concurrent runs never serialize on a single team's region mutex.
    /// Only engines with [`EngineCaps::persistent_team`] consult this.
    pub team_group: usize,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            threads: ss_runtime::hardware_threads(),
            schedule: ScheduleChoice::Auto,
            chunk: None,
            opt_level: OptLevel::O1,
            baseline_inspector: false,
            min_parallel_trip: 2,
            while_cap: 100_000_000,
            team_group: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::parse_program;
    use ss_parallelizer::Artifacts;
    use std::sync::Arc;

    fn opts(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    fn compile(name: &str, src: &str) -> Artifacts {
        Artifacts::compile(&parse_program(name, src).unwrap())
    }

    fn engines() -> Vec<Arc<dyn Engine>> {
        EngineRegistry::builtin().iter().cloned().collect()
    }

    /// The engines whose parallel dispatcher handles reductions and
    /// loop-local arrays, per their own capability flags.
    fn dispatching() -> Vec<Arc<dyn Engine>> {
        engines()
            .into_iter()
            .filter(|e| e.caps().reductions && e.caps().local_arrays)
            .collect()
    }

    fn reference_engine() -> Arc<dyn Engine> {
        EngineRegistry::builtin().reference().unwrap()
    }

    #[test]
    fn serial_engines_run_a_prefix_sum() {
        let art = compile(
            "t",
            r#"
            s[0] = 0;
            for (i = 1; i <= n; i++) {
                s[i] = s[i-1] + i;
            }
        "#,
        );
        let heap = Heap::new()
            .with_scalar("n", 10)
            .with_array("s", vec![0; 11]);
        for engine in engines() {
            let out = engine.run_serial(&art, heap.clone(), &opts(1)).unwrap();
            assert_eq!(out.heap.arrays["s"].data[10], 55, "{}", engine.name());
            assert_eq!(out.heap.scalars["i"], 11);
            assert_eq!(out.stats.loops[&LoopId(0)].iterations, 10);
        }
    }

    #[test]
    fn conditionals_compound_ops_and_short_circuit() {
        let art = compile(
            "t",
            r#"
            x = 0;
            for (i = 0; i < 10; i++) {
                if (i % 2 == 0 && i != 4) {
                    x += i;
                } else {
                    x -= 1;
                }
            }
            y = !x;
            z = -x;
        "#,
        );
        for engine in engines() {
            let out = engine.run_serial(&art, Heap::new(), &opts(1)).unwrap();
            // even, not 4: 0+2+6+8 = 16; five odd iterations and i==4 subtract 6.
            assert_eq!(out.heap.scalars["x"], 10, "{}", engine.name());
            assert_eq!(out.heap.scalars["y"], 0);
            assert_eq!(out.heap.scalars["z"], -10);
        }
    }

    #[test]
    fn errors_are_reported_identically_by_every_engine() {
        use crate::error::SsError;
        for engine in engines() {
            let o = opts(1);
            let art = compile("t", "x = a[5];");
            let heap = Heap::new().with_array("a", vec![0; 3]);
            assert!(matches!(
                engine.run_serial(&art, heap, &o),
                Err(SsError::Runtime(ExecError::OutOfBounds { .. }))
            ));

            let art = compile("t", "x = a[0];");
            assert!(matches!(
                engine.run_serial(&art, Heap::new(), &o),
                Err(SsError::Runtime(ExecError::UndefinedArray(_)))
            ));

            let art = compile("t", "x = 1 / y;");
            assert!(matches!(
                engine.run_serial(&art, Heap::new(), &o),
                Err(SsError::Runtime(ExecError::DivisionByZero))
            ));

            let art = compile("t", "while (1) { x = 0; }");
            let capped = ExecOptions {
                while_cap: 1000,
                ..o.clone()
            };
            assert!(matches!(
                engine.run_serial(&art, Heap::new(), &capped),
                Err(SsError::Runtime(ExecError::NonTerminating { .. }))
            ));
        }
    }

    #[test]
    fn serial_heaps_are_bit_identical_across_engines() {
        // Declarations, shadowing loop-local arrays, while loops, nested
        // conditionals, undefined-scalar reads — the shapes where an
        // engine-semantics divergence would hide.
        let src = r#"
            int g[4];
            g[2] = 7;
            total = undefined_scalar + 1;
            for (i = 0; i < 6; i++) {
                int g[3];
                g[i % 3] = i;
                out[i] = g[i % 3] + total;
            }
            w = 0;
            while (w < 4) {
                if (w % 2 == 0) { evens += w; } else { odds += w; }
                w = w + 1;
            }
        "#;
        let art = compile("tricky", src);
        let heap = Heap::new().with_array("out", vec![0; 6]);
        let reference = reference_engine()
            .run_serial(&art, heap.clone(), &opts(1))
            .unwrap();
        for engine in engines() {
            let out = engine.run_serial(&art, heap.clone(), &opts(1)).unwrap();
            assert_eq!(reference.heap, out.heap, "{}", engine.name());
            // The loop-local array's final state is the last iteration's.
            assert_eq!(out.heap.arrays["g"].dims, vec![3]);
        }
    }

    #[test]
    fn parallel_engines_match_serial_on_figure2() {
        let src = r#"
            for (e = 0; e < nelt; e++) { mt_to_id[e] = nelt - 1 - e; }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#;
        let art = compile("fig2", src);
        assert!(art.report.loop_report(LoopId(1)).unwrap().parallel);
        let n = 5000;
        let heap = Heap::new()
            .with_scalar("nelt", n)
            .with_array("mt_to_id", vec![0; n as usize])
            .with_array("id_to_mt", vec![0; n as usize]);
        let serial = reference_engine()
            .run_serial(&art, heap.clone(), &opts(1))
            .unwrap();
        for engine in engines() {
            for threads in [2, 4] {
                let par = engine
                    .run_parallel(&art, heap.clone(), &opts(threads))
                    .unwrap();
                assert_eq!(par.heap, serial.heap, "{} threads={threads}", engine.name());
                assert_eq!(
                    par.stats.loops[&LoopId(1)].mode,
                    ExecMode::Parallel {
                        threads,
                        dynamic: false
                    }
                );
            }
        }
    }

    #[test]
    fn histogram_loop_is_never_dispatched_by_proof_based_engines() {
        let art = compile("hist", "for (i = 0; i < n; i++) { h[idx[i]] = i; }");
        assert!(art.report.outermost_parallel_loops().is_empty());
        let heap = Heap::new()
            .with_scalar("n", 100)
            .with_array("idx", (0..100).map(|i| i % 7).collect())
            .with_array("h", vec![-1; 7]);
        let serial = reference_engine()
            .run_serial(&art, heap.clone(), &opts(1))
            .unwrap();
        for engine in engines() {
            let par = engine.run_parallel(&art, heap.clone(), &opts(4)).unwrap();
            if engine.name() == "wavefront" {
                // The compile-time analysis leaves the scatter serial, but
                // the level-set scheduler recovers it at run time — and the
                // result must still be bit-identical to the serial heap.
                assert!(matches!(
                    par.stats.loops[&LoopId(0)].mode,
                    ExecMode::Parallel { threads: 4, .. }
                ));
            } else {
                assert!(par.stats.parallel_loops().is_empty());
                assert_eq!(par.stats.loops[&LoopId(0)].mode, ExecMode::Serial);
            }
            assert_eq!(par.heap, serial.heap);
        }
    }

    #[test]
    fn inspector_baseline_judges_serial_loops() {
        let inspector = EngineRegistry::builtin().inspector_capable().unwrap();
        // Histogram (conflicting): inspector must refuse it.
        let art = compile("hist", "for (i = 0; i < n; i++) { h[idx[i]] = i; }");
        let heap = Heap::new()
            .with_scalar("n", 100)
            .with_array("idx", (0..100).map(|i| i % 7).collect())
            .with_array("h", vec![-1; 7]);
        let o = ExecOptions {
            baseline_inspector: true,
            ..opts(4)
        };
        let out = inspector.run_parallel(&art, heap, &o).unwrap();
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            Some(false)
        );

        // Permutation scatter via an opaque input array: the compile-time
        // analysis cannot prove it, but this input is injective so the
        // runtime inspector licenses it.
        let art = compile("scatter", "for (i = 0; i < n; i++) { x[p[i]] = i; }");
        assert!(art.report.outermost_parallel_loops().is_empty());
        let n = 50i64;
        let heap = Heap::new()
            .with_scalar("n", n)
            .with_array("p", (0..n).rev().collect())
            .with_array("x", vec![0; n as usize]);
        let out = inspector.run_parallel(&art, heap, &o).unwrap();
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            Some(true)
        );
    }

    #[test]
    fn engines_without_the_capability_refuse_the_inspector_baseline() {
        use crate::error::SsError;
        let art = compile("t", "for (i = 0; i < n; i++) { out[i] = i; }");
        let heap = Heap::new()
            .with_scalar("n", 8)
            .with_array("out", vec![0; 8]);
        let o = ExecOptions {
            baseline_inspector: true,
            ..opts(2)
        };
        for engine in engines() {
            let got = engine.run_parallel(&art, heap.clone(), &o);
            if engine.caps().inspector_baseline {
                assert!(got.is_ok(), "{}", engine.name());
            } else {
                assert!(
                    matches!(got, Err(SsError::Unsupported { .. })),
                    "{} must refuse the inspector baseline",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn inspector_gives_no_verdict_for_loops_containing_dispatched_work() {
        // The outer serial loop rewrites the same x[] elements every
        // iteration, but the writes happen inside the dispatched inner
        // loop, invisible to the recording — the inspector must answer
        // "uninspected" (None), never "conflict-free".
        let src = r#"
            for (t = 0; t < reps; t++) {
                for (i = 0; i < n; i++) {
                    x[i] = t;
                }
            }
        "#;
        let art = compile("rewrite", src);
        assert!(art.report.outermost_parallel_loops().contains(&LoopId(1)));
        assert!(!art.report.loop_report(LoopId(0)).unwrap().parallel);
        let heap = Heap::new()
            .with_scalar("reps", 3)
            .with_scalar("n", 100)
            .with_array("x", vec![0; 100]);
        let o = ExecOptions {
            baseline_inspector: true,
            ..opts(4)
        };
        let inspector = EngineRegistry::builtin().inspector_capable().unwrap();
        let out = inspector.run_parallel(&art, heap.clone(), &o).unwrap();
        assert!(out.stats.parallel_loops().contains(&LoopId(1)));
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            None,
            "a frame blind to worker accesses must not claim conflict-freedom"
        );
        let serial = reference_engine().run_serial(&art, heap, &opts(1)).unwrap();
        assert_eq!(out.heap, serial.heap);
    }

    #[test]
    fn skewed_bodies_choose_dynamic_scheduling_under_auto() {
        // Figure 9 shape: count → prefix-sum → per-row traversal, where the
        // monotonicity of rowptr is derived from the filling code.
        let src = r#"
            for (i = 0; i < n; i++) {
                cnt = 0;
                for (t = 0; t < 5; t++) {
                    if (w[i][t] != 0) { cnt++; }
                }
                rowsize[i] = cnt;
            }
            rowptr[0] = 0;
            for (i = 1; i <= n; i++) { rowptr[i] = rowptr[i-1] + rowsize[i-1]; }
            for (i = 0; i < n; i++) {
                for (j = rowptr[i]; j < rowptr[i+1]; j++) {
                    out[j] = v[j] * 2;
                }
            }
        "#;
        let art = compile("csr", src);
        // Loop 3 is the outer traversal; the properties enable it.
        assert!(art.report.outermost_parallel_loops().contains(&LoopId(3)));
        let heap = crate::inputs::synthesize_inputs(
            &art.program,
            &crate::inputs::InputSpec {
                scale: 200,
                seed: 5,
            },
        )
        .unwrap();
        let serial = reference_engine()
            .run_serial(&art, heap.clone(), &opts(1))
            .unwrap();
        for engine in engines() {
            let par = engine.run_parallel(&art, heap.clone(), &opts(4)).unwrap();
            assert_eq!(par.heap, serial.heap, "{}", engine.name());
            // Auto picks dynamic scheduling because the dispatched loop's
            // inner bounds go through the rowptr index array.
            assert_eq!(
                par.stats.loops[&LoopId(3)].mode,
                ExecMode::Parallel {
                    threads: 4,
                    dynamic: true
                }
            );
        }
    }

    #[test]
    fn scalar_merge_back_reproduces_serial_last_iteration_values() {
        // `last` is written under a condition met only by some iterations;
        // the merged value must come from the globally last writing
        // iteration, wherever its chunk ran.
        let src = r#"
            for (i = 0; i < n; i++) {
                t = i * 2;
                out[i] = t;
                if (i % 10 == 3) {
                    last = i;
                }
            }
        "#;
        let art = compile("t", src);
        assert!(!art.report.outermost_parallel_loops().is_empty());
        let n = 1000;
        let heap = Heap::new()
            .with_scalar("n", n)
            .with_array("out", vec![0; n as usize]);
        let serial = reference_engine()
            .run_serial(&art, heap.clone(), &opts(1))
            .unwrap();
        assert_eq!(serial.heap.scalars["last"], 993);
        for engine in engines() {
            for threads in [2, 3, 8] {
                let par = engine
                    .run_parallel(&art, heap.clone(), &opts(threads))
                    .unwrap();
                assert_eq!(par.heap, serial.heap, "{} threads={threads}", engine.name());
            }
        }
    }

    #[test]
    fn worker_errors_propagate() {
        use crate::error::SsError;
        let art = compile("t", "for (i = 0; i < n; i++) { out[i] = i; }");
        assert!(!art.report.outermost_parallel_loops().is_empty());
        for engine in engines() {
            let heap = Heap::new()
                .with_scalar("n", 100)
                .with_array("out", vec![0; 50]); // too small on purpose
            let err = engine.run_parallel(&art, heap, &opts(4)).unwrap_err();
            assert!(
                matches!(err, SsError::Runtime(ExecError::OutOfBounds { .. })),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn loop_local_arrays_dispatch_with_private_storage() {
        // scratch is declared per iteration; engines with the local_arrays
        // capability dispatch the loop with worker-private storage, the
        // others keep it serial — all must match the serial heap
        // (including scratch's final, last-iteration state).
        let src = r#"
            for (i = 0; i < n; i++) {
                int scratch[8];
                for (t = 0; t < 8; t++) {
                    scratch[t] = dense[i][t] * 2;
                }
                for (t = 0; t < 8; t++) {
                    out[i * 8 + t] = scratch[t] + 1;
                }
            }
        "#;
        let art = compile("scratch", src);
        assert!(art.report.loop_report(LoopId(0)).unwrap().parallel);
        let heap = crate::inputs::synthesize_inputs(
            &art.program,
            &crate::inputs::InputSpec { scale: 96, seed: 4 },
        )
        .unwrap();
        let serial = reference_engine()
            .run_serial(&art, heap.clone(), &opts(1))
            .unwrap();
        for engine in dispatching() {
            for threads in [2, 3, 8] {
                let par = engine
                    .run_parallel(&art, heap.clone(), &opts(threads))
                    .unwrap();
                assert_eq!(par.heap, serial.heap, "{} threads={threads}", engine.name());
                assert!(par.stats.parallel_loops().contains(&LoopId(0)));
            }
        }
        // The reference engine: correct but serial.
        let ast = reference_engine()
            .run_parallel(&art, heap, &opts(4))
            .unwrap();
        assert_eq!(ast.heap, serial.heap);
        assert!(ast.stats.parallel_loops().is_empty());
    }

    #[test]
    fn reduction_loops_dispatch_with_combiner_merge() {
        let src = r#"
            total = 5;
            best = 1000000;
            hi = 0 - 1000000;
            for (k = 0; k < n; k++) {
                total += a[k];
                if (a[k] < best) { best = a[k]; }
                if (a[k] > hi) { hi = a[k]; }
            }
        "#;
        let art = compile("red", src);
        assert!(art.report.outermost_parallel_loops().contains(&LoopId(0)));
        assert_eq!(
            art.report.loop_report(LoopId(0)).unwrap().reductions.len(),
            3
        );
        let n = 10_000i64;
        let data: Vec<i64> = (0..n).map(|i| (i * 37) % 1001 - 500).collect();
        let heap = Heap::new().with_scalar("n", n).with_array("a", data);
        let serial = reference_engine()
            .run_serial(&art, heap.clone(), &opts(1))
            .unwrap();
        for engine in dispatching() {
            for threads in [2, 3, 8] {
                let par = engine
                    .run_parallel(&art, heap.clone(), &opts(threads))
                    .unwrap();
                assert_eq!(par.heap, serial.heap, "{} threads={threads}", engine.name());
                assert_eq!(
                    par.stats.loops[&LoopId(0)].mode,
                    ExecMode::Parallel {
                        threads,
                        dynamic: false
                    }
                );
            }
        }
        // The reference engine must not dispatch a reduction loop (it has
        // no combiner merge) — but still compute the right answer serially.
        let ast = reference_engine()
            .run_parallel(&art, heap, &opts(4))
            .unwrap();
        assert_eq!(ast.heap, serial.heap);
        assert!(ast.stats.parallel_loops().is_empty());
    }
}
