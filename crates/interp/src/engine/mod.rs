//! The execution engines.
//!
//! Three execution strategies share one set of verdicts:
//!
//! * the **bytecode** engines ([`bytecode`]) execute the flat
//!   register-machine stream of [`ss_ir::bytecode`] — no per-expression
//!   tree walking at all, and the parallel dispatcher runs its workers on
//!   a persistent thread team.  This is the default;
//! * the **compiled** engines ([`compiled`]) execute the slot-resolved
//!   [`ss_ir::CompiledProgram`] over dense frames — name resolution happens
//!   once, before the first iteration, so the hot path pays no hashing and
//!   no per-entry free-variable analysis, but expressions are still walked
//!   as (slot-addressed) trees.  Kept as the mid-level differential stage;
//! * the **tree-walking** engines ([`serial`], [`dispatch`]) interpret the
//!   AST directly against the name-keyed heap.  They are the semantic
//!   reference (`--engine ast`).
//!
//! Cross-engine agreement is itself a validation axis, on top of
//! serial-vs-parallel: `validate` asserts ast ≡ compiled ≡ bytecode ≡
//! parallel bit-identical final heaps, and `tests/engine_fuzz.rs` asserts
//! the same over generated programs.  The bytecode and compiled engines
//! both dispatch reduction loops (per-thread partials merged by the
//! combiner) and loops with loop-local array declarations (per-iteration
//! private storage); the AST engine leaves those serial.
//!
//! Module layout: [`store`] holds the tree-walker's pluggable stores (whole
//! heap, recording inspector, shared-array worker views); [`serial`] the
//! statement walker and serial engine; [`dispatch`] the AST parallel
//! engine; [`compiled`] the slot-addressed engines; [`bytecode`] the
//! register-machine engines.

pub mod bytecode;
pub mod compiled;
pub mod dispatch;
pub mod serial;
pub mod store;

use crate::heap::Heap;
use ss_ir::ast::LoopId;
use ss_ir::opt::OptLevel;
use ss_ir::Program;
use ss_parallelizer::{Artifacts, ParallelizationReport};
use std::collections::BTreeMap;

/// A runtime failure of the interpreted program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An array was accessed that the heap does not contain.
    UndefinedArray(String),
    /// An array was accessed with the wrong number of subscripts.
    ArityMismatch {
        /// The array.
        array: String,
        /// Its rank.
        expected: usize,
        /// Subscripts supplied.
        got: usize,
    },
    /// A subscript fell outside the array's extents (or was negative).
    OutOfBounds {
        /// The array.
        array: String,
        /// The offending subscript vector.
        indices: Vec<i64>,
        /// The array's extents.
        dims: Vec<usize>,
    },
    /// Division or remainder by zero (or `i64::MIN / -1`).
    DivisionByZero,
    /// A loop exceeded the iteration cap (runaway `while`, zero step, …).
    NonTerminating {
        /// The loop.
        loop_id: LoopId,
        /// The cap it exceeded.
        cap: u64,
    },
    /// An array was declared inside a parallel worker of the tree-walking
    /// engine (the compiled engine gives such arrays private storage; the
    /// AST engine leaves such loops serial).
    ArrayDeclInWorker(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UndefinedArray(a) => write!(f, "undefined array '{a}'"),
            ExecError::ArityMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array '{array}' has rank {expected} but was subscripted with {got} index(es)"
            ),
            ExecError::OutOfBounds {
                array,
                indices,
                dims,
            } => write!(
                f,
                "subscript {indices:?} out of bounds for '{array}' with extents {dims:?}"
            ),
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::NonTerminating { loop_id, cap } => {
                write!(f, "loop {loop_id} exceeded {cap} iterations")
            }
            ExecError::ArrayDeclInWorker(a) => {
                write!(f, "array '{a}' declared inside a parallel loop body")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// How a loop was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Ran on one thread.
    #[default]
    Serial,
    /// Dispatched onto worker threads.
    Parallel {
        /// Worker count.
        threads: usize,
        /// True under chunk-stealing (dynamic) scheduling.
        dynamic: bool,
    },
}

/// Accumulated execution facts for one loop.
#[derive(Debug, Clone, Default)]
pub struct LoopStats {
    /// Times the loop was entered.
    pub invocations: u64,
    /// Total iterations across invocations.
    pub iterations: u64,
    /// Wall-clock seconds inside the loop (nested loop time included).
    pub seconds: f64,
    /// How the loop ran (last invocation).
    pub mode: ExecMode,
    /// For serial loops run under the inspector baseline: whether a runtime
    /// inspector would have licensed parallel execution (AND over
    /// invocations); `None` when not inspected.
    pub inspector_conflict_free: Option<bool>,
}

/// Execution statistics for one engine run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Per-loop statistics (only loops executed at the spine level; loops
    /// inside dispatched bodies are accounted to their dispatched ancestor).
    pub loops: BTreeMap<LoopId, LoopStats>,
    /// Wall-clock seconds for the whole program.
    pub total_seconds: f64,
}

impl ExecStats {
    /// Loops that were dispatched to threads in this run.
    pub fn parallel_loops(&self) -> Vec<LoopId> {
        self.loops
            .iter()
            .filter(|(_, s)| matches!(s.mode, ExecMode::Parallel { .. }))
            .map(|(id, _)| *id)
            .collect()
    }

    pub(crate) fn record(&mut self, id: LoopId, iterations: u64, seconds: f64, mode: ExecMode) {
        let s = self.loops.entry(id).or_default();
        s.invocations += 1;
        s.iterations += iterations;
        s.seconds += seconds;
        s.mode = mode;
    }

    pub(crate) fn record_inspection(&mut self, id: LoopId, conflict_free: bool) {
        let s = self.loops.entry(id).or_default();
        s.inspector_conflict_free =
            Some(s.inspector_conflict_free.unwrap_or(true) && conflict_free);
    }
}

/// Walker state shared down the recursion of both engines: per-loop stats,
/// whether to record wall times (off inside workers: the dispatching spine
/// times the whole loop instead), and the runaway-loop cap.
pub(crate) struct ExecEnvTiming<'a> {
    pub stats: &'a mut ExecStats,
    pub timing: bool,
    pub while_cap: u64,
}

/// Materializes the iteration values of a dispatchable loop from its
/// once-evaluated header (initial value, bound, step): the per-iteration
/// index values plus the index variable's exit value.  Shared by both
/// parallel dispatchers so the termination rules (iteration cap, zero
/// step) cannot diverge between engines.
pub(crate) fn materialize_iteration_space(
    v0: i64,
    bound: i64,
    step: i64,
    cond_op: ss_ir::ast::BinOp,
    loop_id: LoopId,
    while_cap: u64,
) -> Result<(Vec<i64>, i64), ExecError> {
    let mut values = Vec::new();
    let mut v = v0;
    while serial::compare(cond_op, v, bound) {
        if values.len() as u64 >= while_cap {
            return Err(ExecError::NonTerminating {
                loop_id,
                cap: while_cap,
            });
        }
        values.push(v);
        v = v.wrapping_add(step);
        if step == 0 {
            return Err(ExecError::NonTerminating {
                loop_id,
                cap: while_cap,
            });
        }
    }
    Ok((values, v))
}

/// Maps the user's schedule choice (plus the loop's skew fact) onto a
/// concrete runtime schedule — the other half of dispatch both engines
/// must agree on.
pub(crate) fn choose_schedule(
    choice: ScheduleChoice,
    skewed: bool,
    n: usize,
    threads: usize,
) -> ss_runtime::Schedule {
    use ss_runtime::Schedule;
    match choice {
        ScheduleChoice::Static => Schedule::Static,
        ScheduleChoice::Dynamic => Schedule::dynamic_for(n, threads),
        ScheduleChoice::Auto => {
            if skewed {
                Schedule::dynamic_for(n, threads)
            } else {
                Schedule::Static
            }
        }
    }
}

/// Result of an engine run: the final heap plus statistics.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Program state after execution.
    pub heap: Heap,
    /// Per-loop and total timing/mode facts.
    pub stats: ExecStats,
}

/// Which schedule the parallel engine uses for dispatched loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleChoice {
    /// Static for uniform iteration spaces, dynamic for skewed ones (loops
    /// whose nested bounds go through an index array, the CSR row shape).
    #[default]
    Auto,
    /// Always static chunking.
    Static,
    /// Always dynamic (chunk-stealing).
    Dynamic,
}

/// Which execution strategy runs the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// Flat register-machine bytecode over a dense register file (the
    /// default; parallel loops run on a persistent thread team).
    #[default]
    Bytecode,
    /// Slot-resolved compiled execution over dense frames.
    Compiled,
    /// The tree-walking reference engine (name-keyed heap, AST walker).
    Ast,
}

/// Knobs of the engines.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads for dispatched loops.
    pub threads: usize,
    /// Scheduling of dispatched loops.
    pub schedule: ScheduleChoice,
    /// Compiled or tree-walking execution (see [`EngineChoice`]).
    pub engine: EngineChoice,
    /// Which bytecode stream the bytecode engine executes: the base
    /// compiler's (`O0`) or the optimized one (`O1`, the default).  Both
    /// are produced by the one pipeline invocation and are bit-identical
    /// in observable behavior — `validate` asserts it.
    pub opt_level: OptLevel,
    /// Run the runtime-inspector baseline on loops the compile-time analysis
    /// left serial, recording whether an inspector/executor scheme would
    /// have parallelized them (see [`LoopStats::inspector_conflict_free`]).
    /// The recording store is a tree-walker feature: a parallel run with
    /// this flag set uses the AST engine regardless of `engine`.
    pub baseline_inspector: bool,
    /// Loops with fewer iterations than this run serially (dispatch would
    /// cost more than it buys).
    pub min_parallel_trip: usize,
    /// Iteration cap per loop invocation, against runaway `while` loops.
    pub while_cap: u64,
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        ExecOptions {
            threads: ss_runtime::hardware_threads(),
            schedule: ScheduleChoice::Auto,
            engine: EngineChoice::Bytecode,
            opt_level: OptLevel::O1,
            baseline_inspector: false,
            min_parallel_trip: 2,
            while_cap: 100_000_000,
        }
    }
}

/// Executes a program off precompiled pipeline [`Artifacts`], serially.
/// This is the canonical entry point: the pipeline compiled exactly once
/// and every engine — the tree walker included — reads the same store.
/// `opts.engine` selects the strategy; for the bytecode engine
/// `opts.opt_level` selects the O0 or O1 stream.
pub fn run_serial_artifacts(
    artifacts: &Artifacts,
    heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    match opts.engine {
        EngineChoice::Bytecode => {
            bytecode::run_serial_bytecode(artifacts.bytecode_at(opts.opt_level), heap, opts)
        }
        EngineChoice::Compiled => compiled::run_serial_compiled(&artifacts.compiled, heap, opts),
        EngineChoice::Ast => serial::run_serial_ast(&artifacts.program, heap, opts),
    }
}

/// Executes a program off precompiled pipeline [`Artifacts`] with the
/// parallel engine; the dispatch schedule comes from the artifacts' own
/// analysis report.  See [`run_parallel`] for the engine semantics.
pub fn run_parallel_artifacts(
    artifacts: &Artifacts,
    heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    if opts.baseline_inspector || opts.engine == EngineChoice::Ast {
        dispatch::run_parallel_ast(&artifacts.program, &artifacts.report, heap, opts)
    } else if opts.engine == EngineChoice::Compiled {
        compiled::run_parallel_compiled(&artifacts.compiled, &artifacts.report, heap, opts)
    } else {
        bytecode::run_parallel_bytecode(
            artifacts.bytecode_at(opts.opt_level),
            &artifacts.report,
            heap,
            opts,
        )
    }
}

/// Executes the program serially with the default options (bytecode
/// engine).  `heap` is the initial program state (see
/// [`crate::inputs::synthesize_inputs`]).
pub fn run_serial(program: &Program, heap: Heap) -> Result<ExecOutcome, ExecError> {
    run_serial_with(program, heap, &ExecOptions::default())
}

/// [`run_serial`] with explicit options (`engine` selects the strategy,
/// `while_cap` bounds loops).
///
/// Convenience wrapper over [`run_serial_artifacts`] for one-shot runs: it
/// compiles what the selected engine needs at the call site.  Anything
/// running more than one engine (or more than once) should build
/// [`Artifacts`] and use the artifacts entry points instead, which compile
/// exactly once for the whole run.
pub fn run_serial_with(
    program: &Program,
    heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    match opts.engine {
        EngineChoice::Bytecode => {
            let compiled = ss_ir::slots::compile_program(program);
            let bc = ss_ir::bytecode::compile_bytecode(&compiled);
            // O0 executes the base stream as compiled; only O1 rewrites.
            let bc = match opts.opt_level {
                OptLevel::O0 => bc,
                OptLevel::O1 => ss_ir::opt::optimize(&bc, OptLevel::O1),
            };
            bytecode::run_serial_bytecode(&bc, heap, opts)
        }
        EngineChoice::Compiled => {
            let compiled = ss_ir::slots::compile_program(program);
            compiled::run_serial_compiled(&compiled, heap, opts)
        }
        EngineChoice::Ast => serial::run_serial_ast(program, heap, opts),
    }
}

/// Executes the program with the parallel engine: loops the `report` proved
/// parallelizable (outermost ones) are dispatched onto `ss_runtime` worker
/// threads; everything else runs serially.
///
/// The bytecode engine (default) and the compiled engine additionally
/// dispatch reduction loops (per-thread partial accumulators merged by the
/// recognized combiner) and loops whose bodies declare arrays
/// (per-iteration private storage); the bytecode engine runs its workers
/// on a persistent, process-wide thread team reused across parallel
/// regions — and across whole runs.  The AST engine (`engine: Ast`, or any
/// run with `baseline_inspector` set) leaves both classes serial.
///
/// Like [`run_serial_with`], this compiles at the call site; prefer
/// [`run_parallel_artifacts`] wherever a pipeline invocation is available.
pub fn run_parallel(
    program: &Program,
    report: &ParallelizationReport,
    heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    if opts.baseline_inspector || opts.engine == EngineChoice::Ast {
        dispatch::run_parallel_ast(program, report, heap, opts)
    } else if opts.engine == EngineChoice::Compiled {
        let compiled = ss_ir::slots::compile_program(program);
        compiled::run_parallel_compiled(&compiled, report, heap, opts)
    } else {
        let compiled = ss_ir::slots::compile_program(program);
        let bc = ss_ir::bytecode::compile_bytecode(&compiled);
        let bc = match opts.opt_level {
            OptLevel::O0 => bc,
            OptLevel::O1 => ss_ir::opt::optimize(&bc, OptLevel::O1),
        };
        bytecode::run_parallel_bytecode(&bc, report, heap, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_ir::parse_program;
    use ss_parallelizer::parallelize;

    fn opts(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    fn engine_opts(threads: usize, engine: EngineChoice) -> ExecOptions {
        ExecOptions {
            threads,
            engine,
            ..ExecOptions::default()
        }
    }

    const ENGINES: [EngineChoice; 3] = [
        EngineChoice::Bytecode,
        EngineChoice::Compiled,
        EngineChoice::Ast,
    ];

    /// The engines whose parallel dispatcher handles reductions and
    /// loop-local arrays.
    const DISPATCHING: [EngineChoice; 2] = [EngineChoice::Bytecode, EngineChoice::Compiled];

    #[test]
    fn serial_engines_run_a_prefix_sum() {
        let p = parse_program(
            "t",
            r#"
            s[0] = 0;
            for (i = 1; i <= n; i++) {
                s[i] = s[i-1] + i;
            }
        "#,
        )
        .unwrap();
        let heap = Heap::new()
            .with_scalar("n", 10)
            .with_array("s", vec![0; 11]);
        for engine in ENGINES {
            let out = run_serial_with(&p, heap.clone(), &engine_opts(1, engine)).unwrap();
            assert_eq!(out.heap.arrays["s"].data[10], 55, "{engine:?}");
            assert_eq!(out.heap.scalars["i"], 11);
            assert_eq!(out.stats.loops[&LoopId(0)].iterations, 10);
        }
    }

    #[test]
    fn conditionals_compound_ops_and_short_circuit() {
        let p = parse_program(
            "t",
            r#"
            x = 0;
            for (i = 0; i < 10; i++) {
                if (i % 2 == 0 && i != 4) {
                    x += i;
                } else {
                    x -= 1;
                }
            }
            y = !x;
            z = -x;
        "#,
        )
        .unwrap();
        for engine in ENGINES {
            let out = run_serial_with(&p, Heap::new(), &engine_opts(1, engine)).unwrap();
            // even, not 4: 0+2+6+8 = 16; five odd iterations and i==4 subtract 6.
            assert_eq!(out.heap.scalars["x"], 10, "{engine:?}");
            assert_eq!(out.heap.scalars["y"], 0);
            assert_eq!(out.heap.scalars["z"], -10);
        }
    }

    #[test]
    fn errors_are_reported_identically_by_both_engines() {
        for engine in ENGINES {
            let o = engine_opts(1, engine);
            let p = parse_program("t", "x = a[5];").unwrap();
            let heap = Heap::new().with_array("a", vec![0; 3]);
            assert!(matches!(
                run_serial_with(&p, heap, &o),
                Err(ExecError::OutOfBounds { .. })
            ));

            let p = parse_program("t", "x = a[0];").unwrap();
            assert!(matches!(
                run_serial_with(&p, Heap::new(), &o),
                Err(ExecError::UndefinedArray(_))
            ));

            let p = parse_program("t", "x = 1 / y;").unwrap();
            assert!(matches!(
                run_serial_with(&p, Heap::new(), &o),
                Err(ExecError::DivisionByZero)
            ));

            let p = parse_program("t", "while (1) { x = 0; }").unwrap();
            let capped = ExecOptions {
                while_cap: 1000,
                ..o.clone()
            };
            assert!(matches!(
                run_serial_with(&p, Heap::new(), &capped),
                Err(ExecError::NonTerminating { .. })
            ));
        }
    }

    #[test]
    fn compiled_and_ast_serial_heaps_are_bit_identical() {
        // Declarations, shadowing loop-local arrays, while loops, nested
        // conditionals, undefined-scalar reads — the shapes where an
        // engine-semantics divergence would hide.
        let src = r#"
            int g[4];
            g[2] = 7;
            total = undefined_scalar + 1;
            for (i = 0; i < 6; i++) {
                int g[3];
                g[i % 3] = i;
                out[i] = g[i % 3] + total;
            }
            w = 0;
            while (w < 4) {
                if (w % 2 == 0) { evens += w; } else { odds += w; }
                w = w + 1;
            }
        "#;
        let p = parse_program("tricky", src).unwrap();
        let heap = Heap::new().with_array("out", vec![0; 6]);
        let ast = run_serial_with(&p, heap.clone(), &engine_opts(1, EngineChoice::Ast)).unwrap();
        let compiled =
            run_serial_with(&p, heap.clone(), &engine_opts(1, EngineChoice::Compiled)).unwrap();
        let bytecode = run_serial_with(&p, heap, &engine_opts(1, EngineChoice::Bytecode)).unwrap();
        assert_eq!(ast.heap, compiled.heap);
        assert_eq!(ast.heap, bytecode.heap);
        // The loop-local array's final state is the last iteration's.
        assert_eq!(compiled.heap.arrays["g"].dims, vec![3]);
    }

    #[test]
    fn parallel_engines_match_serial_on_figure2() {
        let src = r#"
            for (e = 0; e < nelt; e++) { mt_to_id[e] = nelt - 1 - e; }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#;
        let p = parse_program("fig2", src).unwrap();
        let report = parallelize(&p);
        assert!(report.loop_report(LoopId(1)).unwrap().parallel);
        let n = 5000;
        let heap = Heap::new()
            .with_scalar("nelt", n)
            .with_array("mt_to_id", vec![0; n as usize])
            .with_array("id_to_mt", vec![0; n as usize]);
        let serial = run_serial(&p, heap.clone()).unwrap();
        for engine in ENGINES {
            for threads in [2, 4] {
                let par =
                    run_parallel(&p, &report, heap.clone(), &engine_opts(threads, engine)).unwrap();
                assert_eq!(par.heap, serial.heap, "{engine:?} threads={threads}");
                assert_eq!(
                    par.stats.loops[&LoopId(1)].mode,
                    ExecMode::Parallel {
                        threads,
                        dynamic: false
                    }
                );
            }
        }
    }

    #[test]
    fn histogram_loop_is_never_dispatched() {
        let p = parse_program("hist", "for (i = 0; i < n; i++) { h[idx[i]] = i; }").unwrap();
        let report = parallelize(&p);
        assert!(report.outermost_parallel_loops().is_empty());
        let heap = Heap::new()
            .with_scalar("n", 100)
            .with_array("idx", (0..100).map(|i| i % 7).collect())
            .with_array("h", vec![-1; 7]);
        for engine in ENGINES {
            let par = run_parallel(&p, &report, heap.clone(), &engine_opts(4, engine)).unwrap();
            assert!(par.stats.parallel_loops().is_empty());
            assert_eq!(par.stats.loops[&LoopId(0)].mode, ExecMode::Serial);
            assert_eq!(par.heap, run_serial(&p, heap.clone()).unwrap().heap);
        }
    }

    #[test]
    fn inspector_baseline_judges_serial_loops() {
        // Histogram (conflicting): inspector must refuse it.
        let p = parse_program("hist", "for (i = 0; i < n; i++) { h[idx[i]] = i; }").unwrap();
        let report = parallelize(&p);
        let heap = Heap::new()
            .with_scalar("n", 100)
            .with_array("idx", (0..100).map(|i| i % 7).collect())
            .with_array("h", vec![-1; 7]);
        let o = ExecOptions {
            baseline_inspector: true,
            ..opts(4)
        };
        let out = run_parallel(&p, &report, heap, &o).unwrap();
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            Some(false)
        );

        // Permutation scatter via an opaque input array: the compile-time
        // analysis cannot prove it, but this input is injective so the
        // runtime inspector licenses it.
        let p = parse_program("scatter", "for (i = 0; i < n; i++) { x[p[i]] = i; }").unwrap();
        let report = parallelize(&p);
        assert!(report.outermost_parallel_loops().is_empty());
        let n = 50i64;
        let heap = Heap::new()
            .with_scalar("n", n)
            .with_array("p", (0..n).rev().collect())
            .with_array("x", vec![0; n as usize]);
        let out = run_parallel(&p, &report, heap, &o).unwrap();
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            Some(true)
        );
    }

    #[test]
    fn inspector_gives_no_verdict_for_loops_containing_dispatched_work() {
        // The outer serial loop rewrites the same x[] elements every
        // iteration, but the writes happen inside the dispatched inner
        // loop, invisible to the recording — the inspector must answer
        // "uninspected" (None), never "conflict-free".
        let src = r#"
            for (t = 0; t < reps; t++) {
                for (i = 0; i < n; i++) {
                    x[i] = t;
                }
            }
        "#;
        let p = parse_program("rewrite", src).unwrap();
        let report = parallelize(&p);
        assert!(report.outermost_parallel_loops().contains(&LoopId(1)));
        assert!(!report.loop_report(LoopId(0)).unwrap().parallel);
        let heap = Heap::new()
            .with_scalar("reps", 3)
            .with_scalar("n", 100)
            .with_array("x", vec![0; 100]);
        let o = ExecOptions {
            baseline_inspector: true,
            ..opts(4)
        };
        let out = run_parallel(&p, &report, heap.clone(), &o).unwrap();
        assert!(out.stats.parallel_loops().contains(&LoopId(1)));
        assert_eq!(
            out.stats.loops[&LoopId(0)].inspector_conflict_free,
            None,
            "a frame blind to worker accesses must not claim conflict-freedom"
        );
        assert_eq!(out.heap, run_serial(&p, heap).unwrap().heap);
    }

    #[test]
    fn skewed_bodies_choose_dynamic_scheduling_under_auto() {
        // Figure 9 shape: count → prefix-sum → per-row traversal, where the
        // monotonicity of rowptr is derived from the filling code.
        let src = r#"
            for (i = 0; i < n; i++) {
                cnt = 0;
                for (t = 0; t < 5; t++) {
                    if (w[i][t] != 0) { cnt++; }
                }
                rowsize[i] = cnt;
            }
            rowptr[0] = 0;
            for (i = 1; i <= n; i++) { rowptr[i] = rowptr[i-1] + rowsize[i-1]; }
            for (i = 0; i < n; i++) {
                for (j = rowptr[i]; j < rowptr[i+1]; j++) {
                    out[j] = v[j] * 2;
                }
            }
        "#;
        let p = parse_program("csr", src).unwrap();
        let report = parallelize(&p);
        // Loop 3 is the outer traversal; the properties enable it.
        assert!(report.outermost_parallel_loops().contains(&LoopId(3)));
        let heap = crate::inputs::synthesize_inputs(
            &p,
            &crate::inputs::InputSpec {
                scale: 200,
                seed: 5,
            },
        )
        .unwrap();
        let serial = run_serial(&p, heap.clone()).unwrap();
        for engine in ENGINES {
            let par = run_parallel(&p, &report, heap.clone(), &engine_opts(4, engine)).unwrap();
            assert_eq!(par.heap, serial.heap, "{engine:?}");
            // Auto picks dynamic scheduling because the dispatched loop's
            // inner bounds go through the rowptr index array.
            assert_eq!(
                par.stats.loops[&LoopId(3)].mode,
                ExecMode::Parallel {
                    threads: 4,
                    dynamic: true
                }
            );
        }
    }

    #[test]
    fn scalar_merge_back_reproduces_serial_last_iteration_values() {
        // `last` is written under a condition met only by some iterations;
        // the merged value must come from the globally last writing
        // iteration, wherever its chunk ran.
        let src = r#"
            for (i = 0; i < n; i++) {
                t = i * 2;
                out[i] = t;
                if (i % 10 == 3) {
                    last = i;
                }
            }
        "#;
        let p = parse_program("t", src).unwrap();
        let report = parallelize(&p);
        assert!(!report.outermost_parallel_loops().is_empty());
        let n = 1000;
        let heap = Heap::new()
            .with_scalar("n", n)
            .with_array("out", vec![0; n as usize]);
        let serial = run_serial(&p, heap.clone()).unwrap();
        assert_eq!(serial.heap.scalars["last"], 993);
        for engine in ENGINES {
            for threads in [2, 3, 8] {
                let par =
                    run_parallel(&p, &report, heap.clone(), &engine_opts(threads, engine)).unwrap();
                assert_eq!(par.heap, serial.heap, "{engine:?} threads={threads}");
            }
        }
    }

    #[test]
    fn worker_errors_propagate() {
        let p = parse_program("t", "for (i = 0; i < n; i++) { out[i] = i; }").unwrap();
        let report = parallelize(&p);
        assert!(!report.outermost_parallel_loops().is_empty());
        for engine in ENGINES {
            let heap = Heap::new()
                .with_scalar("n", 100)
                .with_array("out", vec![0; 50]); // too small on purpose
            let err = run_parallel(&p, &report, heap, &engine_opts(4, engine)).unwrap_err();
            assert!(matches!(err, ExecError::OutOfBounds { .. }), "{engine:?}");
        }
    }

    #[test]
    fn loop_local_arrays_dispatch_with_private_storage() {
        // scratch is declared per iteration; the bytecode and compiled
        // engines dispatch the loop with worker-private storage, the AST
        // engine keeps it serial — all must match the serial heap
        // (including scratch's final, last-iteration state).
        let src = r#"
            for (i = 0; i < n; i++) {
                int scratch[8];
                for (t = 0; t < 8; t++) {
                    scratch[t] = dense[i][t] * 2;
                }
                for (t = 0; t < 8; t++) {
                    out[i * 8 + t] = scratch[t] + 1;
                }
            }
        "#;
        let p = parse_program("scratch", src).unwrap();
        let report = parallelize(&p);
        assert!(report.loop_report(LoopId(0)).unwrap().parallel);
        let heap =
            crate::inputs::synthesize_inputs(&p, &crate::inputs::InputSpec { scale: 96, seed: 4 })
                .unwrap();
        let serial = run_serial(&p, heap.clone()).unwrap();
        for engine in DISPATCHING {
            for threads in [2, 3, 8] {
                let par =
                    run_parallel(&p, &report, heap.clone(), &engine_opts(threads, engine)).unwrap();
                assert_eq!(par.heap, serial.heap, "{engine:?} threads={threads}");
                assert!(par.stats.parallel_loops().contains(&LoopId(0)));
            }
        }
        // AST engine: correct but serial.
        let ast = run_parallel(&p, &report, heap, &engine_opts(4, EngineChoice::Ast)).unwrap();
        assert_eq!(ast.heap, serial.heap);
        assert!(ast.stats.parallel_loops().is_empty());
    }

    #[test]
    fn reduction_loops_dispatch_with_combiner_merge() {
        let src = r#"
            total = 5;
            best = 1000000;
            hi = 0 - 1000000;
            for (k = 0; k < n; k++) {
                total += a[k];
                if (a[k] < best) { best = a[k]; }
                if (a[k] > hi) { hi = a[k]; }
            }
        "#;
        let p = parse_program("red", src).unwrap();
        let report = parallelize(&p);
        assert!(report.outermost_parallel_loops().contains(&LoopId(0)));
        assert_eq!(report.loop_report(LoopId(0)).unwrap().reductions.len(), 3);
        let n = 10_000i64;
        let data: Vec<i64> = (0..n).map(|i| (i * 37) % 1001 - 500).collect();
        let heap = Heap::new().with_scalar("n", n).with_array("a", data);
        let serial = run_serial(&p, heap.clone()).unwrap();
        for engine in DISPATCHING {
            for threads in [2, 3, 8] {
                let par =
                    run_parallel(&p, &report, heap.clone(), &engine_opts(threads, engine)).unwrap();
                assert_eq!(par.heap, serial.heap, "{engine:?} threads={threads}");
                assert_eq!(
                    par.stats.loops[&LoopId(0)].mode,
                    ExecMode::Parallel {
                        threads,
                        dynamic: false
                    }
                );
            }
        }
        // The AST engine must not dispatch a reduction loop (it has no
        // combiner merge) — but still compute the right answer serially.
        let ast = run_parallel(&p, &report, heap, &engine_opts(4, EngineChoice::Ast)).unwrap();
        assert_eq!(ast.heap, serial.heap);
        assert!(ast.stats.parallel_loops().is_empty());
    }
}
