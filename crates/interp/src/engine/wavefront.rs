//! The wavefront execution tier: serial-proven loops executed as
//! dependence level sets.
//!
//! The compile-time analysis concedes carried loops — SpTRSV, Gauss-
//! Seidel sweeps, histogram scatters — to serial execution.  This tier
//! recovers them at run time, the way sparse solver libraries do:
//!
//! 1. **Gate** (compile time): `ss_parallelizer::wavefront` marks a
//!    serial loop wavefront-schedulable when its memory footprint is a
//!    pure function of loop-entry state (no written array and no scalar
//!    tainted by one ever reaches an address position or a branch).
//! 2. **Inspect** (first run per input): the loop body is executed
//!    serially on a *cloned* machine with shadow copies of the written
//!    arrays, recording each iteration's read/write addresses — the base
//!    heap is untouched, so a failed or unprofitable inspection falls
//!    back to plain serial execution with bit-identical behavior.
//! 3. **Schedule**: `ss_inspector::levelset::build_level_sets` turns the
//!    recorded footprints into wavefronts (level sets): iterations in one
//!    level are provably conflict-free, and every dependence crosses
//!    levels in execution order.  The schedule is cached on the
//!    artifacts' engine-extension slot, keyed by the entry state that
//!    determined it (scalars + schedule-array contents), so one
//!    inspection serves every later run on the same input.
//! 4. **Execute**: levels run in order on the persistent thread team,
//!    with a barrier between levels; workers reuse the bytecode engine's
//!    worker machinery, so merge semantics cannot drift from the proven-
//!    parallel dispatcher.  When the schedule is too fine (average level
//!    width below [`MIN_AVG_WIDTH`]) the loop stays serial: a pure
//!    recurrence inspects to `n` levels of one iteration and is not worth
//!    a barrier per iteration.
//!
//! Proven-parallel and reduction loops still go through the bytecode
//! engine's shared `try_dispatch_parallel` path first — the wavefront
//! dispatcher only sees loops every other engine runs serially.

use super::bytecode::{
    dispatchable_map, eval_block, exec_code, try_dispatch_parallel, BcArrays, BcPolicy, Machine,
    NoDispatchB, SpineArrays, WorkerArrays,
};
use super::compiled::{ChunkAcc, SharedSlots, NOT_WRITTEN};
use super::store::elem_at;
use super::{ExecEnvTiming, ExecError, ExecMode, ExecOptions, ExecOutcome, ExecStats};
use crate::heap::{ArrayVal, Heap};
use ss_inspector::levelset::{build_level_sets, IterationAccess, LevelSchedule};
use ss_ir::bytecode::BcFor;
use ss_ir::slots::{ArraySlot, SlotMap};
use ss_ir::LoopId;
use ss_parallelizer::{Artifacts, EngineArtifact, WavefrontFact};
use ss_runtime::{team_parallel_reduce, with_shared_team_in, Schedule};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Serial fallback threshold: schedules averaging fewer iterations per
/// level than this run serially (the barrier per level would dominate).
pub const MIN_AVG_WIDTH: f64 = 2.0;

// ---------------------------------------------------------------------------
// The schedule cache (an engine artifact).
// ---------------------------------------------------------------------------

/// Level-set schedules cached on the artifacts, keyed by `(loop, entry
/// state hash)`.  One keyed extension slot is shared by both opt levels:
/// slot numbering and flattened addresses are identical across streams,
/// so a schedule inspected at O0 is valid at O1 and vice versa.
#[derive(Default)]
struct WfScheduleCache {
    #[allow(clippy::type_complexity)]
    map: Mutex<HashMap<(LoopId, u64), Arc<LevelSchedule>>>,
}

impl EngineArtifact for WfScheduleCache {
    fn approx_bytes(&self) -> usize {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::size_of::<Self>() + map.values().map(|s| 64 + s.approx_bytes()).sum::<usize>()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The schedule cache of `artifacts`, created on first use.
fn schedule_cache(artifacts: &Artifacts) -> Arc<dyn EngineArtifact> {
    artifacts.engine_artifact("wavefront", 0, || Arc::<WfScheduleCache>::default())
}

fn as_cache(arc: &Arc<dyn EngineArtifact>) -> &WfScheduleCache {
    arc.as_any()
        .downcast_ref::<WfScheduleCache>()
        .expect("the wavefront engine owns its artifact slot")
}

/// Hashes everything the gate proved the footprint depends on: the
/// scalar registers at loop entry, the contents of the schedule arrays,
/// the *shapes* of the watched arrays (their dims select flattened
/// addresses), and the iteration cap.
fn schedule_key(
    fact: &WavefrontFact,
    m: &Machine<'_>,
    arrays: &SpineArrays<'_>,
    id: LoopId,
    while_cap: u64,
) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    id.0.hash(&mut h);
    while_cap.hash(&mut h);
    for i in 0..m.nscalars {
        m.regs[i].hash(&mut h);
        m.defined[i].hash(&mut h);
    }
    let slot_of = |name: &str| {
        arrays
            .slots
            .array_names()
            .iter()
            .position(|n| n == name)
            .and_then(|i| arrays.arrays[i].as_ref())
    };
    for name in &fact.schedule_arrays {
        name.hash(&mut h);
        match slot_of(name) {
            Some(arr) => {
                arr.dims.hash(&mut h);
                arr.data.hash(&mut h);
            }
            None => 0u8.hash(&mut h),
        }
    }
    for name in &fact.watched {
        name.hash(&mut h);
        match slot_of(name) {
            Some(arr) => arr.dims.hash(&mut h),
            None => 0u8.hash(&mut h),
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Inspection: a faithful serial replay on shadow state.
// ---------------------------------------------------------------------------

/// Packs an array access as `slot << 48 | flattened index` — the flat
/// address currency of the level-set builder.
fn pack(slot: usize, flat: usize) -> u64 {
    ((slot as u64) << 48) | flat as u64
}

/// The inspection pass's array store: reads of unwatched arrays hit the
/// spine's arrays (immutably — the loop never writes them), watched
/// arrays are served from private shadow clones so the replay can run the
/// real updates without touching the base heap, and every watched access
/// is recorded for the schedule.
struct InspectArrays<'m> {
    slots: &'m SlotMap,
    base: &'m [Option<ArrayVal>],
    watched: &'m [bool],
    shadows: Vec<Option<ArrayVal>>,
    reads: Vec<u64>,
    writes: Vec<u64>,
    /// Set when the replay does something the gate promised impossible
    /// (a write to an unwatched array, a declaration): the inspection is
    /// discarded and the loop falls back to serial.
    poisoned: bool,
}

impl BcArrays for InspectArrays<'_> {
    fn read(&mut self, a: ArraySlot, indices: &[i64]) -> Result<i64, ExecError> {
        let i = a.index();
        let name = self.slots.array_name(a);
        let arr = if self.watched[i] {
            self.shadows[i].as_ref()
        } else {
            self.base[i].as_ref()
        }
        .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
        let flat = elem_at(name, arr, indices)?;
        if self.watched[i] {
            self.reads.push(pack(i, flat));
        }
        Ok(arr.data[flat])
    }

    fn write(&mut self, a: ArraySlot, indices: &[i64], v: i64) -> Result<(), ExecError> {
        let i = a.index();
        if !self.watched[i] {
            self.poisoned = true;
            return Ok(());
        }
        let name = self.slots.array_name(a);
        let arr = self.shadows[i]
            .as_mut()
            .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
        let flat = elem_at(name, arr, indices)?;
        arr.data[flat] = v;
        self.writes.push(pack(i, flat));
        Ok(())
    }

    fn declare(&mut self, _a: ArraySlot, _dims: Vec<usize>) {
        self.poisoned = true;
    }
}

/// Replays the loop serially on cloned state and builds the level-set
/// schedule from the recorded footprints.  `None` means the replay
/// errored or misbehaved — the caller falls back to serial execution,
/// which reproduces the error (or the behavior) on the real state.
fn inspect_schedule(
    fact: &WavefrontFact,
    m: &Machine<'_>,
    arrays: &SpineArrays<'_>,
    f: &BcFor,
    values: &[i64],
    while_cap: u64,
) -> Option<LevelSchedule> {
    let narrays = arrays.arrays.len();
    let mut watched = vec![false; narrays];
    for name in &fact.watched {
        watched[arrays.slots.array_names().iter().position(|n| n == name)?] = true;
    }
    let shadows: Vec<Option<ArrayVal>> = arrays
        .arrays
        .iter()
        .enumerate()
        .map(|(i, a)| if watched[i] { a.clone() } else { None })
        .collect();
    let mut ia = InspectArrays {
        slots: arrays.slots,
        base: &arrays.arrays,
        watched: &watched,
        shadows,
        reads: Vec::new(),
        writes: Vec::new(),
        poisoned: false,
    };
    let mut im = Machine {
        regs: m.regs.clone(),
        defined: m.defined.clone(),
        write_iter: m.write_iter.clone(),
        current_iter: m.current_iter,
        nscalars: m.nscalars,
        consts: m.consts,
    };
    let mut scratch = ExecStats::default();
    let mut env = ExecEnvTiming {
        stats: &mut scratch,
        timing: false,
        while_cap,
    };
    let mut accesses = Vec::with_capacity(values.len());
    for &v in values {
        im.set(f.var, v);
        if exec_code(&mut im, &mut ia, &f.body, &mut NoDispatchB, &mut env).is_err() || ia.poisoned
        {
            return None;
        }
        accesses.push(IterationAccess {
            reads: std::mem::take(&mut ia.reads),
            writes: std::mem::take(&mut ia.writes),
        });
    }
    Some(build_level_sets(&accesses))
}

// ---------------------------------------------------------------------------
// Execution: level by level on the persistent team.
// ---------------------------------------------------------------------------

/// Runs a scheduled loop level by level.  Workers are the bytecode
/// dispatcher's workers (snapshot register file, shared array views);
/// `team_parallel_reduce` returning is the barrier between levels, and
/// scalar merge-back takes the globally last-writing iteration across all
/// levels — exactly the serial outcome for privatizable scalars.
#[allow(clippy::too_many_arguments)]
fn execute_wavefront(
    schedule: &LevelSchedule,
    values: &[i64],
    exit_value: i64,
    opts: &ExecOptions,
    m: &mut Machine<'_>,
    arrays: &mut SpineArrays<'_>,
    f: &BcFor,
    env: &mut ExecEnvTiming<'_>,
) -> Result<(), ExecError> {
    let start = Instant::now();
    let threads = opts.threads;
    let nscalars = m.nscalars;
    let narrays = arrays.arrays.len();
    let local = vec![false; narrays];
    let snapshot = m.regs.clone();
    let shared = SharedSlots::capture(&mut arrays.arrays, &local);
    let slots = arrays.slots;
    let consts = m.consts;
    let while_cap = env.while_cap;
    let local_ref = &local;
    let snapshot_ref = &snapshot;
    let shared_ref = &shared;
    let mut merged: Vec<Option<(usize, i64)>> = vec![None; nscalars];
    let mut dynamic = false;
    for level in &schedule.by_level {
        let nl = level.len();
        let level_schedule =
            super::choose_schedule(opts.schedule, f.skewed, nl, threads, opts.chunk);
        dynamic = dynamic || matches!(level_schedule, Schedule::Dynamic { .. });
        let level_ref = &level[..];
        let acc = with_shared_team_in(opts.team_group, threads, |team| {
            team_parallel_reduce(
                team,
                nl,
                level_schedule,
                ChunkAcc::identity(nscalars, &[], 0),
                |range, mut acc| {
                    if acc.err.is_some() {
                        return acc;
                    }
                    let mut wm = Machine {
                        regs: snapshot_ref.clone(),
                        defined: vec![false; nscalars],
                        write_iter: vec![NOT_WRITTEN; nscalars],
                        current_iter: 0,
                        nscalars,
                        consts,
                    };
                    let mut wa = WorkerArrays {
                        slots,
                        shared: shared_ref,
                        local: local_ref,
                        locals: vec![None; narrays],
                        local_write_iter: vec![NOT_WRITTEN; narrays],
                        current_iter: 0,
                    };
                    let mut scratch_stats = ExecStats::default();
                    let mut wenv = ExecEnvTiming {
                        stats: &mut scratch_stats,
                        timing: false,
                        while_cap,
                    };
                    for li in range {
                        // The global iteration ordinal, so last-writer
                        // scalar merges order across the whole loop, not
                        // within one level.
                        let k = level_ref[li] as usize;
                        wm.current_iter = k;
                        wa.current_iter = k;
                        wm.set(f.var, values[k]);
                        if let Err(e) =
                            exec_code(&mut wm, &mut wa, &f.body, &mut NoDispatchB, &mut wenv)
                        {
                            acc.err = Some(e);
                            break;
                        }
                    }
                    for (slot, &iter) in wm.write_iter.iter().enumerate() {
                        if iter == NOT_WRITTEN {
                            continue;
                        }
                        match acc.scalar_writes[slot] {
                            Some((best, _)) if best >= iter => {}
                            _ => acc.scalar_writes[slot] = Some((iter, wm.regs[slot])),
                        }
                    }
                    acc
                },
                |a, b| a.combine(b, &[]),
            )
        });
        if let Some(e) = acc.err {
            return Err(e);
        }
        for (slot, w) in acc.scalar_writes.into_iter().enumerate() {
            if let Some((iter, value)) = w {
                match merged[slot] {
                    Some((best, _)) if best >= iter => {}
                    _ => merged[slot] = Some((iter, value)),
                }
            }
        }
    }
    for (slot, w) in merged.into_iter().enumerate() {
        if let Some((_, value)) = w {
            m.regs[slot] = value;
            m.defined[slot] = true;
        }
    }
    m.set(f.var, exit_value);
    env.stats.record(
        f.id,
        values.len() as u64,
        start.elapsed().as_secs_f64(),
        ExecMode::Parallel { threads, dynamic },
    );
    env.stats
        .record_wavefront(f.id, schedule.by_level.len(), schedule.avg_width());
    Ok(())
}

/// Attempts wavefront dispatch of one gate-approved loop: materialize the
/// iteration space, look up (or inspect and cache) the schedule, check
/// profitability, execute level by level.  `Ok(false)` sends the loop to
/// the serial path.
fn try_dispatch_wavefront(
    fact: &WavefrontFact,
    cache: &WfScheduleCache,
    opts: &ExecOptions,
    m: &mut Machine<'_>,
    arrays: &mut SpineArrays<'_>,
    f: &BcFor,
    env: &mut ExecEnvTiming<'_>,
) -> Result<bool, ExecError> {
    if opts.threads <= 1 || !f.local_arrays.is_empty() {
        return Ok(false);
    }
    let v0 = eval_block(m, arrays, &f.init, env)?;
    let bound = eval_block(m, arrays, &f.bound, env)?;
    let step = eval_block(m, arrays, &f.step, env)?;
    let (values, exit_value) =
        super::materialize_iteration_space(v0, bound, step, f.cond_op, f.id, env.while_cap)?;
    let n = values.len();
    if n < opts.min_parallel_trip {
        return Ok(false);
    }
    let key = (f.id, schedule_key(fact, m, arrays, f.id, env.while_cap));
    let schedule = {
        let mut map = cache.map.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(&key) {
            Some(s) => Some(Arc::clone(s)),
            None => inspect_schedule(fact, m, arrays, f, &values, env.while_cap).map(|s| {
                let s = Arc::new(s);
                map.insert(key, Arc::clone(&s));
                s
            }),
        }
    };
    let Some(schedule) = schedule else {
        return Ok(false);
    };
    if schedule.iterations() != n || schedule.avg_width() < MIN_AVG_WIDTH {
        // Too fine (or a stale shape): the barrier per level would cost
        // more than it buys — stay serial.  The schedule stays cached, so
        // later runs skip straight to this decision.
        return Ok(false);
    }
    execute_wavefront(&schedule, &values, exit_value, opts, m, arrays, f, env)?;
    Ok(true)
}

// ---------------------------------------------------------------------------
// The dispatch policy and entry points.
// ---------------------------------------------------------------------------

struct WfDispatch<'r> {
    dispatchable: &'r HashMap<LoopId, Vec<ss_parallelizer::ReductionInfo>>,
    facts: &'r HashMap<LoopId, &'r WavefrontFact>,
    cache: &'r WfScheduleCache,
    opts: &'r ExecOptions,
}

impl BcPolicy<SpineArrays<'_>> for WfDispatch<'_> {
    fn try_dispatch(
        &mut self,
        m: &mut Machine<'_>,
        arrays: &mut SpineArrays<'_>,
        f: &BcFor,
        env: &mut ExecEnvTiming<'_>,
    ) -> Result<bool, ExecError> {
        // Proven-parallel and reduction loops take the shared dispatcher,
        // identically to every other parallel engine.
        if try_dispatch_parallel(self.dispatchable, self.opts, m, arrays, f, env)? {
            return Ok(true);
        }
        let Some(fact) = self.facts.get(&f.id) else {
            return Ok(false);
        };
        try_dispatch_wavefront(fact, self.cache, self.opts, m, arrays, f, env)
    }
}

/// Parallel execution: the bytecode spine with proven loops on the shared
/// dispatcher and gate-approved serial loops on the wavefront scheduler.
pub(super) fn run_parallel_wavefront(
    artifacts: &Artifacts,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let bc = artifacts.bytecode_at(opts.opt_level);
    let dispatchable = dispatchable_map(&artifacts.report);
    let facts: HashMap<LoopId, &WavefrontFact> = artifacts
        .report
        .loops
        .iter()
        .filter_map(|l| l.wavefront.as_ref().map(|w| (l.loop_id, w)))
        .collect();
    let cache_arc = schedule_cache(artifacts);
    let mut stats = ExecStats::default();
    let start = Instant::now();
    let mut machine = Machine::new(bc);
    machine.load_scalars(&heap, &bc.slots);
    let mut arrays = SpineArrays::from_heap(&mut heap, &bc.slots);
    {
        let mut policy = WfDispatch {
            dispatchable: &dispatchable,
            facts: &facts,
            cache: as_cache(&cache_arc),
            opts,
        };
        let mut env = ExecEnvTiming {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_code(&mut machine, &mut arrays, &bc.main, &mut policy, &mut env)?;
    }
    arrays.into_heap(&mut heap);
    machine.store_scalars(&mut heap, &bc.slots);
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}

/// Runs the whole program through the wavefront engine, then renders
/// every level-set schedule the run built (or reused from the cache) in
/// loop order — the surface the golden-schedule tests diff.
pub fn wavefront_schedule_dump(
    artifacts: &Artifacts,
    heap: Heap,
    opts: &ExecOptions,
) -> Result<String, ExecError> {
    run_parallel_wavefront(artifacts, heap, opts)?;
    let cache_arc = schedule_cache(artifacts);
    let map = as_cache(&cache_arc)
        .map
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let mut entries: Vec<(&(LoopId, u64), &Arc<LevelSchedule>)> = map.iter().collect();
    entries.sort_by_key(|((id, key), _)| (*id, *key));
    let mut out = String::new();
    for ((id, _), schedule) in entries {
        out.push_str(&format!("{id}\n"));
        out.push_str(&schedule.render());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::bytecode::run_serial_bytecode;
    use ss_ir::opt::OptLevel;

    const SPTRSV: &str = r#"
        for (i = 0; i < n; i++) {
            deg[i] = 0;
        }
        for (i = 0; i < n; i++) {
            for (j = 0; j < i; j++) {
                if (dep[i * n + j] % 5 == 0) {
                    lcol[ptr[i] + deg[i]] = j;
                    deg[i] = deg[i] + 1;
                }
            }
        }
        for (i = 0; i < n; i++) {
            sum = b[i];
            for (j = ptr[i]; j < ptr[i] + deg[i]; j++) {
                sum -= lval[j] * x[lcol[j]];
            }
            x[i] = sum;
        }
    "#;

    fn sptrsv_heap(n: usize) -> Heap {
        Heap::new()
            .with_scalar("n", n as i64)
            .with_array("deg", vec![0; n])
            .with_array("dep", (0..(n * n) as i64).map(|v| v * 7 + 3).collect())
            .with_array("ptr", (0..n as i64).map(|i| i * n as i64).collect())
            .with_array("b", (0..n as i64).map(|v| v * 11 - 40).collect())
            .with_array("lval", vec![1; n * n])
            .with_array("lcol", vec![0; n * n])
            .with_array("x", vec![0; n])
    }

    fn opts(threads: usize, level: OptLevel) -> ExecOptions {
        ExecOptions {
            threads,
            opt_level: level,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn wavefront_matches_serial_on_a_sparse_triangular_solve() {
        let art = Artifacts::compile_source("sptrsv", SPTRSV).unwrap();
        let solve = art
            .report
            .loops
            .iter()
            .rev()
            .find(|l| l.wavefront.is_some())
            .expect("the solve loop is wavefront-schedulable");
        assert_eq!(solve.wavefront.as_ref().unwrap().watched, vec!["x"]);
        for level in [OptLevel::O0, OptLevel::O1] {
            let serial =
                run_serial_bytecode(art.bytecode_at(level), sptrsv_heap(24), &opts(1, level))
                    .unwrap();
            let wf = run_parallel_wavefront(&art, sptrsv_heap(24), &opts(4, level)).unwrap();
            assert_eq!(serial.heap, wf.heap, "heaps diverge at {level:?}");
        }
    }

    #[test]
    fn recurrences_fall_back_to_serial_execution() {
        // A pure chain inspects to one iteration per level — below the
        // width threshold, so execution stays serial (and correct).
        let src = "for (i = 1; i < n; i++) { x[i] = x[i - 1] + 1; }";
        let art = Artifacts::compile_source("chain", src).unwrap();
        assert!(art.report.loops[0].wavefront.is_some());
        let heap = Heap::new()
            .with_scalar("n", 64)
            .with_array("x", vec![0; 64]);
        let out = run_parallel_wavefront(&art, heap.clone(), &opts(4, OptLevel::O1)).unwrap();
        let serial =
            run_serial_bytecode(art.bytecode_at(OptLevel::O1), heap, &opts(1, OptLevel::O1))
                .unwrap();
        assert_eq!(out.heap, serial.heap);
        let stats = &out.stats.loops[&LoopId(0)];
        assert!(matches!(stats.mode, ExecMode::Serial));
    }

    #[test]
    fn schedule_dump_is_deterministic_and_level_ordered() {
        let src = "for (i = 0; i < n; i++) { h[idx[i]] = i; }";
        let art = Artifacts::compile_source("scatter", src).unwrap();
        let heap = || {
            Heap::new()
                .with_scalar("n", 6)
                .with_array("idx", vec![0, 1, 0, 2, 1, 2])
                .with_array("h", vec![0; 3])
        };
        let d1 = wavefront_schedule_dump(&art, heap(), &opts(2, OptLevel::O1)).unwrap();
        let d2 = wavefront_schedule_dump(&art, heap(), &opts(2, OptLevel::O1)).unwrap();
        assert_eq!(d1, d2);
        // Two writes per slot: two levels, preserving write order.
        assert!(d1.contains("iterations 6 levels 2"), "dump:\n{d1}");
        assert!(d1.contains("level 0: 0 1 3"), "dump:\n{d1}");
        assert!(d1.contains("level 1: 2 4 5"), "dump:\n{d1}");
    }
}
