//! The direct-threaded execution tier: bytecode lowered to a pre-resolved
//! handler chain.
//!
//! The bytecode engines pay one `match` (opcode decode) per executed
//! instruction.  This tier removes that cost: `lower` walks an
//! [`ss_ir::bytecode`] stream **once** and emits a flat `ThOp` side
//! table where every element carries a plain function pointer to a
//! *monomorphized* handler (one per operator × operand shape) plus its
//! pre-decoded operands — register offsets widened to `u32`, pool
//! constants inlined as immediates, branch targets rewritten to indices
//! in the lowered stream.  Execution is then a tight
//! `pc = (op.run)(op, cx)?` chain with no decode step, the classic
//! direct-threaded dispatch structure, in safe Rust.
//!
//! Beyond dispatch, the lowering exploits facts the O1 pass already
//! proves:
//!
//! * **Constant fusion** — a `Const` into a temp consumed exactly once by
//!   the next instruction folds into an immediate form of the consumer
//!   (`x + 1`, `i < n`-style compares against literals, `sum += 1`), so
//!   the pair costs one dispatch instead of two and no register traffic.
//! * **Counted loops** — when a `for` header is register- or
//!   constant-shaped ([`HeaderFast`]) and the body provably never writes
//!   the induction variable, bound or step registers, the loop runs as a
//!   native Rust `while` over a local induction value: no per-iteration
//!   header block, no guard re-dispatch.  [`HeaderFast::EvalOnce`] bounds
//!   (the hoisted `rowptr[i]` CSR shape) evaluate once per loop entry at
//!   the same program point — and therefore the same error point — as the
//!   bytecode engine's first bound evaluation.
//! * **Superinstructions** — the O1 fused forms (`LoadLoad`,
//!   `CmpBranch`, `Load2`/`Store2`, `Accum`) each get dedicated handlers;
//!   rank-1 loads and stores skip the general subscript-buffer path.
//!
//! Semantics stay bit-identical to the bytecode engines: wrapping
//! arithmetic, division/remainder error points, undefined-array and
//! bounds errors, `while` iteration caps and loop statistics all mirror
//! `super::bytecode` operation for operation, and the differential
//! validator plus the generative fuzz harness assert exactly that.
//!
//! Parallel execution reuses the bytecode engine's dispatcher verbatim:
//! at each lowered `For` the spine's state is handed to the bytecode
//! engine's parallel dispatcher, whose workers execute the
//! original bytecode body over the shared [`ss_runtime::ThreadTeam`] —
//! the two engines cannot drift apart in merge semantics.  The lowered
//! program itself is cached on the pipeline's [`Artifacts`] (one lowering
//! per artifact and opt level, shared by clones and charged to the
//! session cache through [`EngineArtifact::approx_bytes`]).

use super::bytecode::{dispatchable_map, try_dispatch_parallel, Machine, SpineArrays};
use super::compiled::NOT_WRITTEN;
use super::store::elem_at;
use super::{ExecEnvTiming, ExecError, ExecMode, ExecOptions, ExecOutcome, ExecStats};
use crate::heap::{ArrayVal, Heap};
use ss_ir::ast::{AssignOp, BinOp};
use ss_ir::bytecode::{BcExpr, BcFor, BytecodeProgram, HeaderFast, Instr, Reg};
use ss_ir::opt::OptLevel;
use ss_ir::slots::{ArraySlot, SlotMap};
use ss_ir::LoopId;
use ss_parallelizer::{Artifacts, EngineArtifact, ReductionInfo};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static THREADED_LOWERINGS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of `lower` invocations (the threaded-tier
/// analogue of [`ss_ir::bytecode::bytecode_compilation_count`]): tests
/// assert the lowering runs once per `(Artifacts, opt level)` and never
/// per run.
pub fn threaded_lowering_count() -> u64 {
    THREADED_LOWERINGS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// The lowered program.
// ---------------------------------------------------------------------------

/// A handler: executes one lowered op and returns the next op index.
type Handler = fn(&ThOp, &mut ThCtx<'_>) -> Result<u32, ExecError>;

/// One pre-decoded op: the handler pointer plus its flattened operands.
/// `next` is the fall-through index (pre-stored so handlers never compute
/// it); `ext` is the taken-branch target, loop/while table index, array
/// slot or subscript rank depending on the handler.
struct ThOp {
    run: Handler,
    a: u32,
    b: u32,
    c: u32,
    imm: i64,
    next: u32,
    ext: u32,
}

/// A lowered instruction block; `result` is the register a header block
/// leaves its value in (0 for statement blocks, which have none).
struct ThBlock {
    ops: Vec<ThOp>,
    result: u32,
}

/// A lowered loop-header value source, pre-resolved from [`HeaderFast`].
enum ThHeader {
    /// Compile-time constant.
    Imm(i64),
    /// Plain register read.
    Reg(u32),
    /// Proven loop-invariant block: run once per loop entry, memoized.
    Once(ThBlock),
    /// Re-evaluated every iteration (the general case).
    Every(ThBlock),
}

/// A lowered `for` loop.  `counted` marks loops whose bound/step are
/// invariant register or immediate values and whose body never writes the
/// induction variable: those run as native counted loops.  `bcfor` keeps
/// the original bytecode so the parallel dispatcher's workers execute the
/// exact stream the verdicts were proven against.
struct ThLoop {
    id: LoopId,
    var: u32,
    cond: fn(i64, i64) -> bool,
    init: ThHeader,
    bound: ThHeader,
    step: ThHeader,
    body: ThBlock,
    counted: bool,
    bcfor: BcFor,
}

/// A whole lowered program: the engine-private artifact the pipeline
/// caches per opt level (see [`Artifacts::engine_artifact`]).
pub(crate) struct ThProgram {
    main: ThBlock,
    loops: Vec<ThLoop>,
    while_ids: Vec<LoopId>,
    consts: Vec<i64>,
    slots: SlotMap,
    nregs: usize,
    nscalars: usize,
}

impl EngineArtifact for ThProgram {
    fn approx_bytes(&self) -> usize {
        /// Allowance per loop for the header blocks' spines and the
        /// retained bytecode body (not walked instruction by
        /// instruction — the estimate only has to be monotone).
        const PER_LOOP_OVERHEAD: usize = 1024;
        fn block(b: &ThBlock) -> usize {
            b.ops.len() * std::mem::size_of::<ThOp>()
        }
        fn header(h: &ThHeader) -> usize {
            match h {
                ThHeader::Once(b) | ThHeader::Every(b) => block(b),
                _ => 0,
            }
        }
        std::mem::size_of::<ThProgram>()
            + block(&self.main)
            + self
                .loops
                .iter()
                .map(|l| {
                    std::mem::size_of::<ThLoop>()
                        + block(&l.body)
                        + header(&l.init)
                        + header(&l.bound)
                        + header(&l.step)
                        + l.bcfor.body.len() * std::mem::size_of::<Instr>()
                        + PER_LOOP_OVERHEAD
                })
                .sum::<usize>()
            + self.consts.len() * 8
            + self.while_ids.len() * 8
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Execution state.
// ---------------------------------------------------------------------------

/// One active `while` guard (iteration cap + timing), mirroring the
/// bytecode engine's guard stack.
struct WGuard {
    id: LoopId,
    iters: u64,
    start: Option<Instant>,
}

/// The parallel-dispatch hook: present only under `run_parallel`.
pub(super) struct ThDispatch<'r> {
    dispatchable: HashMap<LoopId, Vec<ReductionInfo>>,
    opts: &'r ExecOptions,
}

/// The spine's execution context: the register frame (low registers alias
/// scalar slots, exactly the bytecode numbering, so dispatched state can
/// be handed over without translation), the dense array store, the
/// `while` guard stack and the run's statistics.
struct ThCtx<'p> {
    prog: &'p ThProgram,
    regs: Vec<i64>,
    defined: Vec<bool>,
    arrays: Vec<Option<ArrayVal>>,
    guards: Vec<WGuard>,
    stats: ExecStats,
    timing: bool,
    while_cap: u64,
    nscalars: usize,
    dispatch: Option<&'p ThDispatch<'p>>,
}

impl ThCtx<'_> {
    #[inline(always)]
    fn set(&mut self, r: u32, v: i64) {
        let i = r as usize;
        self.regs[i] = v;
        if i < self.nscalars {
            self.defined[i] = true;
        }
    }
}

/// The dispatch loop itself: no decode, just chase the handler chain.
/// The final op's pre-stored `next` equals `ops.len()`, which ends the
/// loop without a separate halt op.
#[inline]
fn exec_ops(ops: &[ThOp], cx: &mut ThCtx<'_>) -> Result<(), ExecError> {
    let mut pc = 0u32;
    while let Some(op) = ops.get(pc as usize) {
        pc = (op.run)(op, cx)?;
    }
    Ok(())
}

#[inline]
fn header_val(h: &ThHeader, cx: &mut ThCtx<'_>, cache: &mut Option<i64>) -> Result<i64, ExecError> {
    match h {
        ThHeader::Imm(v) => Ok(*v),
        ThHeader::Reg(r) => Ok(cx.regs[*r as usize]),
        ThHeader::Every(b) => {
            exec_ops(&b.ops, cx)?;
            Ok(cx.regs[b.result as usize])
        }
        ThHeader::Once(b) => {
            if let Some(v) = *cache {
                return Ok(v);
            }
            exec_ops(&b.ops, cx)?;
            let v = cx.regs[b.result as usize];
            *cache = Some(v);
            Ok(v)
        }
    }
}

fn run_loop(lp: &ThLoop, cx: &mut ThCtx<'_>) -> Result<(), ExecError> {
    if dispatch_loop(lp, cx)? {
        return Ok(());
    }
    let start = cx.timing.then(Instant::now);
    let v0 = header_val(&lp.init, cx, &mut None)?;
    cx.set(lp.var, v0);
    let iters = if lp.counted {
        counted_loop(lp, cx, v0)?
    } else {
        generic_loop(lp, cx)?
    };
    if let Some(t) = start {
        cx.stats
            .record(lp.id, iters, t.elapsed().as_secs_f64(), ExecMode::Serial);
    }
    Ok(())
}

/// The native counted-loop fast path: bound and step are loop-invariant
/// values (immediates, unwritten registers, or a memoized `EvalOnce`
/// block), so the induction value lives in a local and the per-iteration
/// work is one compare, one cap check and the body chain.  The bound is
/// resolved at the same program point as the bytecode engine's
/// first-iteration bound evaluation (after `init`, before the first
/// test), so error points coincide.
fn counted_loop(lp: &ThLoop, cx: &mut ThCtx<'_>, v0: i64) -> Result<u64, ExecError> {
    let bound = header_val(&lp.bound, cx, &mut None)?;
    let step = match &lp.step {
        ThHeader::Imm(v) => *v,
        ThHeader::Reg(r) => cx.regs[*r as usize],
        _ => unreachable!("counted loops restrict the step to Imm/Reg"),
    };
    let var = lp.var as usize;
    let cap = cx.while_cap;
    let cond = lp.cond;
    let mut v = v0;
    let mut iters: u64 = 0;
    while cond(v, bound) {
        if iters >= cap {
            return Err(ExecError::NonTerminating {
                loop_id: lp.id,
                cap,
            });
        }
        cx.regs[var] = v;
        exec_ops(&lp.body.ops, cx)?;
        v = v.wrapping_add(step);
        iters += 1;
    }
    cx.set(lp.var, v);
    Ok(iters)
}

/// The general path: re-resolve bound and step per iteration, exactly
/// like the bytecode engine's `exec_for` (step evaluated *after* the
/// body; `EvalOnce` memos are per loop entry).
fn generic_loop(lp: &ThLoop, cx: &mut ThCtx<'_>) -> Result<u64, ExecError> {
    let mut bound_cache: Option<i64> = None;
    let mut step_cache: Option<i64> = None;
    let mut iters: u64 = 0;
    loop {
        let v = cx.regs[lp.var as usize];
        let b = header_val(&lp.bound, cx, &mut bound_cache)?;
        if !(lp.cond)(v, b) {
            break;
        }
        if iters >= cx.while_cap {
            return Err(ExecError::NonTerminating {
                loop_id: lp.id,
                cap: cx.while_cap,
            });
        }
        exec_ops(&lp.body.ops, cx)?;
        let sv = header_val(&lp.step, cx, &mut step_cache)?;
        let cur = cx.regs[lp.var as usize];
        cx.set(lp.var, cur.wrapping_add(sv));
        iters += 1;
    }
    Ok(iters)
}

/// Hands one proven-parallel loop to the shared bytecode dispatcher: the
/// spine's registers and arrays move into a [`Machine`]/[`SpineArrays`]
/// pair (same numbering, no translation), the workers run the original
/// bytecode body, and the merged state moves back.  Returns `Ok(false)`
/// when the loop must run serially here instead.
fn dispatch_loop(lp: &ThLoop, cx: &mut ThCtx<'_>) -> Result<bool, ExecError> {
    let Some(d) = cx.dispatch else {
        return Ok(false);
    };
    // Cheap pre-checks before marshalling any state.
    if d.opts.threads <= 1 || !d.dispatchable.contains_key(&lp.id) {
        return Ok(false);
    }
    let prog = cx.prog;
    let mut m = Machine {
        regs: std::mem::take(&mut cx.regs),
        defined: std::mem::take(&mut cx.defined),
        write_iter: vec![NOT_WRITTEN; cx.nscalars],
        current_iter: 0,
        nscalars: cx.nscalars,
        consts: &prog.consts,
    };
    let mut sa = SpineArrays {
        slots: &prog.slots,
        arrays: std::mem::take(&mut cx.arrays),
    };
    let res = {
        let mut env = ExecEnvTiming {
            stats: &mut cx.stats,
            timing: cx.timing,
            while_cap: cx.while_cap,
        };
        try_dispatch_parallel(
            &d.dispatchable,
            d.opts,
            &mut m,
            &mut sa,
            &lp.bcfor,
            &mut env,
        )
    };
    cx.regs = m.regs;
    cx.defined = m.defined;
    cx.arrays = sa.arrays;
    res
}

// ---------------------------------------------------------------------------
// Array access helpers (error construction identical to `SpineArrays`).
// ---------------------------------------------------------------------------

#[inline(always)]
fn arr_read(cx: &ThCtx<'_>, slot: u32, idxs: &[i64]) -> Result<i64, ExecError> {
    let name = cx.prog.slots.array_name(ArraySlot(slot));
    let arr = cx.arrays[slot as usize]
        .as_ref()
        .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
    elem_at(name, arr, idxs).map(|flat| arr.data[flat])
}

#[inline(always)]
fn arr_write(cx: &mut ThCtx<'_>, slot: u32, idxs: &[i64], v: i64) -> Result<(), ExecError> {
    let name = cx.prog.slots.array_name(ArraySlot(slot));
    let arr = cx.arrays[slot as usize]
        .as_mut()
        .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
    let flat = elem_at(name, arr, idxs)?;
    arr.data[flat] = v;
    Ok(())
}

/// Rank-1 read fast path: a defined rank-1 array with an in-range index
/// hits `data` directly — no slot-name lookup, no rank-generic offset
/// loop.  Anything else (undefined slot, rank mismatch, out of bounds)
/// takes the slow path, whose error construction is the single source of
/// truth.  For rank 1 the row-major flat offset *is* the index, and
/// `data.len() == dims[0]`, so `data.get` is the whole bounds check.
#[inline(always)]
fn arr_read1(cx: &ThCtx<'_>, slot: u32, idx: i64) -> Result<i64, ExecError> {
    if let Some(arr) = cx.arrays[slot as usize].as_ref() {
        if arr.dims.len() == 1 && idx >= 0 {
            if let Some(&v) = arr.data.get(idx as usize) {
                return Ok(v);
            }
        }
    }
    arr_read(cx, slot, &[idx])
}

/// Rank-1 write fast path; see [`arr_read1`].
#[inline(always)]
fn arr_write1(cx: &mut ThCtx<'_>, slot: u32, idx: i64, v: i64) -> Result<(), ExecError> {
    if let Some(arr) = cx.arrays[slot as usize].as_mut() {
        if arr.dims.len() == 1 && idx >= 0 {
            if let Some(e) = arr.data.get_mut(idx as usize) {
                *e = v;
                return Ok(());
            }
        }
    }
    arr_write(cx, slot, &[idx], v)
}

/// Rank-2 read fast path: both extents checked, row-major offset inlined.
#[inline(always)]
fn arr_read2(cx: &ThCtx<'_>, slot: u32, i: i64, j: i64) -> Result<i64, ExecError> {
    if let Some(arr) = cx.arrays[slot as usize].as_ref() {
        if let [d0, d1] = arr.dims[..] {
            if i >= 0 && (i as usize) < d0 && j >= 0 && (j as usize) < d1 {
                return Ok(arr.data[i as usize * d1 + j as usize]);
            }
        }
    }
    arr_read(cx, slot, &[i, j])
}

/// Rank-2 write fast path; see [`arr_read2`].
#[inline(always)]
fn arr_write2(cx: &mut ThCtx<'_>, slot: u32, i: i64, j: i64, v: i64) -> Result<(), ExecError> {
    if let Some(arr) = cx.arrays[slot as usize].as_mut() {
        if let [d0, d1] = arr.dims[..] {
            if i >= 0 && (i as usize) < d0 && j >= 0 && (j as usize) < d1 {
                arr.data[i as usize * d1 + j as usize] = v;
                return Ok(());
            }
        }
    }
    arr_write(cx, slot, &[i, j], v)
}

// ---------------------------------------------------------------------------
// Handlers.  One `fn` per operator × operand shape: the lowering resolves
// the shape once so execution never re-inspects it.
// ---------------------------------------------------------------------------

/// Expands the three operand shapes (`rr` register/register, `ri`
/// register/immediate, `ir` immediate/register) of one binary operator
/// into dedicated handlers.
macro_rules! bin_handlers {
    ($rr:ident, $ri:ident, $ir:ident, |$x:ident, $y:ident| $body:expr) => {
        fn $rr(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
            let $x = cx.regs[op.b as usize];
            let $y = cx.regs[op.c as usize];
            let v = $body;
            cx.set(op.a, v);
            Ok(op.next)
        }
        fn $ri(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
            let $x = cx.regs[op.b as usize];
            let $y = op.imm;
            let v = $body;
            cx.set(op.a, v);
            Ok(op.next)
        }
        fn $ir(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
            let $x = op.imm;
            let $y = cx.regs[op.b as usize];
            let v = $body;
            cx.set(op.a, v);
            Ok(op.next)
        }
    };
}

bin_handlers!(th_add_rr, th_add_ri, th_add_ir, |x, y| x.wrapping_add(y));
bin_handlers!(th_sub_rr, th_sub_ri, th_sub_ir, |x, y| x.wrapping_sub(y));
bin_handlers!(th_mul_rr, th_mul_ri, th_mul_ir, |x, y| x.wrapping_mul(y));
bin_handlers!(th_div_rr, th_div_ri, th_div_ir, |x, y| x
    .checked_div(y)
    .ok_or(ExecError::DivisionByZero)?);
bin_handlers!(th_mod_rr, th_mod_ri, th_mod_ir, |x, y| x
    .checked_rem(y)
    .ok_or(ExecError::DivisionByZero)?);
bin_handlers!(th_lt_rr, th_lt_ri, th_lt_ir, |x, y| (x < y) as i64);
bin_handlers!(th_le_rr, th_le_ri, th_le_ir, |x, y| (x <= y) as i64);
bin_handlers!(th_gt_rr, th_gt_ri, th_gt_ir, |x, y| (x > y) as i64);
bin_handlers!(th_ge_rr, th_ge_ri, th_ge_ir, |x, y| (x >= y) as i64);
bin_handlers!(th_eq_rr, th_eq_ri, th_eq_ir, |x, y| (x == y) as i64);
bin_handlers!(th_ne_rr, th_ne_ri, th_ne_ir, |x, y| (x != y) as i64);

/// Expands the fused compare-and-branch shapes of one relational
/// operator: a true comparison takes `ext`, a false one `next` (the
/// lowering swaps which side carries the jump target for `jump_if =
/// false` branches).
macro_rules! cmpbr_handlers {
    ($rr:ident, $ri:ident, $ir:ident, |$x:ident, $y:ident| $test:expr) => {
        fn $rr(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
            let $x = cx.regs[op.b as usize];
            let $y = cx.regs[op.c as usize];
            Ok(if $test { op.ext } else { op.next })
        }
        fn $ri(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
            let $x = cx.regs[op.b as usize];
            let $y = op.imm;
            Ok(if $test { op.ext } else { op.next })
        }
        fn $ir(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
            let $x = op.imm;
            let $y = cx.regs[op.b as usize];
            Ok(if $test { op.ext } else { op.next })
        }
    };
}

cmpbr_handlers!(th_blt_rr, th_blt_ri, th_blt_ir, |x, y| x < y);
cmpbr_handlers!(th_ble_rr, th_ble_ri, th_ble_ir, |x, y| x <= y);
cmpbr_handlers!(th_bgt_rr, th_bgt_ri, th_bgt_ir, |x, y| x > y);
cmpbr_handlers!(th_bge_rr, th_bge_ri, th_bge_ir, |x, y| x >= y);
cmpbr_handlers!(th_beq_rr, th_beq_ri, th_beq_ir, |x, y| x == y);
cmpbr_handlers!(th_bne_rr, th_bne_ri, th_bne_ir, |x, y| x != y);

/// Expands the register and immediate shapes of one fused accumulate.
macro_rules! accum_handlers {
    ($rr:ident, $ri:ident, |$x:ident, $y:ident| $body:expr) => {
        fn $rr(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
            let $x = cx.regs[op.a as usize];
            let $y = cx.regs[op.b as usize];
            let v = $body;
            cx.set(op.a, v);
            Ok(op.next)
        }
        fn $ri(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
            let $x = cx.regs[op.a as usize];
            let $y = op.imm;
            let v = $body;
            cx.set(op.a, v);
            Ok(op.next)
        }
    };
}

accum_handlers!(th_acc_add_rr, th_acc_add_ri, |x, y| x.wrapping_add(y));
accum_handlers!(th_acc_sub_rr, th_acc_sub_ri, |x, y| x.wrapping_sub(y));
accum_handlers!(th_acc_mul_rr, th_acc_mul_ri, |x, y| x.wrapping_mul(y));

fn th_const(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    cx.set(op.a, op.imm);
    Ok(op.next)
}

fn th_copy(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let v = cx.regs[op.b as usize];
    cx.set(op.a, v);
    Ok(op.next)
}

fn th_neg(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let v = cx.regs[op.b as usize].wrapping_neg();
    cx.set(op.a, v);
    Ok(op.next)
}

fn th_not(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let v = (cx.regs[op.b as usize] == 0) as i64;
    cx.set(op.a, v);
    Ok(op.next)
}

fn th_load1(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let i = cx.regs[op.c as usize];
    let v = arr_read1(cx, op.b, i)?;
    cx.set(op.a, v);
    Ok(op.next)
}

fn th_load_n(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let rank = op.ext as usize;
    let base = op.c as usize;
    let mut buf = [0i64; 4];
    let v = if rank <= 4 {
        buf[..rank].copy_from_slice(&cx.regs[base..base + rank]);
        arr_read(cx, op.b, &buf[..rank])?
    } else {
        let idxs: Vec<i64> = cx.regs[base..base + rank].to_vec();
        arr_read(cx, op.b, &idxs)?
    };
    cx.set(op.a, v);
    Ok(op.next)
}

fn th_store1(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let v = cx.regs[op.a as usize];
    let i = cx.regs[op.c as usize];
    arr_write1(cx, op.b, i, v)?;
    Ok(op.next)
}

fn th_store_n(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let rank = op.ext as usize;
    let base = op.c as usize;
    let v = cx.regs[op.a as usize];
    let mut buf = [0i64; 4];
    if rank <= 4 {
        buf[..rank].copy_from_slice(&cx.regs[base..base + rank]);
        arr_write(cx, op.b, &buf[..rank], v)?;
    } else {
        let idxs: Vec<i64> = cx.regs[base..base + rank].to_vec();
        arr_write(cx, op.b, &idxs, v)?;
    }
    Ok(op.next)
}

fn th_decl(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let rank = op.ext as usize;
    let base = op.c as usize;
    let dims: Vec<usize> = cx.regs[base..base + rank]
        .iter()
        .map(|&d| d.max(0) as usize)
        .collect();
    cx.arrays[op.b as usize] = Some(ArrayVal::zeros(dims));
    Ok(op.next)
}

fn th_jz(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    Ok(if cx.regs[op.a as usize] == 0 {
        op.ext
    } else {
        op.next
    })
}

fn th_jnz(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    Ok(if cx.regs[op.a as usize] != 0 {
        op.ext
    } else {
        op.next
    })
}

fn th_jump(op: &ThOp, _cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    Ok(op.ext)
}

fn th_for(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let prog = cx.prog;
    run_loop(&prog.loops[op.ext as usize], cx)?;
    Ok(op.next)
}

fn th_wenter(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let id = cx.prog.while_ids[op.ext as usize];
    let start = cx.timing.then(Instant::now);
    cx.guards.push(WGuard {
        id,
        iters: 0,
        start,
    });
    Ok(op.next)
}

fn th_witer(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let cap = cx.while_cap;
    let g = cx.guards.last_mut().expect("unbalanced while guards");
    debug_assert_eq!(g.id, cx.prog.while_ids[op.ext as usize]);
    if g.iters >= cap {
        return Err(ExecError::NonTerminating { loop_id: g.id, cap });
    }
    g.iters += 1;
    Ok(op.next)
}

fn th_wexit(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let g = cx.guards.pop().expect("unbalanced while guards");
    if let Some(t) = g.start {
        cx.stats
            .record(g.id, g.iters, t.elapsed().as_secs_f64(), ExecMode::Serial);
    }
    Ok(op.next)
}

fn th_ldld(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    // Inner read first, then the outer — the error order of the two loads
    // the superinstruction replaced.
    let i = cx.regs[op.c as usize];
    let inner = arr_read1(cx, op.ext, i)?;
    let v = arr_read1(cx, op.b, inner)?;
    cx.set(op.a, v);
    Ok(op.next)
}

fn th_load2(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let v = arr_read2(cx, op.ext, cx.regs[op.b as usize], cx.regs[op.c as usize])?;
    cx.set(op.a, v);
    Ok(op.next)
}

fn th_store2(op: &ThOp, cx: &mut ThCtx<'_>) -> Result<u32, ExecError> {
    let v = cx.regs[op.a as usize];
    arr_write2(
        cx,
        op.ext,
        cx.regs[op.b as usize],
        cx.regs[op.c as usize],
        v,
    )?;
    Ok(op.next)
}

/// Operand shape of a lowered binary operation.
#[derive(Clone, Copy)]
enum Shape {
    /// Both operands in registers.
    Rr,
    /// Left register, right immediate.
    Ri,
    /// Left immediate, right register.
    Ir,
}

fn bin_handler(op: BinOp, shape: Shape) -> Handler {
    macro_rules! pick {
        ($rr:ident, $ri:ident, $ir:ident) => {
            match shape {
                Shape::Rr => $rr,
                Shape::Ri => $ri,
                Shape::Ir => $ir,
            }
        };
    }
    match op {
        BinOp::Add => pick!(th_add_rr, th_add_ri, th_add_ir),
        BinOp::Sub => pick!(th_sub_rr, th_sub_ri, th_sub_ir),
        BinOp::Mul => pick!(th_mul_rr, th_mul_ri, th_mul_ir),
        BinOp::Div => pick!(th_div_rr, th_div_ri, th_div_ir),
        BinOp::Mod => pick!(th_mod_rr, th_mod_ri, th_mod_ir),
        BinOp::Lt => pick!(th_lt_rr, th_lt_ri, th_lt_ir),
        BinOp::Le => pick!(th_le_rr, th_le_ri, th_le_ir),
        BinOp::Gt => pick!(th_gt_rr, th_gt_ri, th_gt_ir),
        BinOp::Ge => pick!(th_ge_rr, th_ge_ri, th_ge_ir),
        BinOp::Eq => pick!(th_eq_rr, th_eq_ri, th_eq_ir),
        BinOp::Ne => pick!(th_ne_rr, th_ne_ri, th_ne_ir),
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops compile to jumps"),
    }
}

fn cmpbr_handler(op: BinOp, shape: Shape) -> Handler {
    macro_rules! pick {
        ($rr:ident, $ri:ident, $ir:ident) => {
            match shape {
                Shape::Rr => $rr,
                Shape::Ri => $ri,
                Shape::Ir => $ir,
            }
        };
    }
    match op {
        BinOp::Lt => pick!(th_blt_rr, th_blt_ri, th_blt_ir),
        BinOp::Le => pick!(th_ble_rr, th_ble_ri, th_ble_ir),
        BinOp::Gt => pick!(th_bgt_rr, th_bgt_ri, th_bgt_ir),
        BinOp::Ge => pick!(th_bge_rr, th_bge_ri, th_bge_ir),
        BinOp::Eq => pick!(th_beq_rr, th_beq_ri, th_beq_ir),
        BinOp::Ne => pick!(th_bne_rr, th_bne_ri, th_bne_ir),
        _ => unreachable!("CmpBranch carries relational operators only"),
    }
}

fn accum_handler(op: AssignOp, imm: bool) -> Handler {
    match (op, imm) {
        (AssignOp::AddAssign, false) => th_acc_add_rr,
        (AssignOp::AddAssign, true) => th_acc_add_ri,
        (AssignOp::SubAssign, false) => th_acc_sub_rr,
        (AssignOp::SubAssign, true) => th_acc_sub_ri,
        (AssignOp::MulAssign, false) => th_acc_mul_rr,
        (AssignOp::MulAssign, true) => th_acc_mul_ri,
        (AssignOp::Assign, _) => unreachable!("plain assignment never reaches Accum"),
    }
}

fn cmp_fn(op: BinOp) -> fn(i64, i64) -> bool {
    match op {
        BinOp::Lt => |a, b| a < b,
        BinOp::Le => |a, b| a <= b,
        BinOp::Gt => |a, b| a > b,
        BinOp::Ge => |a, b| a >= b,
        BinOp::Eq => |a, b| a == b,
        BinOp::Ne => |a, b| a != b,
        // Mirror `serial::compare`: anything non-relational is an
        // immediately false exit test, not a panic.
        _ => |_, _| false,
    }
}

// ---------------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------------

/// Which pre-stored field of a lowered op holds a branch target awaiting
/// index translation.
enum PatchField {
    Ext,
    Next,
}

struct Lower<'b> {
    bc: &'b BytecodeProgram,
    nscalars: u32,
    loops: Vec<ThLoop>,
    while_ids: Vec<LoopId>,
}

fn push(out: &mut Vec<ThOp>, run: Handler) -> &mut ThOp {
    let next = out.len() as u32 + 1;
    out.push(ThOp {
        run,
        a: 0,
        b: 0,
        c: 0,
        imm: 0,
        next,
        ext: 0,
    });
    out.last_mut().expect("just pushed")
}

/// Instruction indices that are branch targets (plus the end index).
fn jump_targets(code: &[Instr]) -> Vec<bool> {
    let mut t = vec![false; code.len() + 1];
    for i in code {
        match i {
            Instr::Jz { target, .. }
            | Instr::Jnz { target, .. }
            | Instr::Jump { target }
            | Instr::CmpBranch { target, .. } => t[*target as usize] = true,
            _ => {}
        }
    }
    t
}

/// Per-register read counts within one block (`For` headers and bodies
/// are separate blocks with their own temps, so they contribute
/// nothing): constant fusion requires the temp to have exactly one
/// reader.
fn read_counts(code: &[Instr]) -> HashMap<u32, u32> {
    fn bump(n: &mut HashMap<u32, u32>, r: Reg) {
        *n.entry(r.0).or_insert(0) += 1;
    }
    let mut n = HashMap::new();
    for i in code {
        match i {
            Instr::Copy { src, .. } | Instr::Neg { src, .. } | Instr::Not { src, .. } => {
                bump(&mut n, *src);
            }
            Instr::Bin { a, b, .. } => {
                bump(&mut n, *a);
                bump(&mut n, *b);
            }
            Instr::Accum { dst, src, .. } => {
                bump(&mut n, *dst);
                bump(&mut n, *src);
            }
            Instr::Load { idx, rank, .. } => {
                for k in 0..*rank as u32 {
                    bump(&mut n, Reg(idx.0 + k));
                }
            }
            Instr::Store { idx, rank, src, .. } => {
                for k in 0..*rank as u32 {
                    bump(&mut n, Reg(idx.0 + k));
                }
                bump(&mut n, *src);
            }
            Instr::DeclArray { dims, rank, .. } => {
                for k in 0..*rank as u32 {
                    bump(&mut n, Reg(dims.0 + k));
                }
            }
            Instr::Jz { cond, .. } | Instr::Jnz { cond, .. } => bump(&mut n, *cond),
            Instr::LoadLoad { idx, .. } => bump(&mut n, *idx),
            Instr::CmpBranch { a, b, .. } => {
                bump(&mut n, *a);
                bump(&mut n, *b);
            }
            Instr::Load2 { i0, i1, .. } => {
                bump(&mut n, *i0);
                bump(&mut n, *i1);
            }
            Instr::Store2 { i0, i1, src, .. } => {
                bump(&mut n, *i0);
                bump(&mut n, *i1);
                bump(&mut n, *src);
            }
            Instr::Const { .. }
            | Instr::Jump { .. }
            | Instr::For(_)
            | Instr::WhileEnter { .. }
            | Instr::WhileIter { .. }
            | Instr::WhileExit { .. } => {}
        }
    }
    n
}

/// Every register any instruction in `code` writes, recursing through
/// nested loops (headers, induction variables and bodies): the safety
/// set for the counted-loop upgrade.
fn collect_writes(code: &[Instr], out: &mut HashSet<u32>) {
    for i in code {
        match i {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Accum { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::Not { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::LoadLoad { dst, .. }
            | Instr::Load2 { dst, .. } => {
                out.insert(dst.0);
            }
            Instr::For(f) => {
                out.insert(f.var.0);
                collect_writes(&f.init.code, out);
                collect_writes(&f.bound.code, out);
                collect_writes(&f.step.code, out);
                collect_writes(&f.body, out);
            }
            _ => {}
        }
    }
}

impl Lower<'_> {
    fn lower_block(&mut self, code: &[Instr], result: Option<Reg>) -> ThBlock {
        let targets = jump_targets(code);
        let reads = read_counts(code);
        let mut out: Vec<ThOp> = Vec::with_capacity(code.len());
        let mut map = vec![0u32; code.len() + 1];
        let mut patches: Vec<(usize, u32, PatchField)> = Vec::new();
        let mut i = 0usize;
        while i < code.len() {
            let pos = out.len() as u32;
            map[i] = pos;
            if let Instr::Const { dst: t, pool } = &code[i] {
                // Constant fusion: a temp constant with exactly one
                // reader directly below it (and no branch landing
                // between the two) becomes the consumer's immediate.
                if t.0 >= self.nscalars
                    && reads.get(&t.0).copied() == Some(1)
                    && result != Some(*t)
                    && i + 1 < code.len()
                    && !targets[i + 1]
                {
                    let imm = self.bc.consts[*pool as usize];
                    if try_fuse(&code[i + 1], *t, imm, &mut out, &mut patches) {
                        map[i + 1] = pos;
                        i += 2;
                        continue;
                    }
                }
            }
            self.emit(&code[i], &mut out, &mut patches);
            i += 1;
        }
        map[code.len()] = out.len() as u32;
        for (idx, old, field) in patches {
            let n = map[old as usize];
            match field {
                PatchField::Ext => out[idx].ext = n,
                PatchField::Next => out[idx].next = n,
            }
        }
        ThBlock {
            ops: out,
            result: result.map_or(0, |r| r.0),
        }
    }

    fn emit(
        &mut self,
        ins: &Instr,
        out: &mut Vec<ThOp>,
        patches: &mut Vec<(usize, u32, PatchField)>,
    ) {
        let pos = out.len();
        match ins {
            Instr::Const { dst, pool } => {
                let imm = self.bc.consts[*pool as usize];
                let o = push(out, th_const);
                o.a = dst.0;
                o.imm = imm;
            }
            Instr::Copy { dst, src } => {
                let o = push(out, th_copy);
                o.a = dst.0;
                o.b = src.0;
            }
            Instr::Bin { op, dst, a, b } => {
                let o = push(out, bin_handler(*op, Shape::Rr));
                o.a = dst.0;
                o.b = a.0;
                o.c = b.0;
            }
            Instr::Accum { op, dst, src } => {
                let o = push(out, accum_handler(*op, false));
                o.a = dst.0;
                o.b = src.0;
            }
            Instr::Neg { dst, src } => {
                let o = push(out, th_neg);
                o.a = dst.0;
                o.b = src.0;
            }
            Instr::Not { dst, src } => {
                let o = push(out, th_not);
                o.a = dst.0;
                o.b = src.0;
            }
            Instr::Load {
                dst,
                array,
                idx,
                rank,
            } => {
                let o = push(out, if *rank == 1 { th_load1 } else { th_load_n });
                o.a = dst.0;
                o.b = array.0;
                o.c = idx.0;
                o.ext = *rank as u32;
            }
            Instr::Store {
                array,
                idx,
                rank,
                src,
            } => {
                let o = push(out, if *rank == 1 { th_store1 } else { th_store_n });
                o.a = src.0;
                o.b = array.0;
                o.c = idx.0;
                o.ext = *rank as u32;
            }
            Instr::DeclArray { array, dims, rank } => {
                let o = push(out, th_decl);
                o.b = array.0;
                o.c = dims.0;
                o.ext = *rank as u32;
            }
            Instr::Jz { cond, target } => {
                let o = push(out, th_jz);
                o.a = cond.0;
                patches.push((pos, *target, PatchField::Ext));
            }
            Instr::Jnz { cond, target } => {
                let o = push(out, th_jnz);
                o.a = cond.0;
                patches.push((pos, *target, PatchField::Ext));
            }
            Instr::Jump { target } => {
                push(out, th_jump);
                patches.push((pos, *target, PatchField::Ext));
            }
            Instr::For(f) => {
                let li = self.lower_for(f);
                let o = push(out, th_for);
                o.ext = li;
            }
            Instr::WhileEnter { id } => {
                let wi = self.while_ids.len() as u32;
                self.while_ids.push(*id);
                let o = push(out, th_wenter);
                o.ext = wi;
            }
            Instr::WhileIter { id } => {
                let wi = self.while_ids.len() as u32;
                self.while_ids.push(*id);
                let o = push(out, th_witer);
                o.ext = wi;
            }
            Instr::WhileExit { id } => {
                let wi = self.while_ids.len() as u32;
                self.while_ids.push(*id);
                let o = push(out, th_wexit);
                o.ext = wi;
            }
            Instr::LoadLoad {
                dst,
                outer,
                inner,
                idx,
            } => {
                let o = push(out, th_ldld);
                o.a = dst.0;
                o.b = outer.0;
                o.c = idx.0;
                o.ext = inner.0;
            }
            Instr::CmpBranch {
                op,
                a,
                b,
                target,
                jump_if,
            } => {
                let o = push(out, cmpbr_handler(*op, Shape::Rr));
                o.b = a.0;
                o.c = b.0;
                if *jump_if {
                    patches.push((pos, *target, PatchField::Ext));
                } else {
                    o.ext = pos as u32 + 1;
                    patches.push((pos, *target, PatchField::Next));
                }
            }
            Instr::Load2 { dst, array, i0, i1 } => {
                let o = push(out, th_load2);
                o.a = dst.0;
                o.b = i0.0;
                o.c = i1.0;
                o.ext = array.0;
            }
            Instr::Store2 { array, i0, i1, src } => {
                let o = push(out, th_store2);
                o.a = src.0;
                o.b = i0.0;
                o.c = i1.0;
                o.ext = array.0;
            }
        }
    }

    fn lower_for(&mut self, f: &BcFor) -> u32 {
        let init = self.lower_header(&f.init, f.init_fast);
        let bound = self.lower_header(&f.bound, f.bound_fast);
        let step = self.lower_header(&f.step, f.step_fast);
        let body = self.lower_block(&f.body, None);
        let mut writes = HashSet::new();
        collect_writes(&f.body, &mut writes);
        let inv = |r: u32| !writes.contains(&r) && r != f.var.0;
        let step_ok = match &step {
            ThHeader::Imm(_) => true,
            ThHeader::Reg(r) => inv(*r),
            _ => false,
        };
        let bound_ok = match &bound {
            ThHeader::Imm(_) => true,
            ThHeader::Reg(r) => inv(*r),
            ThHeader::Once(_) => true,
            ThHeader::Every(_) => false,
        };
        let counted = !writes.contains(&f.var.0) && step_ok && bound_ok;
        let idx = self.loops.len() as u32;
        self.loops.push(ThLoop {
            id: f.id,
            var: f.var.0,
            cond: cmp_fn(f.cond_op),
            init,
            bound,
            step,
            body,
            counted,
            bcfor: f.clone(),
        });
        idx
    }

    fn lower_header(&mut self, e: &BcExpr, fast: HeaderFast) -> ThHeader {
        match fast {
            HeaderFast::Const(v) => ThHeader::Imm(v),
            HeaderFast::Reg(r) => ThHeader::Reg(r.0),
            HeaderFast::EvalOnce => ThHeader::Once(self.lower_block(&e.code, Some(e.result))),
            HeaderFast::Eval => {
                // O0 streams carry no fast facts; recover the two trivial
                // shapes (header blocks only write temps, so skipping the
                // block is unobservable and yields the same value).
                if e.code.is_empty() {
                    return ThHeader::Reg(e.result.0);
                }
                if let [Instr::Const { dst, pool }] = e.code.as_slice() {
                    if *dst == e.result {
                        return ThHeader::Imm(self.bc.consts[*pool as usize]);
                    }
                }
                ThHeader::Every(self.lower_block(&e.code, Some(e.result)))
            }
        }
    }
}

/// Emits the fused immediate form of `next` when it is a fusable
/// single-reader consumer of the constant in `t`; returns `false` to fall
/// back to plain emission.
fn try_fuse(
    next: &Instr,
    t: Reg,
    imm: i64,
    out: &mut Vec<ThOp>,
    patches: &mut Vec<(usize, u32, PatchField)>,
) -> bool {
    match next {
        Instr::Bin { op, dst, a, b }
            if (*a == t) != (*b == t) && !matches!(op, BinOp::And | BinOp::Or) =>
        {
            let (h, reg) = if *b == t {
                (bin_handler(*op, Shape::Ri), a.0)
            } else {
                (bin_handler(*op, Shape::Ir), b.0)
            };
            let o = push(out, h);
            o.a = dst.0;
            o.b = reg;
            o.imm = imm;
            true
        }
        Instr::CmpBranch {
            op,
            a,
            b,
            target,
            jump_if,
        } if (*a == t) != (*b == t) => {
            let (h, reg) = if *b == t {
                (cmpbr_handler(*op, Shape::Ri), a.0)
            } else {
                (cmpbr_handler(*op, Shape::Ir), b.0)
            };
            let pos = out.len();
            let o = push(out, h);
            o.b = reg;
            o.imm = imm;
            if *jump_if {
                patches.push((pos, *target, PatchField::Ext));
            } else {
                o.ext = pos as u32 + 1;
                patches.push((pos, *target, PatchField::Next));
            }
            true
        }
        Instr::Accum { op, dst, src } if *src == t && *dst != t => {
            let o = push(out, accum_handler(*op, true));
            o.a = dst.0;
            o.imm = imm;
            true
        }
        _ => false,
    }
}

/// Lowers one bytecode stream into its direct-threaded form.  Pure and
/// deterministic; called once per `(Artifacts, opt level)` through
/// [`Artifacts::engine_artifact`].
pub(crate) fn lower(bc: &BytecodeProgram) -> ThProgram {
    THREADED_LOWERINGS.fetch_add(1, Ordering::Relaxed);
    let mut lw = Lower {
        bc,
        nscalars: bc.slots.scalar_count() as u32,
        loops: Vec::new(),
        while_ids: Vec::new(),
    };
    let main = lw.lower_block(&bc.main, None);
    ThProgram {
        main,
        loops: lw.loops,
        while_ids: lw.while_ids,
        consts: bc.consts.clone(),
        slots: bc.slots.clone(),
        nregs: bc.nregs,
        nscalars: bc.slots.scalar_count(),
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// The lowered program for `level`, creating and caching it on the
/// artifacts on first use.  Returns the shared `Arc`; downcast with
/// [`th_program`].
fn lowered(artifacts: &Artifacts, level: OptLevel) -> Arc<dyn EngineArtifact> {
    artifacts.engine_artifact(
        "threaded",
        ss_parallelizer::ExtArtifacts::level_key(level),
        || Arc::new(lower(artifacts.bytecode_at(level))),
    )
}

/// Recovers the concrete lowering from the engine-artifact slot.
fn th_program(arc: &Arc<dyn EngineArtifact>) -> &ThProgram {
    arc.as_any()
        .downcast_ref::<ThProgram>()
        .expect("the threaded engine owns its artifact slots")
}

fn run_threaded<'p>(
    prog: &'p ThProgram,
    mut heap: Heap,
    opts: &ExecOptions,
    dispatch: Option<&'p ThDispatch<'p>>,
) -> Result<ExecOutcome, ExecError> {
    let start = Instant::now();
    let mut cx = ThCtx {
        prog,
        regs: vec![0; prog.nregs],
        defined: vec![false; prog.nscalars],
        arrays: prog
            .slots
            .array_names()
            .iter()
            .map(|name| heap.arrays.remove(name))
            .collect(),
        guards: Vec::new(),
        stats: ExecStats::default(),
        timing: true,
        while_cap: opts.while_cap,
        nscalars: prog.nscalars,
        dispatch,
    };
    for (i, name) in prog.slots.scalar_names().iter().enumerate() {
        if let Some(&v) = heap.scalars.get(name) {
            cx.regs[i] = v;
            cx.defined[i] = true;
        }
    }
    exec_ops(&prog.main.ops, &mut cx)?;
    for (i, arr) in cx.arrays.into_iter().enumerate() {
        if let Some(a) = arr {
            heap.arrays.insert(prog.slots.array_names()[i].clone(), a);
        }
    }
    for (i, name) in prog.slots.scalar_names().iter().enumerate() {
        if cx.defined[i] {
            heap.scalars.insert(name.clone(), cx.regs[i]);
        }
    }
    cx.stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome {
        heap,
        stats: cx.stats,
    })
}

/// Serial execution through the threaded tier.
pub(super) fn run_serial_threaded(
    artifacts: &Artifacts,
    heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let arc = lowered(artifacts, opts.opt_level);
    run_threaded(th_program(&arc), heap, opts, None)
}

/// Parallel execution: the threaded spine with proven loops handed to the
/// shared bytecode dispatcher.
pub(super) fn run_parallel_threaded(
    artifacts: &Artifacts,
    heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let d = ThDispatch {
        dispatchable: dispatchable_map(&artifacts.report),
        opts,
    };
    let arc = lowered(artifacts, opts.opt_level);
    run_threaded(th_program(&arc), heap, opts, Some(&d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifacts(src: &str) -> Artifacts {
        Artifacts::compile_source("threaded-test", src).expect("test program compiles")
    }

    fn run_both(src: &str, heap: &Heap, level: OptLevel) -> (Heap, Heap) {
        let art = artifacts(src);
        let opts = ExecOptions {
            opt_level: level,
            ..ExecOptions::default()
        };
        let bc = super::super::bytecode::run_serial_bytecode(
            art.bytecode_at(level),
            heap.clone(),
            &opts,
        )
        .expect("bytecode run succeeds");
        let th = run_serial_threaded(&art, heap.clone(), &opts).expect("threaded run succeeds");
        (bc.heap, th.heap)
    }

    #[test]
    fn threaded_matches_bytecode_on_a_csr_style_kernel() {
        let src = r#"
            for (i = 0; i < nnz; i++) { col[i] = (i * 3) % n; val[i] = i + 1; }
            for (i = 0; i < n; i++) { x[i] = i + 2; }
            for (i = 0; i < n; i++) {
                s = 0;
                for (j = rowptr[i]; j < rowptr[i + 1]; j++) {
                    s += val[j] * x[col[j]];
                }
                y[i] = s;
            }
        "#;
        let heap = Heap::new()
            .with_scalar("n", 4)
            .with_scalar("nnz", 6)
            .with_array("rowptr", vec![0, 2, 3, 5, 6])
            .with_array("col", vec![0; 6])
            .with_array("val", vec![0; 6])
            .with_array("x", vec![0; 4])
            .with_array("y", vec![0; 4]);
        for level in [OptLevel::O0, OptLevel::O1] {
            let (bc, th) = run_both(src, &heap, level);
            assert_eq!(bc, th, "heaps diverge at {level:?}");
        }
    }

    #[test]
    fn threaded_matches_bytecode_on_branches_whiles_and_errors() {
        let src = r#"
            n = 10; acc = 0; i = 0;
            while (i < n) {
                if (i % 2 == 0) { acc += i * 3; } else { acc -= 1; }
                i = i + 1;
            }
        "#;
        for level in [OptLevel::O0, OptLevel::O1] {
            let (bc, th) = run_both(src, &Heap::new(), level);
            assert_eq!(bc, th, "heaps diverge at {level:?}");
        }
        // Division by zero faults identically.
        let art = artifacts("a = 4; b = 0; c = a / b;");
        let opts = ExecOptions::default();
        let err = run_serial_threaded(&art, Heap::new(), &opts).unwrap_err();
        assert!(matches!(err, ExecError::DivisionByZero));
    }

    #[test]
    fn counted_loops_preserve_the_induction_value_after_exit() {
        // The fast path keeps the induction value in a local; the
        // post-loop register must still hold the first failing value.
        let (bc, th) = run_both(
            "k = 0; for (i = 3; i < 11; i = i + 2) { k += i; } m = i;",
            &Heap::new(),
            OptLevel::O1,
        );
        assert_eq!(bc, th);
    }

    #[test]
    fn lowering_is_cached_per_artifact_and_level() {
        // Pointer identity across runs: the artifact slot is filled once
        // and reused (the process-wide counter assertion, which needs
        // serialization against other tests, lives in the `compile_once`
        // integration suite).
        let art = artifacts("x = 1; y = x + 2;");
        let opts = ExecOptions::default();
        for _ in 0..3 {
            run_serial_threaded(&art, Heap::new(), &opts).expect("runs");
        }
        let a1 = lowered(&art, OptLevel::O1);
        let a2 = lowered(&art, OptLevel::O1);
        let p1 = th_program(&a1) as *const ThProgram;
        let p2 = th_program(&a2) as *const ThProgram;
        assert_eq!(p1, p2);
    }
}
