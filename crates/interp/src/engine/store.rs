//! The tree-walking engines' pluggable stores: where scalar and array
//! accesses land during AST execution.
//!
//! | store           | used by                       | backing            |
//! |-----------------|-------------------------------|--------------------|
//! | `HeapStore`   | serial engine, parallel spine | whole heap (+ inspector recording) |
//! | `WorkerStore` | AST parallel workers          | shared arrays + private scalars |
//! | discovery store | input synthesis               | growable recording heap (in `inputs`) |

use super::ExecError;
use crate::heap::{ArrayVal, Heap};
use ss_ir::ast::LoopId;
use std::collections::HashMap;

/// Where scalar and array accesses land during AST execution.
pub(crate) trait Store {
    /// Reads a scalar; undefined scalars read as 0 (C-style zero init, and
    /// it keeps discovery, serial and worker behavior identical).
    fn scalar(&mut self, name: &str) -> i64;
    /// Writes a scalar, creating it if needed.
    fn set_scalar(&mut self, name: &str, v: i64);
    /// Reads one array element.
    fn read_elem(&mut self, array: &str, indices: &[i64]) -> Result<i64, ExecError>;
    /// Writes one array element.
    fn write_elem(&mut self, array: &str, indices: &[i64], v: i64) -> Result<(), ExecError>;
    /// Declares an array with the given extents (zero-filled).
    fn declare_array(&mut self, name: &str, dims: Vec<usize>) -> Result<(), ExecError>;
    /// Called when a serially executed `for` loop is entered.
    fn loop_enter(&mut self, _id: LoopId) {}
    /// Called before each iteration of a serially executed `for` loop.
    fn loop_iter(&mut self, _id: LoopId, _iter: usize) {}
    /// Called when the loop exits; an inspecting store returns whether the
    /// observed accesses were free of cross-iteration conflicts.
    fn loop_exit(&mut self, _id: LoopId) -> Option<bool> {
        None
    }
}

/// Store over the whole heap, optionally recording accesses for the
/// inspector baseline.
pub(crate) struct HeapStore<'h> {
    pub heap: &'h mut Heap,
    inspector: Option<InspectorRec>,
}

impl<'h> HeapStore<'h> {
    pub fn new(heap: &'h mut Heap, inspect: bool) -> HeapStore<'h> {
        HeapStore {
            heap,
            inspector: inspect.then(InspectorRec::default),
        }
    }

    fn note(&mut self, array: &str, indices: &[i64], write: bool) {
        if let Some(rec) = &mut self.inspector {
            rec.note(array, indices, write);
        }
    }

    /// Marks every active inspector frame blind: a loop is about to run on
    /// worker threads whose array accesses the recording cannot see.
    pub(crate) fn mark_frames_blind(&mut self) {
        if let Some(rec) = &mut self.inspector {
            for frame in &mut rec.frames {
                frame.blind = true;
            }
        }
    }
}

/// Cross-iteration conflict recording: what a runtime inspector would see.
/// One frame per (nested) serially-executed loop; a frame flags a conflict
/// when an element is touched from two different iterations and at least one
/// touch is a write.
#[derive(Default)]
struct InspectorRec {
    frames: Vec<InspectorFrame>,
}

struct InspectorFrame {
    id: LoopId,
    iter: usize,
    seen: HashMap<(String, Vec<i64>), (usize, bool)>,
    conflict: bool,
    overflow: bool,
    /// A parallel loop was dispatched while this frame was active: worker
    /// array accesses bypass the recording, so no verdict can be given.
    blind: bool,
}

/// Above this many distinct elements per loop invocation the recording stops
/// and the verdict becomes "not licensed" (an unbounded inspector would be
/// unrealistic anyway).
const INSPECTOR_ELEMENT_CAP: usize = 1 << 21;

impl InspectorRec {
    fn note(&mut self, array: &str, indices: &[i64], write: bool) {
        for frame in &mut self.frames {
            if frame.conflict || frame.overflow || frame.blind {
                continue;
            }
            if frame.seen.len() >= INSPECTOR_ELEMENT_CAP {
                frame.overflow = true;
                continue;
            }
            let key = (array.to_string(), indices.to_vec());
            match frame.seen.get_mut(&key) {
                Some((first_iter, wrote)) => {
                    if *first_iter != frame.iter && (write || *wrote) {
                        frame.conflict = true;
                    }
                    *wrote = *wrote || write;
                }
                None => {
                    frame.seen.insert(key, (frame.iter, write));
                }
            }
        }
    }
}

impl Store for HeapStore<'_> {
    fn scalar(&mut self, name: &str) -> i64 {
        self.heap.scalars.get(name).copied().unwrap_or(0)
    }

    fn set_scalar(&mut self, name: &str, v: i64) {
        // Fast path without the String allocation: loop counters are
        // rewritten every iteration.
        match self.heap.scalars.get_mut(name) {
            Some(slot) => *slot = v,
            None => {
                self.heap.scalars.insert(name.to_string(), v);
            }
        }
    }

    fn read_elem(&mut self, array: &str, indices: &[i64]) -> Result<i64, ExecError> {
        self.note(array, indices, false);
        let a = self
            .heap
            .arrays
            .get(array)
            .ok_or_else(|| ExecError::UndefinedArray(array.to_string()))?;
        elem_at(array, a, indices).map(|flat| a.data[flat])
    }

    fn write_elem(&mut self, array: &str, indices: &[i64], v: i64) -> Result<(), ExecError> {
        self.note(array, indices, true);
        let a = self
            .heap
            .arrays
            .get_mut(array)
            .ok_or_else(|| ExecError::UndefinedArray(array.to_string()))?;
        let flat = elem_at(array, a, indices)?;
        a.data[flat] = v;
        Ok(())
    }

    fn declare_array(&mut self, name: &str, dims: Vec<usize>) -> Result<(), ExecError> {
        self.heap
            .arrays
            .insert(name.to_string(), ArrayVal::zeros(dims));
        Ok(())
    }

    fn loop_enter(&mut self, id: LoopId) {
        if let Some(rec) = &mut self.inspector {
            rec.frames.push(InspectorFrame {
                id,
                iter: 0,
                seen: HashMap::new(),
                conflict: false,
                overflow: false,
                blind: false,
            });
        }
    }

    fn loop_iter(&mut self, id: LoopId, iter: usize) {
        if let Some(rec) = &mut self.inspector {
            if let Some(frame) = rec.frames.last_mut() {
                debug_assert_eq!(frame.id, id);
                frame.iter = iter;
            }
        }
    }

    fn loop_exit(&mut self, id: LoopId) -> Option<bool> {
        let rec = self.inspector.as_mut()?;
        let frame = rec.frames.pop()?;
        debug_assert_eq!(frame.id, id);
        if frame.blind {
            return None;
        }
        Some(!frame.conflict && !frame.overflow)
    }
}

pub(crate) fn elem_at(name: &str, a: &ArrayVal, indices: &[i64]) -> Result<usize, ExecError> {
    if indices.len() != a.dims.len() {
        return Err(ExecError::ArityMismatch {
            array: name.to_string(),
            expected: a.dims.len(),
            got: indices.len(),
        });
    }
    a.flat_index(indices).ok_or_else(|| ExecError::OutOfBounds {
        array: name.to_string(),
        indices: indices.to_vec(),
        dims: a.dims.clone(),
    })
}

/// Raw views of every heap array, shareable across worker threads.
pub(crate) struct SharedArrays {
    map: HashMap<String, SharedArray>,
}

struct SharedArray {
    /// `*mut i64` of the array's storage, smuggled as usize for `Send`.
    ptr: usize,
    dims: Vec<usize>,
    len: usize,
}

// SAFETY: workers only access disjoint elements (the property the
// compile-time analysis proved before the loop was dispatched); the Vec
// storage itself is neither grown nor freed while workers run.
unsafe impl Sync for SharedArrays {}

impl SharedArrays {
    pub fn capture(heap: &mut Heap) -> SharedArrays {
        let map = heap
            .arrays
            .iter_mut()
            .map(|(name, a)| {
                (
                    name.clone(),
                    SharedArray {
                        ptr: a.data.as_mut_ptr() as usize,
                        dims: a.dims.clone(),
                        len: a.data.len(),
                    },
                )
            })
            .collect();
        SharedArrays { map }
    }

    fn flat(&self, array: &str, indices: &[i64]) -> Result<(usize, usize), ExecError> {
        let a = self
            .map
            .get(array)
            .ok_or_else(|| ExecError::UndefinedArray(array.to_string()))?;
        if indices.len() != a.dims.len() {
            return Err(ExecError::ArityMismatch {
                array: array.to_string(),
                expected: a.dims.len(),
                got: indices.len(),
            });
        }
        let flat = crate::heap::row_major_flat(&a.dims, indices).ok_or_else(|| {
            ExecError::OutOfBounds {
                array: array.to_string(),
                indices: indices.to_vec(),
                dims: a.dims.clone(),
            }
        })?;
        debug_assert!(flat < a.len);
        Ok((a.ptr, flat))
    }
}

/// Per-worker store of the AST parallel engine: shared arrays, private
/// scalar environment.  Each scalar entry carries the (global) iteration of
/// its last write — or `None` for snapshot values never written by this
/// worker — so the spine can merge the serially-last value back.
pub(crate) struct WorkerStore<'s> {
    pub shared: &'s SharedArrays,
    pub scalars: HashMap<String, (i64, Option<usize>)>,
    pub current_iter: usize,
}

impl Store for WorkerStore<'_> {
    fn scalar(&mut self, name: &str) -> i64 {
        self.scalars.get(name).map(|&(v, _)| v).unwrap_or(0)
    }

    fn set_scalar(&mut self, name: &str, v: i64) {
        let iter = self.current_iter;
        match self.scalars.get_mut(name) {
            Some(slot) => *slot = (v, Some(iter)),
            None => {
                self.scalars.insert(name.to_string(), (v, Some(iter)));
            }
        }
    }

    fn read_elem(&mut self, array: &str, indices: &[i64]) -> Result<i64, ExecError> {
        let (ptr, flat) = self.shared.flat(array, indices)?;
        // SAFETY: flat is bounds-checked above; disjointness across workers
        // is the dispatched loop's proven property.
        Ok(unsafe { *(ptr as *const i64).add(flat) })
    }

    fn write_elem(&mut self, array: &str, indices: &[i64], v: i64) -> Result<(), ExecError> {
        let (ptr, flat) = self.shared.flat(array, indices)?;
        // SAFETY: as above.
        unsafe {
            *(ptr as *mut i64).add(flat) = v;
        }
        Ok(())
    }

    fn declare_array(&mut self, name: &str, _dims: Vec<usize>) -> Result<(), ExecError> {
        Err(ExecError::ArrayDeclInWorker(name.to_string()))
    }
}
