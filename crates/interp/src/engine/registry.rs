//! The pluggable engine registry: every execution strategy behind one
//! object-safe [`Engine`] trait, enumerated — never pattern-matched — by
//! every consumer.
//!
//! The CLI's `--engine` flag, the differential validator, the generative
//! fuzz harness and the benches all resolve engines through an
//! [`EngineRegistry`]; adding an execution strategy (the planned
//! register-allocated engine, say) means implementing [`Engine`] and
//! registering it — no consumer changes, and surfaces like
//! `sspar engines` can never drift from what is actually runnable.
//!
//! Engines execute **precompiled** [`Artifacts`] only: compilation happens
//! once, in the pipeline, and [`Engine::prepare`] is each engine's hook to
//! veto an artifact store it cannot run (today's engines accept
//! everything; a future engine with narrower capabilities refuses here
//! instead of failing mid-run).

use crate::engine::{
    bytecode, compiled, dispatch, serial, threaded, wavefront, ExecOptions, ExecOutcome,
};
use crate::error::SsError;
use crate::heap::Heap;
use ss_ir::opt::OptLevel;
use ss_parallelizer::Artifacts;
use std::sync::Arc;

/// What an engine can do, as data — consumers branch on these flags, not
/// on engine names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCaps {
    /// The parallel dispatcher runs reduction loops with per-thread
    /// partials merged by the recognized combiner.
    pub reductions: bool,
    /// The parallel dispatcher gives loop-local array declarations
    /// worker-private storage.
    pub local_arrays: bool,
    /// Parallel runs can record the runtime-inspector baseline on loops
    /// the compile-time analysis left serial.
    pub inspector_baseline: bool,
    /// Workers run on the persistent process-wide thread team.
    pub persistent_team: bool,
    /// This engine is the semantic reference: differential validation
    /// diffs every other engine against its final heap.
    pub reference: bool,
    /// The `--opt-level`s that select *distinct* prepared programs for
    /// this engine.  Engines that do not consume the bytecode stream
    /// report a single level (the default); the differential matrix runs
    /// each engine once per listed level.
    pub opt_levels: &'static [OptLevel],
}

/// One execution strategy over pipeline [`Artifacts`].
///
/// Implementations are stateless handles (`Send + Sync`): all per-program
/// state lives in the artifacts, all per-run state in [`ExecOptions`] and
/// the heap.  Register implementations with
/// [`EngineRegistry::register`] — or obtain the built-ins via
/// [`EngineRegistry::builtin`].
pub trait Engine: Send + Sync + std::fmt::Debug {
    /// The stable name consumers select the engine by (`--engine <name>`).
    fn name(&self) -> &'static str;

    /// One-line human description for `sspar engines`.
    fn description(&self) -> &'static str;

    /// Capability flags (see [`EngineCaps`]).
    fn caps(&self) -> EngineCaps;

    /// Checks that `artifacts` carry everything this engine needs; called
    /// once per (session, program) before the first execution.  The
    /// default accepts everything.
    fn prepare(&self, artifacts: &Artifacts) -> Result<(), SsError> {
        let _ = artifacts;
        Ok(())
    }

    /// Executes the whole program on one thread.
    fn run_serial(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError>;

    /// Executes the program with proven-parallelizable loops dispatched
    /// onto worker threads (per the artifacts' own analysis report).
    fn run_parallel(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError>;
}

// ---------------------------------------------------------------------------
// The built-in engines.
// ---------------------------------------------------------------------------

/// The register-machine bytecode engine (default): executes the flat
/// instruction stream of `ss_ir::bytecode`, O0 or O1 per
/// [`ExecOptions::opt_level`]; parallel workers run on the persistent
/// process-wide thread team.
#[derive(Debug, Default)]
pub struct BytecodeEngine;

impl Engine for BytecodeEngine {
    fn name(&self) -> &'static str {
        "bytecode"
    }

    fn description(&self) -> &'static str {
        "flat register-machine stream (O0/O1), persistent thread team"
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            reductions: true,
            local_arrays: true,
            inspector_baseline: false,
            persistent_team: true,
            reference: false,
            opt_levels: &[OptLevel::O0, OptLevel::O1],
        }
    }

    fn run_serial(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        Ok(bytecode::run_serial_bytecode(
            artifacts.bytecode_at(opts.opt_level),
            heap,
            opts,
        )?)
    }

    fn run_parallel(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        if opts.baseline_inspector {
            return Err(self.no_inspector());
        }
        Ok(bytecode::run_parallel_bytecode(
            artifacts.bytecode_at(opts.opt_level),
            &artifacts.report,
            heap,
            opts,
        )?)
    }
}

/// The direct-threaded engine: the bytecode stream lowered once into a
/// pre-resolved chain of monomorphized handler pointers with pre-decoded
/// operands (`crate::engine::threaded`), removing per-instruction opcode
/// decode; counted loops with invariant headers run as native loops.
/// Parallel dispatch reuses the bytecode engine's worker path on the
/// persistent thread team.
#[derive(Debug, Default)]
pub struct ThreadedEngine;

impl Engine for ThreadedEngine {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn description(&self) -> &'static str {
        "direct-threaded handler chain lowered from bytecode (O0/O1), persistent thread team"
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            reductions: true,
            local_arrays: true,
            inspector_baseline: false,
            persistent_team: true,
            reference: false,
            opt_levels: &[OptLevel::O0, OptLevel::O1],
        }
    }

    fn run_serial(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        Ok(threaded::run_serial_threaded(artifacts, heap, opts)?)
    }

    fn run_parallel(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        if opts.baseline_inspector {
            return Err(self.no_inspector());
        }
        Ok(threaded::run_parallel_threaded(artifacts, heap, opts)?)
    }
}

/// The slot-resolved compiled engine: walks slot-addressed op trees over
/// dense frames — the mid-level differential stage between the tree
/// walker and the bytecode stream.
#[derive(Debug, Default)]
pub struct CompiledEngine;

impl Engine for CompiledEngine {
    fn name(&self) -> &'static str {
        "compiled"
    }

    fn description(&self) -> &'static str {
        "slot-resolved op trees over dense frames"
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            reductions: true,
            local_arrays: true,
            inspector_baseline: false,
            persistent_team: false,
            reference: false,
            opt_levels: &[OptLevel::O1],
        }
    }

    fn run_serial(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        Ok(compiled::run_serial_compiled(
            &artifacts.compiled,
            heap,
            opts,
        )?)
    }

    fn run_parallel(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        if opts.baseline_inspector {
            return Err(self.no_inspector());
        }
        Ok(compiled::run_parallel_compiled(
            &artifacts.compiled,
            &artifacts.report,
            heap,
            opts,
        )?)
    }
}

/// The wavefront engine: the bytecode engine plus a level-set scheduler
/// for serial-proven carried loops (SpTRSV, Gauss-Seidel, scatters).
/// Loops the analysis marked wavefront-schedulable are inspected at run
/// time, scheduled into dependence level sets (cached on the artifacts,
/// keyed by the entry state that determined them), and executed level by
/// level on the persistent thread team; too-fine schedules fall back to
/// serial execution.
#[derive(Debug, Default)]
pub struct WavefrontEngine;

impl Engine for WavefrontEngine {
    fn name(&self) -> &'static str {
        "wavefront"
    }

    fn description(&self) -> &'static str {
        "bytecode stream plus level-set scheduling of carried loops"
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            reductions: true,
            local_arrays: true,
            inspector_baseline: false,
            persistent_team: true,
            reference: false,
            opt_levels: &[OptLevel::O0, OptLevel::O1],
        }
    }

    fn run_serial(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        Ok(bytecode::run_serial_bytecode(
            artifacts.bytecode_at(opts.opt_level),
            heap,
            opts,
        )?)
    }

    fn run_parallel(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        if opts.baseline_inspector {
            return Err(self.no_inspector());
        }
        Ok(wavefront::run_parallel_wavefront(artifacts, heap, opts)?)
    }
}

/// The tree-walking reference engine: interprets the AST against the
/// name-keyed heap.  Semantically authoritative (everything else is
/// diffed against it) and the only engine whose recording store supports
/// the runtime-inspector baseline.
#[derive(Debug, Default)]
pub struct AstEngine;

impl Engine for AstEngine {
    fn name(&self) -> &'static str {
        "ast"
    }

    fn description(&self) -> &'static str {
        "tree-walking reference over the name-keyed heap"
    }

    fn caps(&self) -> EngineCaps {
        EngineCaps {
            reductions: false,
            local_arrays: false,
            inspector_baseline: true,
            persistent_team: false,
            reference: true,
            opt_levels: &[OptLevel::O1],
        }
    }

    fn run_serial(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        Ok(serial::run_serial_ast(&artifacts.program, heap, opts)?)
    }

    fn run_parallel(
        &self,
        artifacts: &Artifacts,
        heap: Heap,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, SsError> {
        Ok(dispatch::run_parallel_ast(
            &artifacts.program,
            &artifacts.report,
            heap,
            opts,
        )?)
    }
}

trait NoInspector: Engine {
    fn no_inspector(&self) -> SsError {
        SsError::Unsupported {
            engine: self.name().to_string(),
            reason: "the runtime-inspector baseline records through the tree-walking \
                     store; use an engine with the inspector_baseline capability"
                .to_string(),
        }
    }
}

impl NoInspector for BytecodeEngine {}
impl NoInspector for ThreadedEngine {}
impl NoInspector for CompiledEngine {}
impl NoInspector for WavefrontEngine {}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// An ordered collection of [`Engine`]s, resolved by name.  The first
/// registered engine is the default.
#[derive(Clone)]
pub struct EngineRegistry {
    engines: Vec<Arc<dyn Engine>>,
}

impl EngineRegistry {
    /// The built-in engines, default first: `bytecode`, `threaded`,
    /// `compiled`, `ast`.
    pub fn builtin() -> EngineRegistry {
        let mut r = EngineRegistry::empty();
        r.register(Arc::new(BytecodeEngine));
        r.register(Arc::new(ThreadedEngine));
        r.register(Arc::new(CompiledEngine));
        r.register(Arc::new(WavefrontEngine));
        r.register(Arc::new(AstEngine));
        r
    }

    /// A registry with no engines (build custom sets with
    /// [`register`](Self::register)).
    pub fn empty() -> EngineRegistry {
        EngineRegistry {
            engines: Vec::new(),
        }
    }

    /// Registers an engine.  A same-named engine is replaced in place (its
    /// position — and default status, if first — is preserved).
    pub fn register(&mut self, engine: Arc<dyn Engine>) {
        match self.engines.iter_mut().find(|e| e.name() == engine.name()) {
            Some(slot) => *slot = engine,
            None => self.engines.push(engine),
        }
    }

    /// Resolves an engine by name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Engine>, SsError> {
        self.engines
            .iter()
            .find(|e| e.name() == name)
            .cloned()
            .ok_or_else(|| SsError::UnknownEngine {
                name: name.to_string(),
                available: self.names().iter().map(|n| n.to_string()).collect(),
            })
    }

    /// The default engine (the first registered one).
    ///
    /// # Panics
    /// On an [`empty`](Self::empty) registry.
    pub fn default_engine(&self) -> Arc<dyn Engine> {
        self.engines
            .first()
            .cloned()
            .expect("engine registry is empty")
    }

    /// The semantic-reference engine (first with [`EngineCaps::reference`]),
    /// if one is registered.
    pub fn reference(&self) -> Option<Arc<dyn Engine>> {
        self.engines.iter().find(|e| e.caps().reference).cloned()
    }

    /// The first engine able to record the runtime-inspector baseline.
    pub fn inspector_capable(&self) -> Option<Arc<dyn Engine>> {
        self.engines
            .iter()
            .find(|e| e.caps().inspector_baseline)
            .cloned()
    }

    /// Engines in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Engine>> {
        self.engines.iter()
    }

    /// Registered names, in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True when no engine is registered.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("engines", &self.names())
            .finish()
    }
}

impl Default for EngineRegistry {
    fn default() -> EngineRegistry {
        EngineRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_the_five_engines_default_first() {
        let r = EngineRegistry::builtin();
        assert_eq!(
            r.names(),
            vec!["bytecode", "threaded", "compiled", "wavefront", "ast"]
        );
        assert_eq!(r.default_engine().name(), "bytecode");
        assert_eq!(r.reference().unwrap().name(), "ast");
        assert_eq!(r.inspector_capable().unwrap().name(), "ast");
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
    }

    #[test]
    fn unknown_names_list_what_is_registered() {
        let r = EngineRegistry::builtin();
        match r.get("jit") {
            Err(SsError::UnknownEngine { name, available }) => {
                assert_eq!(name, "jit");
                assert_eq!(
                    available,
                    vec!["bytecode", "threaded", "compiled", "wavefront", "ast"]
                );
            }
            other => panic!("expected UnknownEngine, got {other:?}"),
        }
    }

    #[test]
    fn registering_a_same_named_engine_replaces_it_in_place() {
        #[derive(Debug)]
        struct FakeBytecode;
        impl Engine for FakeBytecode {
            fn name(&self) -> &'static str {
                "bytecode"
            }
            fn description(&self) -> &'static str {
                "fake"
            }
            fn caps(&self) -> EngineCaps {
                AstEngine.caps()
            }
            fn run_serial(
                &self,
                a: &Artifacts,
                h: Heap,
                o: &ExecOptions,
            ) -> Result<ExecOutcome, SsError> {
                AstEngine.run_serial(a, h, o)
            }
            fn run_parallel(
                &self,
                a: &Artifacts,
                h: Heap,
                o: &ExecOptions,
            ) -> Result<ExecOutcome, SsError> {
                AstEngine.run_parallel(a, h, o)
            }
        }
        let mut r = EngineRegistry::builtin();
        r.register(Arc::new(FakeBytecode));
        assert_eq!(r.len(), 5);
        assert_eq!(r.default_engine().name(), "bytecode");
        assert_eq!(r.default_engine().description(), "fake");
    }

    #[test]
    fn capability_flags_describe_the_builtin_engines() {
        let r = EngineRegistry::builtin();
        let bc = r.get("bytecode").unwrap();
        assert!(bc.caps().reductions && bc.caps().local_arrays);
        assert!(bc.caps().persistent_team);
        assert_eq!(bc.caps().opt_levels, &[OptLevel::O0, OptLevel::O1]);
        let th = r.get("threaded").unwrap();
        assert!(th.caps().reductions && th.caps().local_arrays);
        assert!(th.caps().persistent_team && !th.caps().reference);
        assert_eq!(th.caps().opt_levels, &[OptLevel::O0, OptLevel::O1]);
        let wf = r.get("wavefront").unwrap();
        assert!(wf.caps().reductions && wf.caps().local_arrays);
        assert!(wf.caps().persistent_team && !wf.caps().reference);
        assert!(!wf.caps().inspector_baseline);
        assert_eq!(wf.caps().opt_levels, &[OptLevel::O0, OptLevel::O1]);
        let ast = r.get("ast").unwrap();
        assert!(ast.caps().reference && ast.caps().inspector_baseline);
        assert!(!ast.caps().reductions);
        assert_eq!(ast.caps().opt_levels.len(), 1);
    }
}
