//! The bytecode engines: flat register-machine execution (the default).
//!
//! [`ss_ir::bytecode`] flattens the slot pass's expression trees into a
//! linear instruction stream; these engines execute that stream over a
//! dense register file whose low registers alias the scalar slots — per
//! iteration the hot path is one `match` per *instruction*, with no
//! recursion and no `Box` chasing per expression node.
//!
//! Array state lives exactly where the compiled engine keeps it: dense
//! per-slot frames on the spine, shared raw views plus worker-private
//! local storage inside dispatched workers (`super::compiled::SharedSlots`
//! and `super::compiled::ChunkAcc` are reused verbatim, so the two
//! parallel engines cannot drift apart in their merge semantics).  The
//! parallel dispatcher accepts the same verdict classes as the compiled
//! one — independent loops, reduction loops, loops with body-local array
//! declarations — but runs its workers on a **persistent, process-wide**
//! [`ss_runtime::ThreadTeam`] (`ss_runtime::with_shared_team`): the team
//! is spawned at the first dispatched loop of the first run and every
//! subsequent region — of that run or of any later run in the same
//! process — reuses it, so repeated `sspar run` invocations in-process pay
//! exactly one spawn per thread count, ever.
//!
//! Semantics mirror the tree walker operation for operation (evaluation
//! order, wrapping arithmetic, error points, undefined-value handling), so
//! final heaps are bit-identical across all three engines — `validate` and
//! the generative fuzz harness (`tests/engine_fuzz.rs`) assert exactly
//! that.

use super::compiled::{ChunkAcc, SharedSlots, NOT_WRITTEN};
use super::serial::{apply_assign, apply_binop, compare};
use super::store::elem_at;
use super::{ExecEnvTiming, ExecError, ExecMode, ExecOptions, ExecOutcome, ExecStats};
use crate::heap::{ArrayVal, Heap};
use ss_ir::bytecode::{BcExpr, BcFor, BytecodeProgram, HeaderFast, Instr, Reg};
use ss_ir::slots::{ArraySlot, SlotMap};
use ss_ir::LoopId;
use ss_parallelizer::{ParallelizationReport, ReductionInfo};
use ss_runtime::{team_parallel_reduce, with_shared_team_in, Schedule};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Opt-in instruction-pair hotness profiling.
// ---------------------------------------------------------------------------

/// Number of instruction kinds in the profiling matrix.
const NKINDS: usize = 20;

/// Kind names, indexed like [`instr_kind`]'s return value.
const KIND_NAMES: [&str; NKINDS] = [
    "const", "copy", "bin", "accum", "neg", "not", "load", "store", "decl", "jz", "jnz", "jump",
    "for", "wenter", "witer", "wexit", "ldld", "cmpbr", "ld2", "st2",
];

/// Whether the bytecode loop records executed-instruction pairs.
static PROFILING: AtomicBool = AtomicBool::new(false);

/// The `NKINDS x NKINDS` pair matrix (`prev * NKINDS + next`).
static PAIR_COUNTS: [AtomicU64; NKINDS * NKINDS] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; NKINDS * NKINDS]
};

fn instr_kind(i: &Instr) -> usize {
    match i {
        Instr::Const { .. } => 0,
        Instr::Copy { .. } => 1,
        Instr::Bin { .. } => 2,
        Instr::Accum { .. } => 3,
        Instr::Neg { .. } => 4,
        Instr::Not { .. } => 5,
        Instr::Load { .. } => 6,
        Instr::Store { .. } => 7,
        Instr::DeclArray { .. } => 8,
        Instr::Jz { .. } => 9,
        Instr::Jnz { .. } => 10,
        Instr::Jump { .. } => 11,
        Instr::For(_) => 12,
        Instr::WhileEnter { .. } => 13,
        Instr::WhileIter { .. } => 14,
        Instr::WhileExit { .. } => 15,
        Instr::LoadLoad { .. } => 16,
        Instr::CmpBranch { .. } => 17,
        Instr::Load2 { .. } => 18,
        Instr::Store2 { .. } => 19,
    }
}

/// Turns instruction-pair hotness profiling on or off (process-wide).
/// While on, the bytecode interpreter counts every *executed* adjacent
/// instruction pair — in dynamic order, so a pair spanning a taken branch
/// counts the branch's actual successor.  The single flag load per block
/// execution keeps the cost of the `off` state at zero.
pub fn set_pair_profiling(on: bool) {
    PROFILING.store(on, Ordering::SeqCst);
}

/// Resets all pair counters to zero.
pub fn reset_pair_counts() {
    for c in PAIR_COUNTS.iter() {
        c.store(0, Ordering::Relaxed);
    }
}

/// The hottest executed instruction pairs, descending, at most `n` —
/// `(previous kind, next kind, count)`.  These are the fusion candidates a
/// profile-guided superinstruction pass would consider next.
pub fn top_instruction_pairs(n: usize) -> Vec<(&'static str, &'static str, u64)> {
    let mut pairs: Vec<(&'static str, &'static str, u64)> = PAIR_COUNTS
        .iter()
        .enumerate()
        .filter_map(|(k, c)| {
            let count = c.load(Ordering::Relaxed);
            (count > 0).then(|| (KIND_NAMES[k / NKINDS], KIND_NAMES[k % NKINDS], count))
        })
        .collect();
    pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)).then(a.1.cmp(b.1)));
    pairs.truncate(n);
    pairs
}

// ---------------------------------------------------------------------------
// The register machine and its array stores.
// ---------------------------------------------------------------------------

/// The register file: scalars in the low registers, expression temporaries
/// above, plus the bookkeeping both the serial spine and the workers need
/// (defined-ness for heap write-back, last-write iterations for the
/// parallel scalar merge).  `pub(super)` so the threaded tier can hand its
/// own register state to [`try_dispatch_parallel`].
pub(super) struct Machine<'a> {
    pub(super) regs: Vec<i64>,
    pub(super) defined: Vec<bool>,
    pub(super) write_iter: Vec<usize>,
    pub(super) current_iter: usize,
    pub(super) nscalars: usize,
    pub(super) consts: &'a [i64],
}

impl<'a> Machine<'a> {
    pub(super) fn new(bc: &'a BytecodeProgram) -> Machine<'a> {
        let nscalars = bc.slots.scalar_count();
        Machine {
            regs: vec![0; bc.nregs],
            defined: vec![false; nscalars],
            write_iter: vec![NOT_WRITTEN; nscalars],
            current_iter: 0,
            nscalars,
            consts: &bc.consts,
        }
    }

    #[inline]
    fn get(&self, r: Reg) -> i64 {
        self.regs[r.index()]
    }

    #[inline]
    pub(super) fn set(&mut self, r: Reg, v: i64) {
        let i = r.index();
        self.regs[i] = v;
        if i < self.nscalars {
            self.defined[i] = true;
            self.write_iter[i] = self.current_iter;
        }
    }

    /// Loads the heap's scalars into the register file.
    pub(super) fn load_scalars(&mut self, heap: &Heap, slots: &SlotMap) {
        for (i, name) in slots.scalar_names().iter().enumerate() {
            if let Some(&v) = heap.scalars.get(name) {
                self.regs[i] = v;
                self.defined[i] = true;
            }
        }
    }

    /// Writes defined scalars back into the heap.
    pub(super) fn store_scalars(&self, heap: &mut Heap, slots: &SlotMap) {
        for (i, name) in slots.scalar_names().iter().enumerate() {
            if self.defined[i] {
                heap.scalars.insert(name.clone(), self.regs[i]);
            }
        }
    }
}

/// Where the machine's array traffic lands.
pub(super) trait BcArrays {
    fn read(&mut self, a: ArraySlot, indices: &[i64]) -> Result<i64, ExecError>;
    fn write(&mut self, a: ArraySlot, indices: &[i64], v: i64) -> Result<(), ExecError>;
    fn declare(&mut self, a: ArraySlot, dims: Vec<usize>);
}

/// The spine's array store: one dense `Option<ArrayVal>` per slot, moved
/// out of (and back into) the heap — the array half of the compiled
/// engine's `Frame`.  `pub(super)` for the same reason as [`Machine`].
pub(super) struct SpineArrays<'m> {
    pub(super) slots: &'m SlotMap,
    pub(super) arrays: Vec<Option<ArrayVal>>,
}

impl<'m> SpineArrays<'m> {
    pub(super) fn from_heap(heap: &mut Heap, slots: &'m SlotMap) -> SpineArrays<'m> {
        let arrays = slots
            .array_names()
            .iter()
            .map(|name| heap.arrays.remove(name))
            .collect();
        SpineArrays { slots, arrays }
    }

    pub(super) fn into_heap(self, heap: &mut Heap) {
        for (i, arr) in self.arrays.into_iter().enumerate() {
            if let Some(a) = arr {
                heap.arrays.insert(self.slots.array_names()[i].clone(), a);
            }
        }
    }
}

impl BcArrays for SpineArrays<'_> {
    fn read(&mut self, a: ArraySlot, indices: &[i64]) -> Result<i64, ExecError> {
        let name = self.slots.array_name(a);
        let arr = self.arrays[a.index()]
            .as_ref()
            .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
        elem_at(name, arr, indices).map(|flat| arr.data[flat])
    }

    fn write(&mut self, a: ArraySlot, indices: &[i64], v: i64) -> Result<(), ExecError> {
        let name = self.slots.array_name(a);
        let arr = self.arrays[a.index()]
            .as_mut()
            .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
        let flat = elem_at(name, arr, indices)?;
        arr.data[flat] = v;
        Ok(())
    }

    fn declare(&mut self, a: ArraySlot, dims: Vec<usize>) {
        self.arrays[a.index()] = Some(ArrayVal::zeros(dims));
    }
}

/// A worker's array store: shared raw views for the heap arrays, private
/// storage for the dispatched loop's local arrays — the array half of the
/// compiled engine's worker.
pub(super) struct WorkerArrays<'s> {
    pub(super) slots: &'s SlotMap,
    pub(super) shared: &'s SharedSlots,
    pub(super) local: &'s [bool],
    pub(super) locals: Vec<Option<ArrayVal>>,
    pub(super) local_write_iter: Vec<usize>,
    pub(super) current_iter: usize,
}

impl BcArrays for WorkerArrays<'_> {
    fn read(&mut self, a: ArraySlot, indices: &[i64]) -> Result<i64, ExecError> {
        let i = a.index();
        if self.local[i] {
            let name = self.slots.array_name(a);
            let arr = self.locals[i]
                .as_ref()
                .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
            return elem_at(name, arr, indices).map(|flat| arr.data[flat]);
        }
        let (ptr, flat) = self.shared.flat(self.slots, a, indices)?;
        // SAFETY: flat is bounds-checked; disjointness across workers is
        // the dispatched loop's proven property.
        Ok(unsafe { *(ptr as *const i64).add(flat) })
    }

    fn write(&mut self, a: ArraySlot, indices: &[i64], v: i64) -> Result<(), ExecError> {
        let i = a.index();
        if self.local[i] {
            let name = self.slots.array_name(a);
            let arr = self.locals[i]
                .as_mut()
                .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
            let flat = elem_at(name, arr, indices)?;
            arr.data[flat] = v;
            self.local_write_iter[i] = self.current_iter;
            return Ok(());
        }
        let (ptr, flat) = self.shared.flat(self.slots, a, indices)?;
        // SAFETY: as above.
        unsafe {
            *(ptr as *mut i64).add(flat) = v;
        }
        Ok(())
    }

    fn declare(&mut self, a: ArraySlot, dims: Vec<usize>) {
        // Declarations inside a dispatched body always target local slots
        // (that is how `local_arrays` is computed).
        let i = a.index();
        self.locals[i] = Some(ArrayVal::zeros(dims));
        self.local_write_iter[i] = self.current_iter;
    }
}

// ---------------------------------------------------------------------------
// The instruction interpreter.
// ---------------------------------------------------------------------------

/// Decides what happens when the interpreter reaches a `For` instruction.
pub(super) trait BcPolicy<A: BcArrays> {
    fn try_dispatch(
        &mut self,
        m: &mut Machine<'_>,
        arrays: &mut A,
        f: &BcFor,
        env: &mut ExecEnvTiming<'_>,
    ) -> Result<bool, ExecError>;
}

/// Policy that never dispatches (serial engine, workers).
pub(super) struct NoDispatchB;

impl<A: BcArrays> BcPolicy<A> for NoDispatchB {
    fn try_dispatch(
        &mut self,
        _m: &mut Machine<'_>,
        _arrays: &mut A,
        _f: &BcFor,
        _env: &mut ExecEnvTiming<'_>,
    ) -> Result<bool, ExecError> {
        Ok(false)
    }
}

/// One active flattened-`while` guard: iteration counter plus wall-clock
/// start (when timing).
struct WhileGuard {
    id: LoopId,
    iters: u64,
    start: Option<Instant>,
}

/// Runs a flat expression block and returns its value.
pub(super) fn eval_block<A: BcArrays>(
    m: &mut Machine<'_>,
    arrays: &mut A,
    e: &BcExpr,
    env: &mut ExecEnvTiming<'_>,
) -> Result<i64, ExecError> {
    // Expression blocks contain no loops, so the no-dispatch policy is
    // exact, not an approximation.
    exec_code(m, arrays, &e.code, &mut NoDispatchB, env)?;
    Ok(m.get(e.result))
}

/// A loop-header value through its O1 fast path when the optimizer derived
/// one (plain register read, compile-time constant), else by running the
/// block — the hot per-iteration `bound`/`step` evaluations go through
/// here.  `cache` holds the per-loop-entry memo for
/// [`HeaderFast::EvalOnce`] blocks: the optimizer proved re-evaluation
/// reproduces the first result bit for bit, so the first iteration runs
/// the block (same program point, same value, same error as `Eval` would)
/// and every later iteration reuses the value.
#[inline]
fn header_value<A: BcArrays>(
    m: &mut Machine<'_>,
    arrays: &mut A,
    block: &BcExpr,
    fast: HeaderFast,
    cache: &mut Option<i64>,
    env: &mut ExecEnvTiming<'_>,
) -> Result<i64, ExecError> {
    match fast {
        HeaderFast::Const(v) => Ok(v),
        HeaderFast::Reg(r) => Ok(m.get(r)),
        HeaderFast::Eval => eval_block(m, arrays, block, env),
        HeaderFast::EvalOnce => {
            if let Some(v) = *cache {
                return Ok(v);
            }
            let v = eval_block(m, arrays, block, env)?;
            *cache = Some(v);
            Ok(v)
        }
    }
}

pub(super) fn exec_code<A: BcArrays, P: BcPolicy<A>>(
    m: &mut Machine<'_>,
    arrays: &mut A,
    code: &[Instr],
    pol: &mut P,
    env: &mut ExecEnvTiming<'_>,
) -> Result<(), ExecError> {
    let mut guards: Vec<WhileGuard> = Vec::new();
    // One flag load per block execution: the hot path pays nothing while
    // profiling is off.
    let profiling = PROFILING.load(Ordering::Relaxed);
    let mut prev_kind = NKINDS;
    let mut pc = 0usize;
    while pc < code.len() {
        if profiling {
            let kind = instr_kind(&code[pc]);
            if prev_kind < NKINDS {
                PAIR_COUNTS[prev_kind * NKINDS + kind].fetch_add(1, Ordering::Relaxed);
            }
            prev_kind = kind;
        }
        match &code[pc] {
            Instr::Const { dst, pool } => {
                let v = m.consts[*pool as usize];
                m.set(*dst, v);
            }
            Instr::Copy { dst, src } => {
                let v = m.get(*src);
                m.set(*dst, v);
            }
            Instr::Bin { op, dst, a, b } => {
                let v = apply_binop(*op, m.get(*a), m.get(*b))?;
                m.set(*dst, v);
            }
            Instr::Accum { op, dst, src } => {
                let v = apply_assign(*op, m.get(*dst), m.get(*src));
                m.set(*dst, v);
            }
            Instr::Neg { dst, src } => {
                let v = m.get(*src).wrapping_neg();
                m.set(*dst, v);
            }
            Instr::Not { dst, src } => {
                let v = (m.get(*src) == 0) as i64;
                m.set(*dst, v);
            }
            Instr::Load {
                dst,
                array,
                idx,
                rank,
            } => {
                let v = with_indices(m, *idx, *rank, |idxs| arrays.read(*array, idxs))?;
                m.set(*dst, v);
            }
            Instr::Store {
                array,
                idx,
                rank,
                src,
            } => {
                let v = m.get(*src);
                with_indices(m, *idx, *rank, |idxs| arrays.write(*array, idxs, v))?;
            }
            Instr::DeclArray { array, dims, rank } => {
                let mut extents = Vec::with_capacity(*rank as usize);
                for k in 0..*rank {
                    extents.push(m.get(Reg(dims.0 + k as u32)).max(0) as usize);
                }
                arrays.declare(*array, extents);
            }
            Instr::Jz { cond, target } => {
                if m.get(*cond) == 0 {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::Jnz { cond, target } => {
                if m.get(*cond) != 0 {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::Jump { target } => {
                pc = *target as usize;
                continue;
            }
            Instr::For(f) => exec_for(m, arrays, f, pol, env)?,
            Instr::WhileEnter { id } => {
                guards.push(WhileGuard {
                    id: *id,
                    iters: 0,
                    start: env.timing.then(Instant::now),
                });
            }
            Instr::WhileIter { id } => {
                let g = guards.last_mut().expect("unbalanced while guard");
                debug_assert_eq!(g.id, *id);
                if g.iters >= env.while_cap {
                    return Err(ExecError::NonTerminating {
                        loop_id: *id,
                        cap: env.while_cap,
                    });
                }
                g.iters += 1;
            }
            Instr::WhileExit { id } => {
                let g = guards.pop().expect("unbalanced while guard");
                debug_assert_eq!(g.id, *id);
                if let Some(t) = g.start {
                    env.stats
                        .record(*id, g.iters, t.elapsed().as_secs_f64(), ExecMode::Serial);
                }
            }
            Instr::LoadLoad {
                dst,
                outer,
                inner,
                idx,
            } => {
                // Same order and error points as the two loads it fused:
                // the inner (index-array) read first, then the outer.
                let i = m.get(*idx);
                let inner_v = arrays.read(*inner, &[i])?;
                let v = arrays.read(*outer, &[inner_v])?;
                m.set(*dst, v);
            }
            Instr::CmpBranch {
                op,
                a,
                b,
                target,
                jump_if,
            } => {
                if compare(*op, m.get(*a), m.get(*b)) == *jump_if {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::Load2 { dst, array, i0, i1 } => {
                let idxs = [m.get(*i0), m.get(*i1)];
                let v = arrays.read(*array, &idxs)?;
                m.set(*dst, v);
            }
            Instr::Store2 { array, i0, i1, src } => {
                let v = m.get(*src);
                let idxs = [m.get(*i0), m.get(*i1)];
                arrays.write(*array, &idxs, v)?;
            }
        }
        pc += 1;
    }
    Ok(())
}

/// Gathers `rank` subscripts from consecutive registers without a heap
/// allocation (for any realistic rank) and hands them to `f`.
#[inline]
fn with_indices<R>(m: &Machine<'_>, first: Reg, rank: u8, f: impl FnOnce(&[i64]) -> R) -> R {
    let rank = rank as usize;
    if rank <= 8 {
        let mut buf = [0i64; 8];
        for (k, b) in buf.iter_mut().take(rank).enumerate() {
            *b = m.regs[first.index() + k];
        }
        f(&buf[..rank])
    } else {
        let idxs: Vec<i64> = (0..rank).map(|k| m.regs[first.index() + k]).collect();
        f(&idxs)
    }
}

fn exec_for<A: BcArrays, P: BcPolicy<A>>(
    m: &mut Machine<'_>,
    arrays: &mut A,
    f: &BcFor,
    pol: &mut P,
    env: &mut ExecEnvTiming<'_>,
) -> Result<(), ExecError> {
    if pol.try_dispatch(m, arrays, f, env)? {
        return Ok(());
    }
    let start = env.timing.then(Instant::now);
    let v0 = header_value(m, arrays, &f.init, f.init_fast, &mut None, env)?;
    m.set(f.var, v0);
    // Per-loop-entry memo for `EvalOnce` headers; a fresh entry to the same
    // loop re-evaluates (outer-loop state may have changed).
    let mut bound_cache: Option<i64> = None;
    let mut step_cache: Option<i64> = None;
    let mut iter: u64 = 0;
    loop {
        let v = m.get(f.var);
        let b = header_value(m, arrays, &f.bound, f.bound_fast, &mut bound_cache, env)?;
        if !compare(f.cond_op, v, b) {
            break;
        }
        if iter >= env.while_cap {
            return Err(ExecError::NonTerminating {
                loop_id: f.id,
                cap: env.while_cap,
            });
        }
        exec_code(m, arrays, &f.body, pol, env)?;
        let sv = header_value(m, arrays, &f.step, f.step_fast, &mut step_cache, env)?;
        let cur = m.get(f.var);
        m.set(f.var, cur.wrapping_add(sv));
        iter += 1;
    }
    if let Some(t) = start {
        env.stats
            .record(f.id, iter, t.elapsed().as_secs_f64(), ExecMode::Serial);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The parallel dispatch policy.
// ---------------------------------------------------------------------------

struct BcDispatch<'r> {
    /// Outermost dispatchable loops with their (possibly empty) reductions.
    dispatchable: &'r HashMap<LoopId, Vec<ReductionInfo>>,
    opts: &'r ExecOptions,
}

/// The outermost proven-parallel loops of a report, keyed for O(1) lookup
/// at each `For` instruction, with their (possibly empty) reduction lists.
/// Shared by every engine that funnels into [`try_dispatch_parallel`].
pub(super) fn dispatchable_map(
    report: &ParallelizationReport,
) -> HashMap<LoopId, Vec<ReductionInfo>> {
    report
        .outermost_parallel_loops()
        .into_iter()
        .map(|id| {
            (
                id,
                report
                    .loop_report(id)
                    .map(|l| l.reductions.clone())
                    .unwrap_or_default(),
            )
        })
        .collect()
}

impl BcPolicy<SpineArrays<'_>> for BcDispatch<'_> {
    fn try_dispatch(
        &mut self,
        m: &mut Machine<'_>,
        arrays: &mut SpineArrays<'_>,
        f: &BcFor,
        env: &mut ExecEnvTiming<'_>,
    ) -> Result<bool, ExecError> {
        try_dispatch_parallel(self.dispatchable, self.opts, m, arrays, f, env)
    }
}

/// Attempts to run one proven loop in parallel over the persistent team:
/// the whole dispatch recipe (gating, header evaluation, iteration-space
/// materialization, worker fan-out over [`SharedSlots`]/[`ChunkAcc`], and
/// the last-writer/combiner merge-back).  Returns `Ok(false)` when the
/// loop must run serially instead.  Shared between the bytecode engine's
/// policy above and the threaded tier, whose workers execute the original
/// bytecode body — the two parallel paths cannot drift apart.
pub(super) fn try_dispatch_parallel(
    dispatchable: &HashMap<LoopId, Vec<ReductionInfo>>,
    opts: &ExecOptions,
    m: &mut Machine<'_>,
    arrays: &mut SpineArrays<'_>,
    f: &BcFor,
    env: &mut ExecEnvTiming<'_>,
) -> Result<bool, ExecError> {
    {
        let Some(reductions) = dispatchable.get(&f.id) else {
            return Ok(false);
        };
        if opts.threads <= 1 {
            return Ok(false);
        }
        if reductions.iter().any(|r| !m.defined[r.slot.index()]) {
            // Same rule as the compiled engine: an uninitialized
            // accumulator must stay absent from the final heap when the
            // loop never writes it, which a combiner merge cannot
            // reproduce.
            return Ok(false);
        }
        if !f.local_arrays.is_empty() && !f.locals_dominated {
            return Ok(false);
        }
        let v0 = eval_block(m, arrays, &f.init, env)?;
        let bound = eval_block(m, arrays, &f.bound, env)?;
        let step = eval_block(m, arrays, &f.step, env)?;
        let (values, exit_value) =
            super::materialize_iteration_space(v0, bound, step, f.cond_op, f.id, env.while_cap)?;
        let n = values.len();
        if n < opts.min_parallel_trip {
            return Ok(false);
        }

        let start = Instant::now();
        let threads = opts.threads;
        let schedule = super::choose_schedule(opts.schedule, f.skewed, n, threads, opts.chunk);
        let dynamic = matches!(schedule, Schedule::Dynamic { .. });

        let nscalars = m.nscalars;
        let narrays = arrays.arrays.len();
        let mut local = vec![false; narrays];
        for a in &f.local_arrays {
            local[a.index()] = true;
        }
        // Worker register files start from a snapshot of the spine's; the
        // accumulator registers are re-seeded with the operator identity so
        // partials merge exactly.
        let mut snapshot = m.regs.clone();
        for r in reductions {
            snapshot[r.slot.index()] = r.op.identity();
        }
        let mut is_reduction = vec![false; nscalars];
        for r in reductions {
            is_reduction[r.slot.index()] = true;
        }
        let shared = SharedSlots::capture(&mut arrays.arrays, &local);
        let slots = arrays.slots;
        let consts = m.consts;
        let nregs = m.regs.len();
        let while_cap = env.while_cap;
        let values = &values;
        let local_ref = &local;
        let snapshot_ref = &snapshot;
        let is_reduction_ref = &is_reduction;

        // The process-wide team of this run's group: spawned by the first
        // dispatched region of the first run in the group, reused by every
        // region of every later run.  Servers assign one group per shard.
        let acc = with_shared_team_in(opts.team_group, threads, |team| {
            team_parallel_reduce(
                team,
                n,
                schedule,
                ChunkAcc::identity(nscalars, reductions, f.local_arrays.len()),
                |range, mut acc| {
                    if acc.err.is_some() {
                        return acc;
                    }
                    let mut wm = Machine {
                        regs: snapshot_ref.clone(),
                        defined: vec![false; nscalars],
                        write_iter: vec![NOT_WRITTEN; nscalars],
                        current_iter: 0,
                        nscalars,
                        consts,
                    };
                    debug_assert_eq!(wm.regs.len(), nregs);
                    let mut wa = WorkerArrays {
                        slots,
                        shared: &shared,
                        local: local_ref,
                        locals: vec![None; narrays],
                        local_write_iter: vec![NOT_WRITTEN; narrays],
                        current_iter: 0,
                    };
                    let mut scratch_stats = ExecStats::default();
                    let mut wenv = ExecEnvTiming {
                        stats: &mut scratch_stats,
                        timing: false,
                        while_cap,
                    };
                    for k in range {
                        wm.current_iter = k;
                        wa.current_iter = k;
                        wm.set(f.var, values[k]);
                        if let Err(e) =
                            exec_code(&mut wm, &mut wa, &f.body, &mut NoDispatchB, &mut wenv)
                        {
                            acc.err = Some(e);
                            break;
                        }
                    }
                    for (slot, &iter) in wm.write_iter.iter().enumerate() {
                        if iter == NOT_WRITTEN || is_reduction_ref[slot] {
                            continue;
                        }
                        match acc.scalar_writes[slot] {
                            Some((best, _)) if best >= iter => {}
                            _ => acc.scalar_writes[slot] = Some((iter, wm.regs[slot])),
                        }
                    }
                    for (i, r) in reductions.iter().enumerate() {
                        acc.partials[i] = r.op.combine(acc.partials[i], wm.regs[r.slot.index()]);
                    }
                    for (i, a) in f.local_arrays.iter().enumerate() {
                        let iter = wa.local_write_iter[a.index()];
                        if iter == NOT_WRITTEN {
                            continue;
                        }
                        if let Some(arr) = wa.locals[a.index()].take() {
                            match &acc.locals[i] {
                                Some((best, _)) if *best >= iter => {}
                                _ => acc.locals[i] = Some((iter, arr)),
                            }
                        }
                    }
                    acc
                },
                |a, b| a.combine(b, reductions),
            )
        });

        let ChunkAcc {
            err,
            scalar_writes,
            partials,
            locals,
        } = acc;
        if let Some(e) = err {
            return Err(e);
        }
        // Merge back exactly like the compiled dispatcher: last-writing
        // iteration for ordinary scalars, combiner against the pre-loop
        // value for accumulators, globally last iteration's storage for
        // loop-local arrays.
        for (slot, w) in scalar_writes.into_iter().enumerate() {
            if let Some((_, value)) = w {
                m.regs[slot] = value;
                m.defined[slot] = true;
            }
        }
        for (r, partial) in reductions.iter().zip(partials) {
            let merged = r.op.combine(m.regs[r.slot.index()], partial);
            m.set(Reg(r.slot.0), merged);
        }
        for (a, entry) in f.local_arrays.iter().zip(locals) {
            if let Some((_, arr)) = entry {
                arrays.arrays[a.index()] = Some(arr);
            }
        }
        m.set(f.var, exit_value);

        env.stats.record(
            f.id,
            n as u64,
            start.elapsed().as_secs_f64(),
            ExecMode::Parallel { threads, dynamic },
        );
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Engines.
// ---------------------------------------------------------------------------

/// The serial bytecode engine.  `bc` comes precompiled from the pipeline
/// ([`ss_parallelizer::Artifacts`]); this function never compiles.
pub(crate) fn run_serial_bytecode(
    bc: &BytecodeProgram,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let mut stats = ExecStats::default();
    let start = Instant::now();
    let mut machine = Machine::new(bc);
    machine.load_scalars(&heap, &bc.slots);
    let mut arrays = SpineArrays::from_heap(&mut heap, &bc.slots);
    {
        let mut env = ExecEnvTiming {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_code(
            &mut machine,
            &mut arrays,
            &bc.main,
            &mut NoDispatchB,
            &mut env,
        )?;
    }
    arrays.into_heap(&mut heap);
    machine.store_scalars(&mut heap, &bc.slots);
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}

/// The parallel bytecode engine: same dispatch classes as the compiled
/// engine, executed as bytecode on a persistent worker team.  `bc` comes
/// precompiled from the pipeline.
pub(crate) fn run_parallel_bytecode(
    bc: &BytecodeProgram,
    report: &ParallelizationReport,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let dispatchable = dispatchable_map(report);
    let mut stats = ExecStats::default();
    let start = Instant::now();
    let mut machine = Machine::new(bc);
    machine.load_scalars(&heap, &bc.slots);
    let mut arrays = SpineArrays::from_heap(&mut heap, &bc.slots);
    {
        let mut policy = BcDispatch {
            dispatchable: &dispatchable,
            opts,
        };
        let mut env = ExecEnvTiming {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_code(&mut machine, &mut arrays, &bc.main, &mut policy, &mut env)?;
    }
    arrays.into_heap(&mut heap);
    machine.store_scalars(&mut heap, &bc.slots);
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}
