//! The tree-walking statement walker and the serial reference engine.
//!
//! Evaluation and statement execution are written once, generic over a
//! `Store` (where accesses land) and a `LoopPolicy` (what happens when a
//! `for` loop is reached).  The serial engine, the AST parallel workers and
//! the input-discovery pass all instantiate this walker; the AST parallel
//! spine adds a dispatching policy in [`super::dispatch`].

use super::store::{HeapStore, Store};
use super::{ExecEnvTiming, ExecError, ExecMode, ExecOptions, ExecOutcome, ExecStats};
use crate::heap::Heap;
use ss_ir::ast::{AExpr, AssignOp, BinOp, LoopId, Stmt, UnOp};
use ss_ir::Program;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Expression evaluation (C semantics: wrapping arithmetic, 0/1 booleans,
// short-circuit && and ||, truncating division).
// ---------------------------------------------------------------------------

pub(crate) fn eval<S: Store>(st: &mut S, e: &AExpr) -> Result<i64, ExecError> {
    match e {
        AExpr::IntLit(v) => Ok(*v),
        AExpr::Var(name) => Ok(st.scalar(name)),
        AExpr::Index(array, idx_exprs) => {
            let mut idxs = Vec::with_capacity(idx_exprs.len());
            for ie in idx_exprs {
                idxs.push(eval(st, ie)?);
            }
            st.read_elem(array, &idxs)
        }
        AExpr::Binary(op, a, b) => {
            // Short-circuit operators first.
            match op {
                BinOp::And => {
                    return Ok(if eval(st, a)? != 0 && eval(st, b)? != 0 {
                        1
                    } else {
                        0
                    })
                }
                BinOp::Or => {
                    return Ok(if eval(st, a)? != 0 || eval(st, b)? != 0 {
                        1
                    } else {
                        0
                    })
                }
                _ => {}
            }
            let x = eval(st, a)?;
            let y = eval(st, b)?;
            apply_binop(*op, x, y)
        }
        AExpr::Unary(op, a) => {
            let x = eval(st, a)?;
            Ok(match op {
                UnOp::Neg => x.wrapping_neg(),
                UnOp::Not => (x == 0) as i64,
            })
        }
    }
}

/// One non-short-circuit binary operation (shared with the compiled
/// engine's evaluator so both fail and wrap identically).
pub(crate) fn apply_binop(op: BinOp, x: i64, y: i64) -> Result<i64, ExecError> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => x.checked_div(y).ok_or(ExecError::DivisionByZero)?,
        BinOp::Mod => x.checked_rem(y).ok_or(ExecError::DivisionByZero)?,
        BinOp::Lt => (x < y) as i64,
        BinOp::Le => (x <= y) as i64,
        BinOp::Gt => (x > y) as i64,
        BinOp::Ge => (x >= y) as i64,
        BinOp::Eq => (x == y) as i64,
        BinOp::Ne => (x != y) as i64,
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops handled by the caller"),
    })
}

pub(crate) fn compare(op: BinOp, a: i64, b: i64) -> bool {
    match op {
        BinOp::Lt => a < b,
        BinOp::Le => a <= b,
        BinOp::Gt => a > b,
        BinOp::Ge => a >= b,
        BinOp::Eq => a == b,
        BinOp::Ne => a != b,
        // The parser only produces comparison exit tests; treat anything
        // else as an immediately false condition rather than panicking.
        _ => false,
    }
}

/// The compound-assignment combine step, shared by both engines.
pub(crate) fn apply_assign(op: AssignOp, current: i64, rhs: i64) -> i64 {
    match op {
        AssignOp::Assign => rhs,
        AssignOp::AddAssign => current.wrapping_add(rhs),
        AssignOp::SubAssign => current.wrapping_sub(rhs),
        AssignOp::MulAssign => current.wrapping_mul(rhs),
    }
}

// ---------------------------------------------------------------------------
// The statement walker.
// ---------------------------------------------------------------------------

/// Borrowed view of a `Stmt::For`'s parts, handed to loop policies.
pub(crate) struct ForLoop<'p> {
    pub id: LoopId,
    pub var: &'p str,
    pub init: &'p AExpr,
    pub cond_op: BinOp,
    pub bound: &'p AExpr,
    pub step: &'p AExpr,
    pub body: &'p [Stmt],
}

/// Decides what happens when the walker reaches a `for` loop.
pub(crate) trait LoopPolicy<S: Store> {
    /// Returns `Ok(true)` if the loop was fully executed by the policy
    /// (e.g. dispatched in parallel); `Ok(false)` to run it serially.
    fn try_dispatch(
        &mut self,
        st: &mut S,
        f: &ForLoop<'_>,
        env: &mut ExecEnv<'_>,
    ) -> Result<bool, ExecError>;
}

/// Policy that never dispatches (serial engine, workers, discovery).
pub(crate) struct NoDispatch;

impl<S: Store> LoopPolicy<S> for NoDispatch {
    fn try_dispatch(
        &mut self,
        _st: &mut S,
        _f: &ForLoop<'_>,
        _env: &mut ExecEnv<'_>,
    ) -> Result<bool, ExecError> {
        Ok(false)
    }
}

/// Walker state shared down the recursion.
pub(crate) type ExecEnv<'a> = ExecEnvTiming<'a>;

pub(crate) fn exec_stmts<S: Store, P: LoopPolicy<S>>(
    st: &mut S,
    stmts: &[Stmt],
    pol: &mut P,
    env: &mut ExecEnv<'_>,
) -> Result<(), ExecError> {
    for s in stmts {
        exec_stmt(st, s, pol, env)?;
    }
    Ok(())
}

fn exec_stmt<S: Store, P: LoopPolicy<S>>(
    st: &mut S,
    s: &Stmt,
    pol: &mut P,
    env: &mut ExecEnv<'_>,
) -> Result<(), ExecError> {
    match s {
        Stmt::Decl { name, dims, init } => {
            if dims.is_empty() {
                let v = match init {
                    Some(e) => eval(st, e)?,
                    None => 0,
                };
                st.set_scalar(name, v);
            } else {
                let mut extents = Vec::with_capacity(dims.len());
                for d in dims {
                    let v = eval(st, d)?;
                    extents.push(v.max(0) as usize);
                }
                st.declare_array(name, extents)?;
            }
            Ok(())
        }
        Stmt::Assign { target, op, value } => {
            let rhs = eval(st, value)?;
            if target.is_scalar() {
                let v = match op {
                    AssignOp::Assign => rhs,
                    _ => apply_assign(*op, st.scalar(&target.name), rhs),
                };
                st.set_scalar(&target.name, v);
            } else {
                let mut idxs = Vec::with_capacity(target.indices.len());
                for ie in &target.indices {
                    idxs.push(eval(st, ie)?);
                }
                let v = match op {
                    AssignOp::Assign => rhs,
                    _ => apply_assign(*op, st.read_elem(&target.name, &idxs)?, rhs),
                };
                st.write_elem(&target.name, &idxs, v)?;
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            if eval(st, cond)? != 0 {
                exec_stmts(st, then_branch, pol, env)
            } else {
                exec_stmts(st, else_branch, pol, env)
            }
        }
        Stmt::For {
            id,
            var,
            init,
            cond_op,
            bound,
            step,
            body,
            ..
        } => {
            let f = ForLoop {
                id: *id,
                var,
                init,
                cond_op: *cond_op,
                bound,
                step,
                body,
            };
            if pol.try_dispatch(st, &f, env)? {
                return Ok(());
            }
            let start = env.timing.then(Instant::now);
            st.loop_enter(*id);
            let v0 = eval(st, init)?;
            st.set_scalar(var, v0);
            let mut iter: u64 = 0;
            loop {
                let v = st.scalar(var);
                let b = eval(st, bound)?;
                if !compare(*cond_op, v, b) {
                    break;
                }
                if iter >= env.while_cap {
                    return Err(ExecError::NonTerminating {
                        loop_id: *id,
                        cap: env.while_cap,
                    });
                }
                st.loop_iter(*id, iter as usize);
                exec_stmts(st, body, pol, env)?;
                let sv = eval(st, step)?;
                let cur = st.scalar(var);
                st.set_scalar(var, cur.wrapping_add(sv));
                iter += 1;
            }
            let verdict = st.loop_exit(*id);
            let seconds = start.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
            if env.timing {
                env.stats.record(*id, iter, seconds, ExecMode::Serial);
            }
            if let Some(conflict_free) = verdict {
                env.stats.record_inspection(*id, conflict_free);
            }
            Ok(())
        }
        Stmt::While { id, cond, body } => {
            let start = env.timing.then(Instant::now);
            let mut iter: u64 = 0;
            while eval(st, cond)? != 0 {
                if iter >= env.while_cap {
                    return Err(ExecError::NonTerminating {
                        loop_id: *id,
                        cap: env.while_cap,
                    });
                }
                exec_stmts(st, body, pol, env)?;
                iter += 1;
            }
            if let Some(t) = start {
                env.stats
                    .record(*id, iter, t.elapsed().as_secs_f64(), ExecMode::Serial);
            }
            Ok(())
        }
    }
}

/// The serial reference engine: tree-walks the whole program against the
/// heap (what `registry::AstEngine::run_serial` executes).
pub(crate) fn run_serial_ast(
    program: &Program,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let mut stats = ExecStats::default();
    let start = Instant::now();
    {
        // Record under the same baseline flag as the parallel engine so
        // that per-loop timings of the two runs are like-for-like.
        let mut store = HeapStore::new(&mut heap, opts.baseline_inspector);
        let mut env = ExecEnv {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_stmts(&mut store, &program.body, &mut NoDispatch, &mut env)?;
    }
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}
