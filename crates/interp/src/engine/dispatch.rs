//! The AST (tree-walking) parallel engine.
//!
//! Kept as the differential reference for the compiled engine: same verdict
//! consumption, same scalar merge-back, but name-keyed stores and per-entry
//! snapshots.  Two deliberate limitations distinguish it from the compiled
//! dispatcher: loops whose bodies declare arrays are left serial (workers
//! have no private array storage), and reduction loops are left serial (a
//! name-keyed last-write merge cannot express a combiner).  It is also the
//! engine that carries the runtime-inspector baseline, whose recording
//! store hooks into the tree walker.

use super::serial::{eval, exec_stmts, ExecEnv, ForLoop, LoopPolicy, NoDispatch};
use super::store::{HeapStore, SharedArrays, Store, WorkerStore};
use super::{ExecError, ExecMode, ExecOptions, ExecOutcome, ExecStats};
use crate::heap::Heap;
use ss_ir::ast::{LoopId, Stmt};
use ss_ir::Program;
use ss_parallelizer::ParallelizationReport;
use ss_runtime::{parallel_for_schedule, Schedule};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

struct ParallelDispatch<'r> {
    dispatchable: &'r HashSet<LoopId>,
    opts: &'r ExecOptions,
}

impl LoopPolicy<HeapStore<'_>> for ParallelDispatch<'_> {
    fn try_dispatch(
        &mut self,
        st: &mut HeapStore<'_>,
        f: &ForLoop<'_>,
        env: &mut ExecEnv<'_>,
    ) -> Result<bool, ExecError> {
        if !self.dispatchable.contains(&f.id) || self.opts.threads <= 1 {
            return Ok(false);
        }
        if body_declares_array(f.body) {
            // Loop-local arrays would need per-worker allocation + merge;
            // the compiled engine provides that, this reference engine runs
            // such loops serially.
            return Ok(false);
        }
        // Materialize the iteration space.  Loop bound and step of a proven
        // parallel loop are invariant under its body (a loop rewriting its
        // own bound has a dependence the range test rejects), so evaluating
        // them once up front matches serial semantics.
        let v0 = eval(st, f.init)?;
        let bound = eval(st, f.bound)?;
        let step = eval(st, f.step)?;
        let (values, exit_value) =
            super::materialize_iteration_space(v0, bound, step, f.cond_op, f.id, env.while_cap)?;
        let n = values.len();
        if n < self.opts.min_parallel_trip {
            return Ok(false);
        }

        st.mark_frames_blind();
        let start = Instant::now();
        let threads = self.opts.threads;
        let schedule = super::choose_schedule(
            self.opts.schedule,
            ss_ir::slots::body_is_skewed(f.body),
            n,
            threads,
            self.opts.chunk,
        );
        let dynamic = matches!(schedule, Schedule::Dynamic { .. });

        let snapshot: HashMap<String, (i64, Option<usize>)> = st
            .heap
            .scalars
            .iter()
            .map(|(k, v)| (k.clone(), (*v, None)))
            .collect();
        let shared = SharedArrays::capture(st.heap);
        let while_cap = env.while_cap;
        type ChunkResult = (Result<(), ExecError>, HashMap<String, (usize, i64)>);
        let results: Mutex<Vec<ChunkResult>> = Mutex::new(Vec::new());

        parallel_for_schedule(threads, n, schedule, |range| {
            let mut ws = WorkerStore {
                shared: &shared,
                scalars: snapshot.clone(),
                current_iter: 0,
            };
            let mut scratch_stats = ExecStats::default();
            let mut wenv = ExecEnv {
                stats: &mut scratch_stats,
                timing: false,
                while_cap,
            };
            let mut res = Ok(());
            for k in range {
                ws.current_iter = k;
                ws.set_scalar(f.var, values[k]);
                if let Err(e) = exec_stmts(&mut ws, f.body, &mut NoDispatch, &mut wenv) {
                    res = Err(e);
                    break;
                }
            }
            let merged: HashMap<String, (usize, i64)> = ws
                .scalars
                .into_iter()
                .filter_map(|(name, (value, iter))| iter.map(|it| (name, (it, value))))
                .collect();
            results.lock().unwrap().push((res, merged));
        });

        let chunks = results.into_inner().unwrap();
        if let Some((Err(e), _)) = chunks.iter().find(|(r, _)| r.is_err()) {
            return Err(e.clone());
        }
        // Merge scalars by last-writing iteration: for write-before-read
        // (privatizable) scalars — the only kind a proven-parallel body may
        // write — this reproduces the serial final values exactly.
        let mut final_writes: BTreeMap<&String, (usize, i64)> = BTreeMap::new();
        for (_, writes) in &chunks {
            for (name, &(iter, value)) in writes {
                match final_writes.get(name) {
                    Some(&(best, _)) if best >= iter => {}
                    _ => {
                        final_writes.insert(name, (iter, value));
                    }
                }
            }
        }
        for (name, (_, value)) in final_writes {
            st.heap.scalars.insert(name.clone(), value);
        }
        st.heap.scalars.insert(f.var.to_string(), exit_value);

        env.stats.record(
            f.id,
            n as u64,
            start.elapsed().as_secs_f64(),
            ExecMode::Parallel { threads, dynamic },
        );
        Ok(true)
    }
}

fn body_declares_array(body: &[Stmt]) -> bool {
    let mut found = false;
    walk_body(body, &mut |s| {
        if let Stmt::Decl { dims, .. } = s {
            if !dims.is_empty() {
                found = true;
            }
        }
    });
    found
}

fn walk_body(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        for block in s.child_blocks() {
            walk_body(block, f);
        }
    }
}

/// The AST parallel engine: dispatches the independence-parallel outermost
/// loops of `report` (reduction loops and loops with body-local array
/// declarations stay serial here — the compiled engine handles those),
/// optionally recording the runtime-inspector baseline on serial loops.
pub(crate) fn run_parallel_ast(
    program: &Program,
    report: &ParallelizationReport,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    // Only independence-parallel loops: the name-keyed last-write merge has
    // no combiner for reduction accumulators.
    let dispatchable: HashSet<LoopId> = report
        .outermost_parallel_loops()
        .into_iter()
        .filter(|id| {
            report
                .loop_report(*id)
                .map(|l| l.reductions.is_empty())
                .unwrap_or(false)
        })
        .collect();
    let mut stats = ExecStats::default();
    let start = Instant::now();
    {
        let mut store = HeapStore::new(&mut heap, opts.baseline_inspector);
        let mut policy = ParallelDispatch {
            dispatchable: &dispatchable,
            opts,
        };
        let mut env = ExecEnv {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_stmts(&mut store, &program.body, &mut policy, &mut env)?;
    }
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}
