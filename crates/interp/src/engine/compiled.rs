//! The compiled engines: slot-addressed execution over dense frames.
//!
//! [`ss_ir::slots`] resolves every name once, at compile time; these
//! engines then execute [`CompiledBody`] op sequences against a `Frame`
//! whose scalars are a plain `Vec<i64>` — no hashing, no per-loop
//! free-variable analysis, no per-iteration snapshot construction.  The
//! parallel engine dispatches every outermost loop the report licenses:
//!
//! * **independent** loops run exactly like the AST engine's dispatch
//!   (shared arrays, private scalar frames, last-writing-iteration merge),
//!   but the scalar snapshot is a dense `Vec` clone and the merge a dense
//!   scan;
//! * **reduction** loops run with per-worker partial accumulators started
//!   at the operator's identity and merged by the combiner
//!   ([`ss_runtime::parallel_reduce`]) — integer `+`/`min`/`max` are
//!   associative and commutative, so the merged result is bit-identical to
//!   the serial one;
//! * loops whose bodies **declare arrays** give those arrays worker-private
//!   storage, re-zeroed per iteration exactly like the serial engines, and
//!   merge back the storage of the globally last iteration.
//!
//! Semantics mirror the tree walker operation for operation (same
//! evaluation order, same wrapping arithmetic, same error points), so final
//! heaps are bit-identical across engines — `validate` asserts exactly
//! that.

use super::serial::{apply_assign, apply_binop, compare};
use super::store::elem_at;
use super::{ExecEnvTiming, ExecError, ExecMode, ExecOptions, ExecOutcome, ExecStats};
use crate::heap::{row_major_flat, ArrayVal, Heap};
use ss_ir::ast::{AssignOp, BinOp, LoopId, UnOp};
use ss_ir::slots::{
    ArraySlot, CExpr, CompiledBody, CompiledFor, CompiledProgram, Op, ScalarSlot, SlotMap,
};
use ss_parallelizer::{ParallelizationReport, ReductionInfo};
use ss_runtime::{parallel_reduce, Schedule};
use std::collections::HashMap;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Slot stores.
// ---------------------------------------------------------------------------

/// Where slot-addressed accesses land.
trait SlotStore {
    fn scalar(&self, s: ScalarSlot) -> i64;
    fn set_scalar(&mut self, s: ScalarSlot, v: i64);
    fn read_elem(&mut self, a: ArraySlot, indices: &[i64]) -> Result<i64, ExecError>;
    fn write_elem(&mut self, a: ArraySlot, indices: &[i64], v: i64) -> Result<(), ExecError>;
    fn declare_array(&mut self, a: ArraySlot, dims: Vec<usize>);
}

/// The spine store: dense scalar and array slots, materialized from (and
/// back into) a [`Heap`].  `defined` tracks which scalar slots the program
/// actually wrote (or the initial heap supplied) so the final heap contains
/// exactly the names the tree walker would produce.
struct Frame<'m> {
    slots: &'m SlotMap,
    scalars: Vec<i64>,
    defined: Vec<bool>,
    arrays: Vec<Option<ArrayVal>>,
}

impl<'m> Frame<'m> {
    /// Moves the slotted portion of `heap` into a dense frame (arrays are
    /// taken, not cloned; unslotted heap entries stay in `heap`).
    fn from_heap(heap: &mut Heap, slots: &'m SlotMap) -> Frame<'m> {
        let mut scalars = vec![0i64; slots.scalar_count()];
        let mut defined = vec![false; slots.scalar_count()];
        for (i, name) in slots.scalar_names().iter().enumerate() {
            if let Some(&v) = heap.scalars.get(name) {
                scalars[i] = v;
                defined[i] = true;
            }
        }
        let arrays = slots
            .array_names()
            .iter()
            .map(|name| heap.arrays.remove(name))
            .collect();
        Frame {
            slots,
            scalars,
            defined,
            arrays,
        }
    }

    /// Writes defined scalars and live arrays back into `heap`.
    fn into_heap(self, heap: &mut Heap) {
        for (i, name) in self.slots.scalar_names().iter().enumerate() {
            if self.defined[i] {
                heap.scalars.insert(name.clone(), self.scalars[i]);
            }
        }
        for (i, arr) in self.arrays.into_iter().enumerate() {
            if let Some(a) = arr {
                heap.arrays.insert(self.slots.array_names()[i].clone(), a);
            }
        }
    }
}

impl SlotStore for Frame<'_> {
    #[inline]
    fn scalar(&self, s: ScalarSlot) -> i64 {
        self.scalars[s.index()]
    }

    #[inline]
    fn set_scalar(&mut self, s: ScalarSlot, v: i64) {
        self.scalars[s.index()] = v;
        self.defined[s.index()] = true;
    }

    fn read_elem(&mut self, a: ArraySlot, indices: &[i64]) -> Result<i64, ExecError> {
        let name = self.slots.array_name(a);
        let arr = self.arrays[a.index()]
            .as_ref()
            .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
        elem_at(name, arr, indices).map(|flat| arr.data[flat])
    }

    fn write_elem(&mut self, a: ArraySlot, indices: &[i64], v: i64) -> Result<(), ExecError> {
        let name = self.slots.array_name(a);
        let arr = self.arrays[a.index()]
            .as_mut()
            .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
        let flat = elem_at(name, arr, indices)?;
        arr.data[flat] = v;
        Ok(())
    }

    fn declare_array(&mut self, a: ArraySlot, dims: Vec<usize>) {
        self.arrays[a.index()] = Some(ArrayVal::zeros(dims));
    }
}

/// Raw views of the frame's shared arrays, one per array slot (`None` for
/// worker-private or absent slots).  Shared with the bytecode engine, whose
/// workers need exactly the same views.
pub(super) struct SharedSlots {
    arrs: Vec<Option<SharedSlotArray>>,
}

struct SharedSlotArray {
    /// `*mut i64` smuggled as usize for `Send`.
    ptr: usize,
    dims: Vec<usize>,
    len: usize,
}

// SAFETY: workers only access disjoint elements (the dispatched loop's
// proven property); the Vec storage is neither grown nor freed while
// workers run.
unsafe impl Sync for SharedSlots {}

impl SharedSlots {
    pub(super) fn capture(arrays: &mut [Option<ArrayVal>], local: &[bool]) -> SharedSlots {
        let arrs = arrays
            .iter_mut()
            .enumerate()
            .map(|(i, a)| match a {
                Some(arr) if !local[i] => Some(SharedSlotArray {
                    ptr: arr.data.as_mut_ptr() as usize,
                    dims: arr.dims.clone(),
                    len: arr.data.len(),
                }),
                _ => None,
            })
            .collect();
        SharedSlots { arrs }
    }

    /// Bounds-checked flat offset into the shared view of `a`, plus the raw
    /// storage pointer (as usize).  Same error points as the heap path.
    pub(super) fn flat(
        &self,
        slots: &SlotMap,
        a: ArraySlot,
        indices: &[i64],
    ) -> Result<(usize, usize), ExecError> {
        let name = || slots.array_name(a).to_string();
        let Some(arr) = &self.arrs[a.index()] else {
            return Err(ExecError::UndefinedArray(name()));
        };
        if indices.len() != arr.dims.len() {
            return Err(ExecError::ArityMismatch {
                array: name(),
                expected: arr.dims.len(),
                got: indices.len(),
            });
        }
        let flat = row_major_flat(&arr.dims, indices).ok_or_else(|| ExecError::OutOfBounds {
            array: name(),
            indices: indices.to_vec(),
            dims: arr.dims.clone(),
        })?;
        debug_assert!(flat < arr.len);
        Ok((arr.ptr, flat))
    }
}

pub(super) const NOT_WRITTEN: usize = usize::MAX;

/// Per-worker store of the compiled parallel engine: shared raw-pointer
/// array views, a private dense scalar frame with last-write iterations,
/// and private storage for loop-local arrays.
struct CompiledWorker<'s> {
    slots: &'s SlotMap,
    shared: &'s SharedSlots,
    local: &'s [bool],
    scalars: Vec<i64>,
    write_iter: Vec<usize>,
    locals: Vec<Option<ArrayVal>>,
    local_write_iter: Vec<usize>,
    current_iter: usize,
}

impl SlotStore for CompiledWorker<'_> {
    #[inline]
    fn scalar(&self, s: ScalarSlot) -> i64 {
        self.scalars[s.index()]
    }

    #[inline]
    fn set_scalar(&mut self, s: ScalarSlot, v: i64) {
        self.scalars[s.index()] = v;
        self.write_iter[s.index()] = self.current_iter;
    }

    fn read_elem(&mut self, a: ArraySlot, indices: &[i64]) -> Result<i64, ExecError> {
        let i = a.index();
        if self.local[i] {
            let name = self.slots.array_name(a);
            let arr = self.locals[i]
                .as_ref()
                .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
            return elem_at(name, arr, indices).map(|flat| arr.data[flat]);
        }
        let (ptr, flat) = self.shared_flat(a, indices)?;
        // SAFETY: flat is bounds-checked; disjointness across workers is
        // the dispatched loop's proven property.
        Ok(unsafe { *(ptr as *const i64).add(flat) })
    }

    fn write_elem(&mut self, a: ArraySlot, indices: &[i64], v: i64) -> Result<(), ExecError> {
        let i = a.index();
        if self.local[i] {
            let name = self.slots.array_name(a);
            let arr = self.locals[i]
                .as_mut()
                .ok_or_else(|| ExecError::UndefinedArray(name.to_string()))?;
            let flat = elem_at(name, arr, indices)?;
            arr.data[flat] = v;
            self.local_write_iter[i] = self.current_iter;
            return Ok(());
        }
        let (ptr, flat) = self.shared_flat(a, indices)?;
        // SAFETY: as above.
        unsafe {
            *(ptr as *mut i64).add(flat) = v;
        }
        Ok(())
    }

    fn declare_array(&mut self, a: ArraySlot, dims: Vec<usize>) {
        // Every declaration inside a dispatched body targets a local slot
        // (that is how `local_arrays` is computed).
        let i = a.index();
        self.locals[i] = Some(ArrayVal::zeros(dims));
        self.local_write_iter[i] = self.current_iter;
    }
}

impl CompiledWorker<'_> {
    fn shared_flat(&self, a: ArraySlot, indices: &[i64]) -> Result<(usize, usize), ExecError> {
        self.shared.flat(self.slots, a, indices)
    }
}

// ---------------------------------------------------------------------------
// The op executor.
// ---------------------------------------------------------------------------

fn eval<S: SlotStore>(st: &mut S, e: &CExpr) -> Result<i64, ExecError> {
    match e {
        CExpr::Int(v) => Ok(*v),
        CExpr::Scalar(s) => Ok(st.scalar(*s)),
        CExpr::Load { array, indices } => {
            // Rank-1 fast path: no index vector allocation.
            if let [ie] = indices.as_ref() {
                let idx = [eval(st, ie)?];
                return st.read_elem(*array, &idx);
            }
            let mut idxs = Vec::with_capacity(indices.len());
            for ie in indices.iter() {
                idxs.push(eval(st, ie)?);
            }
            st.read_elem(*array, &idxs)
        }
        CExpr::Binary(op, a, b) => {
            match op {
                BinOp::And => {
                    return Ok(if eval(st, a)? != 0 && eval(st, b)? != 0 {
                        1
                    } else {
                        0
                    })
                }
                BinOp::Or => {
                    return Ok(if eval(st, a)? != 0 || eval(st, b)? != 0 {
                        1
                    } else {
                        0
                    })
                }
                _ => {}
            }
            let x = eval(st, a)?;
            let y = eval(st, b)?;
            apply_binop(*op, x, y)
        }
        CExpr::Unary(op, a) => {
            let x = eval(st, a)?;
            Ok(match op {
                UnOp::Neg => x.wrapping_neg(),
                UnOp::Not => (x == 0) as i64,
            })
        }
    }
}

/// Decides what happens when the executor reaches a compiled `for` loop.
trait CompiledPolicy<S: SlotStore> {
    fn try_dispatch(
        &mut self,
        st: &mut S,
        f: &CompiledFor,
        env: &mut ExecEnvTiming<'_>,
    ) -> Result<bool, ExecError>;
}

/// Policy that never dispatches (serial engine, workers).
struct NoDispatchC;

impl<S: SlotStore> CompiledPolicy<S> for NoDispatchC {
    fn try_dispatch(
        &mut self,
        _st: &mut S,
        _f: &CompiledFor,
        _env: &mut ExecEnvTiming<'_>,
    ) -> Result<bool, ExecError> {
        Ok(false)
    }
}

fn exec_body<S: SlotStore, P: CompiledPolicy<S>>(
    st: &mut S,
    body: &CompiledBody,
    pol: &mut P,
    env: &mut ExecEnvTiming<'_>,
) -> Result<(), ExecError> {
    let ops = &body.ops;
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::SetScalar { slot, op, value } => {
                let rhs = eval(st, value)?;
                let v = match op {
                    AssignOp::Assign => rhs,
                    _ => apply_assign(*op, st.scalar(*slot), rhs),
                };
                st.set_scalar(*slot, v);
            }
            Op::StoreElem {
                array,
                indices,
                op,
                value,
            } => {
                // Same order as the tree walker: value, then indices, then
                // (for compound ops) the element read.
                let rhs = eval(st, value)?;
                if let [ie] = indices.as_ref() {
                    let idx = [eval(st, ie)?];
                    let v = match op {
                        AssignOp::Assign => rhs,
                        _ => apply_assign(*op, st.read_elem(*array, &idx)?, rhs),
                    };
                    st.write_elem(*array, &idx, v)?;
                } else {
                    let mut idxs = Vec::with_capacity(indices.len());
                    for ie in indices.iter() {
                        idxs.push(eval(st, ie)?);
                    }
                    let v = match op {
                        AssignOp::Assign => rhs,
                        _ => apply_assign(*op, st.read_elem(*array, &idxs)?, rhs),
                    };
                    st.write_elem(*array, &idxs, v)?;
                }
            }
            Op::DeclArray { array, dims } => {
                let mut extents = Vec::with_capacity(dims.len());
                for d in dims.iter() {
                    extents.push(eval(st, d)?.max(0) as usize);
                }
                st.declare_array(*array, extents);
            }
            Op::BranchIfZero { cond, target } => {
                if eval(st, cond)? == 0 {
                    pc = *target;
                    continue;
                }
            }
            Op::Jump { target } => {
                pc = *target;
                continue;
            }
            Op::For(f) => exec_for(st, f, pol, env)?,
            Op::While { id, cond, body } => {
                let start = env.timing.then(Instant::now);
                let mut iter: u64 = 0;
                while eval(st, cond)? != 0 {
                    if iter >= env.while_cap {
                        return Err(ExecError::NonTerminating {
                            loop_id: *id,
                            cap: env.while_cap,
                        });
                    }
                    exec_body(st, body, pol, env)?;
                    iter += 1;
                }
                if let Some(t) = start {
                    env.stats
                        .record(*id, iter, t.elapsed().as_secs_f64(), ExecMode::Serial);
                }
            }
        }
        pc += 1;
    }
    Ok(())
}

fn exec_for<S: SlotStore, P: CompiledPolicy<S>>(
    st: &mut S,
    f: &CompiledFor,
    pol: &mut P,
    env: &mut ExecEnvTiming<'_>,
) -> Result<(), ExecError> {
    if pol.try_dispatch(st, f, env)? {
        return Ok(());
    }
    let start = env.timing.then(Instant::now);
    let v0 = eval(st, &f.init)?;
    st.set_scalar(f.var, v0);
    let mut iter: u64 = 0;
    loop {
        let v = st.scalar(f.var);
        let b = eval(st, &f.bound)?;
        if !compare(f.cond_op, v, b) {
            break;
        }
        if iter >= env.while_cap {
            return Err(ExecError::NonTerminating {
                loop_id: f.id,
                cap: env.while_cap,
            });
        }
        exec_body(st, &f.body, pol, env)?;
        let sv = eval(st, &f.step)?;
        let cur = st.scalar(f.var);
        st.set_scalar(f.var, cur.wrapping_add(sv));
        iter += 1;
    }
    if let Some(t) = start {
        env.stats
            .record(f.id, iter, t.elapsed().as_secs_f64(), ExecMode::Serial);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The parallel dispatch policy.
// ---------------------------------------------------------------------------

/// One worker chunk's contribution, folded over the chunks a worker steals
/// and merged across workers by [`ChunkAcc::combine`].  The merge is
/// engine-agnostic (slot indices, iteration numbers, array values), so the
/// bytecode dispatcher reuses it as-is.
#[derive(Clone)]
pub(super) struct ChunkAcc {
    pub(super) err: Option<ExecError>,
    /// Last write per scalar slot: `(iteration, value)`.
    pub(super) scalar_writes: Vec<Option<(usize, i64)>>,
    /// Reduction partials, aligned with the loop's `ReductionInfo` list.
    pub(super) partials: Vec<i64>,
    /// Loop-local array state of the latest iteration seen, aligned with
    /// `CompiledFor::local_arrays`.
    pub(super) locals: Vec<Option<(usize, ArrayVal)>>,
}

impl ChunkAcc {
    pub(super) fn identity(
        nscalars: usize,
        reductions: &[ReductionInfo],
        nlocals: usize,
    ) -> ChunkAcc {
        ChunkAcc {
            err: None,
            scalar_writes: vec![None; nscalars],
            partials: reductions.iter().map(|r| r.op.identity()).collect(),
            locals: vec![None; nlocals],
        }
    }

    pub(super) fn combine(mut self, other: ChunkAcc, reductions: &[ReductionInfo]) -> ChunkAcc {
        if self.err.is_none() {
            self.err = other.err;
        }
        for (mine, theirs) in self.scalar_writes.iter_mut().zip(other.scalar_writes) {
            match (&mine, &theirs) {
                (Some((a, _)), Some((b, _))) if *a >= *b => {}
                (_, Some(_)) => *mine = theirs,
                _ => {}
            }
        }
        for ((mine, theirs), r) in self.partials.iter_mut().zip(other.partials).zip(reductions) {
            *mine = r.op.combine(*mine, theirs);
        }
        for (mine, theirs) in self.locals.iter_mut().zip(other.locals) {
            match (&mine, &theirs) {
                (Some((a, _)), Some((b, _))) if *a >= *b => {}
                (_, Some(_)) => *mine = theirs,
                _ => {}
            }
        }
        self
    }
}

struct CompiledDispatch<'r> {
    /// Outermost dispatchable loops with their (possibly empty) reductions.
    dispatchable: &'r HashMap<LoopId, Vec<ReductionInfo>>,
    opts: &'r ExecOptions,
}

impl CompiledPolicy<Frame<'_>> for CompiledDispatch<'_> {
    fn try_dispatch(
        &mut self,
        st: &mut Frame<'_>,
        f: &CompiledFor,
        env: &mut ExecEnvTiming<'_>,
    ) -> Result<bool, ExecError> {
        let Some(reductions) = self.dispatchable.get(&f.id) else {
            return Ok(false);
        };
        if self.opts.threads <= 1 {
            return Ok(false);
        }
        if reductions.iter().any(|r| !st.defined[r.slot.index()]) {
            // An accumulator nobody initialized: the serial run may never
            // write it at all (a guarded min/max whose guard never fires
            // against the implicit 0), so its name must stay absent from
            // the final heap — something a combiner merge-back cannot
            // reproduce.  Run such loops serially; every real reduction
            // initializes its accumulator (and synthesized inputs bind all
            // free scalars).
            return Ok(false);
        }
        if !f.local_arrays.is_empty() && !f.locals_dominated {
            // A worker could observe pre-declaration storage the serial
            // execution would not; keep such loops serial.
            return Ok(false);
        }
        // Materialize the iteration space (bound and step of a dispatchable
        // loop are invariant under its body).
        let v0 = eval(st, &f.init)?;
        let bound = eval(st, &f.bound)?;
        let step = eval(st, &f.step)?;
        let (values, exit_value) =
            super::materialize_iteration_space(v0, bound, step, f.cond_op, f.id, env.while_cap)?;
        let n = values.len();
        if n < self.opts.min_parallel_trip {
            return Ok(false);
        }

        let start = Instant::now();
        let threads = self.opts.threads;
        let schedule =
            super::choose_schedule(self.opts.schedule, f.skewed, n, threads, self.opts.chunk);
        let dynamic = matches!(schedule, Schedule::Dynamic { .. });

        let nscalars = st.scalars.len();
        let narrays = st.arrays.len();
        let mut local = vec![false; narrays];
        for a in &f.local_arrays {
            local[a.index()] = true;
        }
        // The one resolved slot table serves every iteration of every
        // invocation: the per-dispatch setup is a dense clone, not a
        // name-keyed snapshot rebuilt from free variables.
        let mut snapshot = st.scalars.clone();
        for r in reductions {
            snapshot[r.slot.index()] = r.op.identity();
        }
        let mut is_reduction = vec![false; nscalars];
        for r in reductions {
            is_reduction[r.slot.index()] = true;
        }
        let shared = SharedSlots::capture(&mut st.arrays, &local);
        let slots = st.slots;
        let while_cap = env.while_cap;
        let values = &values;
        let local_ref = &local;
        let snapshot_ref = &snapshot;
        let is_reduction_ref = &is_reduction;

        let acc = parallel_reduce(
            threads,
            n,
            schedule,
            ChunkAcc::identity(nscalars, reductions, f.local_arrays.len()),
            |range, mut acc| {
                if acc.err.is_some() {
                    return acc;
                }
                let mut ws = CompiledWorker {
                    slots,
                    shared: &shared,
                    local: local_ref,
                    scalars: snapshot_ref.clone(),
                    write_iter: vec![NOT_WRITTEN; nscalars],
                    locals: vec![None; narrays],
                    local_write_iter: vec![NOT_WRITTEN; narrays],
                    current_iter: 0,
                };
                let mut scratch_stats = ExecStats::default();
                let mut wenv = ExecEnvTiming {
                    stats: &mut scratch_stats,
                    timing: false,
                    while_cap,
                };
                for k in range {
                    ws.current_iter = k;
                    ws.set_scalar(f.var, values[k]);
                    if let Err(e) = exec_body(&mut ws, &f.body, &mut NoDispatchC, &mut wenv) {
                        acc.err = Some(e);
                        break;
                    }
                }
                // Fold the worker's state into the accumulator.
                for (slot, &iter) in ws.write_iter.iter().enumerate() {
                    if iter == NOT_WRITTEN || is_reduction_ref[slot] {
                        continue;
                    }
                    match acc.scalar_writes[slot] {
                        Some((best, _)) if best >= iter => {}
                        _ => acc.scalar_writes[slot] = Some((iter, ws.scalars[slot])),
                    }
                }
                for (i, r) in reductions.iter().enumerate() {
                    acc.partials[i] = r.op.combine(acc.partials[i], ws.scalars[r.slot.index()]);
                }
                for (i, a) in f.local_arrays.iter().enumerate() {
                    let iter = ws.local_write_iter[a.index()];
                    if iter == NOT_WRITTEN {
                        continue;
                    }
                    if let Some(arr) = ws.locals[a.index()].take() {
                        match &acc.locals[i] {
                            Some((best, _)) if *best >= iter => {}
                            _ => acc.locals[i] = Some((iter, arr)),
                        }
                    }
                }
                acc
            },
            |a, b| a.combine(b, reductions),
        );

        let ChunkAcc {
            err,
            scalar_writes,
            partials,
            locals,
        } = acc;
        if let Some(e) = err {
            return Err(e);
        }
        // Merge back: last-writing iteration for ordinary scalars, combiner
        // against the pre-loop value for reduction accumulators, the
        // globally last iteration's storage for loop-local arrays.
        for (slot, w) in scalar_writes.into_iter().enumerate() {
            if let Some((_, value)) = w {
                st.scalars[slot] = value;
                st.defined[slot] = true;
            }
        }
        for (r, partial) in reductions.iter().zip(partials) {
            let merged = r.op.combine(st.scalars[r.slot.index()], partial);
            st.set_scalar(r.slot, merged);
        }
        for (a, entry) in f.local_arrays.iter().zip(locals) {
            if let Some((_, arr)) = entry {
                st.arrays[a.index()] = Some(arr);
            }
        }
        st.set_scalar(f.var, exit_value);

        env.stats.record(
            f.id,
            n as u64,
            start.elapsed().as_secs_f64(),
            ExecMode::Parallel { threads, dynamic },
        );
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Engines.
// ---------------------------------------------------------------------------

/// The compiled serial engine.  `compiled` comes precompiled from the
/// pipeline ([`ss_parallelizer::Artifacts`]); this function never compiles.
pub(crate) fn run_serial_compiled(
    compiled: &CompiledProgram,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let mut stats = ExecStats::default();
    let start = Instant::now();
    let mut frame = Frame::from_heap(&mut heap, &compiled.slots);
    {
        let mut env = ExecEnvTiming {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_body(&mut frame, &compiled.body, &mut NoDispatchC, &mut env)?;
    }
    frame.into_heap(&mut heap);
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}

/// The compiled parallel engine: dispatches every outermost parallelizable
/// loop of `report` — independent loops, reduction loops (with combiner
/// merge) and loops with body-local array declarations (with per-worker
/// private storage).  `compiled` comes precompiled from the pipeline.
pub(crate) fn run_parallel_compiled(
    compiled: &CompiledProgram,
    report: &ParallelizationReport,
    mut heap: Heap,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let dispatchable: HashMap<LoopId, Vec<ReductionInfo>> = report
        .outermost_parallel_loops()
        .into_iter()
        .map(|id| {
            (
                id,
                report
                    .loop_report(id)
                    .map(|l| l.reductions.clone())
                    .unwrap_or_default(),
            )
        })
        .collect();
    let mut stats = ExecStats::default();
    let start = Instant::now();
    let mut frame = Frame::from_heap(&mut heap, &compiled.slots);
    {
        let mut policy = CompiledDispatch {
            dispatchable: &dispatchable,
            opts,
        };
        let mut env = ExecEnvTiming {
            stats: &mut stats,
            timing: true,
            while_cap: opts.while_cap,
        };
        exec_body(&mut frame, &compiled.body, &mut policy, &mut env)?;
    }
    frame.into_heap(&mut heap);
    stats.total_seconds = start.elapsed().as_secs_f64();
    Ok(ExecOutcome { heap, stats })
}
