//! The differential-validation harness: every compile-time verdict — and
//! both compilation passes — becomes a tested claim.
//!
//! For a given program the harness (1) runs the compile-time analysis,
//! (2) synthesizes inputs, (3) executes the program four ways — with the
//! tree-walking serial reference engine, with the compiled serial engine,
//! with the bytecode serial engine, and with the parallel engine (the
//! requested one) — and (4) asserts all final heaps are bit-identical
//! (ast ≡ compiled ≡ bytecode ≡ parallel).  A serial-vs-parallel mismatch
//! means the analysis proved a loop parallel whose parallel execution
//! changed observable state — exactly the soundness bug class the paper's
//! approach must exclude; an ast-vs-compiled or ast-vs-bytecode mismatch
//! means a compilation pass changed program semantics.

use crate::engine::{run_parallel, run_serial_with, EngineChoice, ExecOptions, ExecStats};
use crate::heap::Heap;
use crate::inputs::{synthesize_inputs, InputSpec};
use ss_ir::{parse_program, IrError, LoopId, Program};
use ss_parallelizer::{parallelize, ParallelizationReport};

/// Everything that can go wrong running the harness.
#[derive(Debug)]
pub enum ValidationError {
    /// The source did not parse.
    Parse(IrError),
    /// Input synthesis or one of the engines failed at runtime.
    Exec(crate::ExecError),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Parse(e) => write!(f, "parse error: {e}"),
            ValidationError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<IrError> for ValidationError {
    fn from(e: IrError) -> ValidationError {
        ValidationError::Parse(e)
    }
}

impl From<crate::ExecError> for ValidationError {
    fn from(e: crate::ExecError) -> ValidationError {
        ValidationError::Exec(e)
    }
}

/// The harness result for one program.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// Program name.
    pub program: String,
    /// Loops the analysis proved parallelizable (outermost ones, reduction
    /// loops included).
    pub proven_parallel: Vec<LoopId>,
    /// Loops the parallel engine actually dispatched to threads.
    pub dispatched: Vec<LoopId>,
    /// Statistics of the serial run with the requested engine.
    pub serial: ExecStats,
    /// Statistics of the parallel run.
    pub parallel: ExecStats,
    /// True when all final heaps (serial-ast, serial-compiled,
    /// serial-bytecode, parallel) were bit-identical.
    pub heaps_match: bool,
    /// Human-readable differences when they were not (bounded per array),
    /// each prefixed with the comparison that produced it.
    pub mismatches: Vec<String>,
    /// The final heap of the serial tree-walking (reference) run.
    pub final_heap: Heap,
}

impl ValidationOutcome {
    /// Serial wall-clock over parallel wall-clock for the whole program.
    pub fn speedup(&self) -> f64 {
        self.serial.total_seconds / self.parallel.total_seconds.max(1e-12)
    }
}

/// Runs the differential harness on an already-analyzed program against an
/// explicit initial heap: the serial tree-walking reference, the serial
/// compiled engine, the serial bytecode engine and the parallel engine
/// (with the requested strategy), all final heaps compared bit for bit.
pub fn validate(
    program: &Program,
    report: &ParallelizationReport,
    initial: &Heap,
    opts: &ExecOptions,
) -> Result<ValidationOutcome, crate::ExecError> {
    let ast_opts = ExecOptions {
        engine: EngineChoice::Ast,
        ..opts.clone()
    };
    let reference = run_serial_with(program, initial.clone(), &ast_opts)?;
    let mut mismatches = Vec::new();
    // Every non-reference serial engine runs and is diffed; the requested
    // engine's stats are the ones reported.
    let mut serial = None;
    for (engine, label) in [
        (EngineChoice::Compiled, "serial-ast vs serial-compiled"),
        (EngineChoice::Bytecode, "serial-ast vs serial-bytecode"),
    ] {
        let engine_opts = ExecOptions {
            engine,
            ..opts.clone()
        };
        let out = run_serial_with(program, initial.clone(), &engine_opts)?;
        for m in reference.heap.diff(&out.heap) {
            mismatches.push(format!("{label}: {m}"));
        }
        if engine == opts.engine {
            serial = Some(out);
        }
    }
    let parallel = run_parallel(program, report, initial.clone(), opts)?;
    for m in reference.heap.diff(&parallel.heap) {
        mismatches.push(format!("serial vs parallel: {m}"));
    }
    Ok(ValidationOutcome {
        program: program.name.clone(),
        proven_parallel: report.outermost_parallel_loops(),
        dispatched: parallel.stats.parallel_loops(),
        heaps_match: mismatches.is_empty(),
        mismatches,
        serial: serial
            .map(|s| s.stats)
            .unwrap_or_else(|| reference.stats.clone()),
        parallel: parallel.stats,
        final_heap: reference.heap,
    })
}

/// Parses, analyzes, synthesizes inputs and validates a mini-C source — the
/// full analyze → prove → compile → execute → validate loop in one call.
pub fn validate_source(
    name: &str,
    source: &str,
    spec: &InputSpec,
    opts: &ExecOptions,
) -> Result<ValidationOutcome, ValidationError> {
    let program = parse_program(name, source)?;
    let report = parallelize(&program);
    let initial = synthesize_inputs(&program, spec)?;
    Ok(validate(&program, &report, &initial, opts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn figure2_validates_end_to_end() {
        let src = r#"
            for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#;
        let out = validate_source(
            "fig2",
            src,
            &InputSpec {
                scale: 512,
                seed: 3,
            },
            &opts(4),
        )
        .unwrap();
        assert!(out.heaps_match, "{:?}", out.mismatches);
        assert_eq!(out.proven_parallel, vec![LoopId(0), LoopId(1)]);
        assert_eq!(out.dispatched, vec![LoopId(0), LoopId(1)]);
    }

    #[test]
    fn validation_covers_both_engines() {
        // Validate with the AST engine requested for the parallel run too:
        // all three executions must still agree.
        let out = validate_source(
            "fig2",
            r#"
                for (e = 0; e < nelt; e++) { mt_to_id[e] = nelt - 1 - e; }
                for (miel = 0; miel < nelt; miel++) {
                    iel = mt_to_id[miel];
                    id_to_mt[iel] = miel;
                }
            "#,
            &InputSpec { scale: 64, seed: 9 },
            &ExecOptions {
                engine: EngineChoice::Ast,
                ..opts(3)
            },
        )
        .unwrap();
        assert!(out.heaps_match, "{:?}", out.mismatches);
        assert!(!out.dispatched.is_empty());
    }

    #[test]
    fn serial_programs_validate_trivially() {
        let out = validate_source(
            "seq",
            "for (i = 1; i < n; i++) { s[i] = s[i-1] + 1; }",
            &InputSpec::default(),
            &opts(4),
        )
        .unwrap();
        assert!(out.heaps_match);
        assert!(out.dispatched.is_empty());
        assert!(out.speedup() > 0.0);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            validate_source(
                "bad",
                "for (i = 0 i < n; i++) {}",
                &InputSpec::default(),
                &opts(2)
            ),
            Err(ValidationError::Parse(_))
        ));
    }
}
