//! The differential-validation harness: every compile-time verdict becomes a
//! tested claim.
//!
//! For a given program the harness (1) runs the compile-time analysis,
//! (2) synthesizes inputs, (3) executes the program with the serial
//! reference engine and with the parallel engine, and (4) asserts the final
//! heaps are bit-identical.  A mismatch means the analysis proved a loop
//! parallel whose parallel execution changed observable state — exactly the
//! soundness bug class the paper's approach must exclude.

use crate::exec::{run_parallel, run_serial_with, ExecOptions, ExecStats};
use crate::heap::Heap;
use crate::inputs::{synthesize_inputs, InputSpec};
use ss_ir::{parse_program, IrError, LoopId, Program};
use ss_parallelizer::{parallelize, ParallelizationReport};

/// Everything that can go wrong running the harness.
#[derive(Debug)]
pub enum ValidationError {
    /// The source did not parse.
    Parse(IrError),
    /// Input synthesis or one of the engines failed at runtime.
    Exec(crate::ExecError),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Parse(e) => write!(f, "parse error: {e}"),
            ValidationError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<IrError> for ValidationError {
    fn from(e: IrError) -> ValidationError {
        ValidationError::Parse(e)
    }
}

impl From<crate::ExecError> for ValidationError {
    fn from(e: crate::ExecError) -> ValidationError {
        ValidationError::Exec(e)
    }
}

/// The harness result for one program.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// Program name.
    pub program: String,
    /// Loops the analysis proved parallel (outermost-parallel ones).
    pub proven_parallel: Vec<LoopId>,
    /// Loops the parallel engine actually dispatched to threads.
    pub dispatched: Vec<LoopId>,
    /// Statistics of the serial reference run.
    pub serial: ExecStats,
    /// Statistics of the parallel run.
    pub parallel: ExecStats,
    /// True when the two final heaps were bit-identical.
    pub heaps_match: bool,
    /// Human-readable differences when they were not (bounded per array).
    pub mismatches: Vec<String>,
    /// The final heap of the serial (reference) run.
    pub final_heap: Heap,
}

impl ValidationOutcome {
    /// Serial wall-clock over parallel wall-clock for the whole program.
    pub fn speedup(&self) -> f64 {
        self.serial.total_seconds / self.parallel.total_seconds.max(1e-12)
    }
}

/// Runs the differential harness on an already-analyzed program against an
/// explicit initial heap.
pub fn validate(
    program: &Program,
    report: &ParallelizationReport,
    initial: &Heap,
    opts: &ExecOptions,
) -> Result<ValidationOutcome, crate::ExecError> {
    let serial = run_serial_with(program, initial.clone(), opts)?;
    let parallel = run_parallel(program, report, initial.clone(), opts)?;
    let mismatches = serial.heap.diff(&parallel.heap);
    Ok(ValidationOutcome {
        program: program.name.clone(),
        proven_parallel: report.outermost_parallel_loops(),
        dispatched: parallel.stats.parallel_loops(),
        heaps_match: mismatches.is_empty(),
        mismatches,
        serial: serial.stats,
        parallel: parallel.stats,
        final_heap: serial.heap,
    })
}

/// Parses, analyzes, synthesizes inputs and validates a mini-C source — the
/// full analyze → prove → execute → validate loop in one call.
pub fn validate_source(
    name: &str,
    source: &str,
    spec: &InputSpec,
    opts: &ExecOptions,
) -> Result<ValidationOutcome, ValidationError> {
    let program = parse_program(name, source)?;
    let report = parallelize(&program);
    let initial = synthesize_inputs(&program, spec)?;
    Ok(validate(&program, &report, &initial, opts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn figure2_validates_end_to_end() {
        let src = r#"
            for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#;
        let out = validate_source(
            "fig2",
            src,
            &InputSpec {
                scale: 512,
                seed: 3,
            },
            &opts(4),
        )
        .unwrap();
        assert!(out.heaps_match, "{:?}", out.mismatches);
        assert_eq!(out.proven_parallel, vec![LoopId(0), LoopId(1)]);
        assert_eq!(out.dispatched, vec![LoopId(0), LoopId(1)]);
    }

    #[test]
    fn serial_programs_validate_trivially() {
        let out = validate_source(
            "seq",
            "for (i = 1; i < n; i++) { s[i] = s[i-1] + 1; }",
            &InputSpec::default(),
            &opts(4),
        )
        .unwrap();
        assert!(out.heaps_match);
        assert!(out.dispatched.is_empty());
        assert!(out.speedup() > 0.0);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            validate_source(
                "bad",
                "for (i = 0 i < n; i++) {}",
                &InputSpec::default(),
                &opts(2)
            ),
            Err(ValidationError::Parse(_))
        ));
    }
}
