//! The differential-validation harness: every compile-time verdict — every
//! compilation pass, the optimizer included — becomes a tested claim.
//!
//! For a given program the harness (1) runs the staged pipeline **once**
//! ([`ss_parallelizer::Artifacts`]: analyze → slots → bytecode → opt),
//! (2) synthesizes inputs, (3) executes the program five ways off those
//! same artifacts — tree-walking serial reference, compiled serial,
//! bytecode serial at `O0`, bytecode serial at `O1`, and the parallel
//! engine (the requested one) — and (4) asserts all final heaps are
//! bit-identical (ast ≡ compiled ≡ bytecode-O0 ≡ bytecode-O1 ≡ parallel).
//! A serial-vs-parallel mismatch means the analysis proved a loop parallel
//! whose parallel execution changed observable state — exactly the
//! soundness bug class the paper's approach must exclude; an
//! ast-vs-compiled or ast-vs-bytecode mismatch means a compilation pass
//! changed program semantics; an O0-vs-O1 mismatch means the optimizer
//! did.

use crate::engine::{
    run_parallel_artifacts, run_serial_artifacts, EngineChoice, ExecOptions, ExecStats,
};
use crate::heap::Heap;
use crate::inputs::{synthesize_inputs, InputSpec};
use ss_ir::opt::OptLevel;
use ss_ir::{IrError, LoopId};
use ss_parallelizer::Artifacts;

/// Everything that can go wrong running the harness.
#[derive(Debug)]
pub enum ValidationError {
    /// The source did not parse.
    Parse(IrError),
    /// Input synthesis or one of the engines failed at runtime.
    Exec(crate::ExecError),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::Parse(e) => write!(f, "parse error: {e}"),
            ValidationError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<IrError> for ValidationError {
    fn from(e: IrError) -> ValidationError {
        ValidationError::Parse(e)
    }
}

impl From<crate::ExecError> for ValidationError {
    fn from(e: crate::ExecError) -> ValidationError {
        ValidationError::Exec(e)
    }
}

/// The harness result for one program.
#[derive(Debug, Clone)]
pub struct ValidationOutcome {
    /// Program name.
    pub program: String,
    /// Loops the analysis proved parallelizable (outermost ones, reduction
    /// loops included).
    pub proven_parallel: Vec<LoopId>,
    /// Loops the parallel engine actually dispatched to threads.
    pub dispatched: Vec<LoopId>,
    /// Statistics of the serial run with the requested engine.
    pub serial: ExecStats,
    /// Statistics of the parallel run.
    pub parallel: ExecStats,
    /// True when all final heaps (serial-ast, serial-compiled,
    /// serial-bytecode, parallel) were bit-identical.
    pub heaps_match: bool,
    /// Human-readable differences when they were not (bounded per array),
    /// each prefixed with the comparison that produced it.
    pub mismatches: Vec<String>,
    /// The final heap of the serial tree-walking (reference) run.
    pub final_heap: Heap,
}

impl ValidationOutcome {
    /// Serial wall-clock over parallel wall-clock for the whole program.
    pub fn speedup(&self) -> f64 {
        self.serial.total_seconds / self.parallel.total_seconds.max(1e-12)
    }
}

/// Runs the differential harness on one pipeline invocation's
/// [`Artifacts`] against an explicit initial heap: the serial tree-walking
/// reference, the serial compiled engine, the serial bytecode engine at
/// **both** opt levels, and the parallel engine (with the requested
/// strategy), all final heaps compared bit for bit.  No engine compiles
/// anything — every execution reads the same artifacts.
pub fn validate(
    artifacts: &Artifacts,
    initial: &Heap,
    opts: &ExecOptions,
) -> Result<ValidationOutcome, crate::ExecError> {
    let ast_opts = ExecOptions {
        engine: EngineChoice::Ast,
        ..opts.clone()
    };
    let reference = run_serial_artifacts(artifacts, initial.clone(), &ast_opts)?;
    let mut mismatches = Vec::new();
    // Every non-reference serial engine (and both bytecode streams) runs
    // and is diffed; the requested engine's stats are the ones reported.
    let mut serial = None;
    for (engine, opt_level, label) in [
        (
            EngineChoice::Compiled,
            opts.opt_level,
            "serial-ast vs serial-compiled",
        ),
        (
            EngineChoice::Bytecode,
            OptLevel::O0,
            "serial-ast vs serial-bytecode-O0",
        ),
        (
            EngineChoice::Bytecode,
            OptLevel::O1,
            "serial-ast vs serial-bytecode-O1",
        ),
    ] {
        let engine_opts = ExecOptions {
            engine,
            opt_level,
            ..opts.clone()
        };
        let out = run_serial_artifacts(artifacts, initial.clone(), &engine_opts)?;
        for m in reference.heap.diff(&out.heap) {
            mismatches.push(format!("{label}: {m}"));
        }
        if engine == opts.engine
            && (engine != EngineChoice::Bytecode || opt_level == opts.opt_level)
        {
            serial = Some(out);
        }
    }
    let parallel = run_parallel_artifacts(artifacts, initial.clone(), opts)?;
    for m in reference.heap.diff(&parallel.heap) {
        mismatches.push(format!("serial vs parallel: {m}"));
    }
    Ok(ValidationOutcome {
        program: artifacts.program.name.clone(),
        proven_parallel: artifacts.report.outermost_parallel_loops(),
        dispatched: parallel.stats.parallel_loops(),
        heaps_match: mismatches.is_empty(),
        mismatches,
        serial: serial
            .map(|s| s.stats)
            .unwrap_or_else(|| reference.stats.clone()),
        parallel: parallel.stats,
        final_heap: reference.heap,
    })
}

/// Parses, compiles the full pipeline, synthesizes inputs and validates a
/// mini-C source — the analyze → prove → compile → execute → validate loop
/// in one call (one pipeline invocation feeding every engine).
pub fn validate_source(
    name: &str,
    source: &str,
    spec: &InputSpec,
    opts: &ExecOptions,
) -> Result<ValidationOutcome, ValidationError> {
    let artifacts = Artifacts::compile_source(name, source)?;
    let initial = synthesize_inputs(&artifacts.program, spec)?;
    Ok(validate(&artifacts, &initial, opts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    #[test]
    fn figure2_validates_end_to_end() {
        let src = r#"
            for (e = 0; e < nelt; e++) { mt_to_id[e] = e; }
            for (miel = 0; miel < nelt; miel++) {
                iel = mt_to_id[miel];
                id_to_mt[iel] = miel;
            }
        "#;
        let out = validate_source(
            "fig2",
            src,
            &InputSpec {
                scale: 512,
                seed: 3,
            },
            &opts(4),
        )
        .unwrap();
        assert!(out.heaps_match, "{:?}", out.mismatches);
        assert_eq!(out.proven_parallel, vec![LoopId(0), LoopId(1)]);
        assert_eq!(out.dispatched, vec![LoopId(0), LoopId(1)]);
    }

    #[test]
    fn validation_covers_both_engines() {
        // Validate with the AST engine requested for the parallel run too:
        // all three executions must still agree.
        let out = validate_source(
            "fig2",
            r#"
                for (e = 0; e < nelt; e++) { mt_to_id[e] = nelt - 1 - e; }
                for (miel = 0; miel < nelt; miel++) {
                    iel = mt_to_id[miel];
                    id_to_mt[iel] = miel;
                }
            "#,
            &InputSpec { scale: 64, seed: 9 },
            &ExecOptions {
                engine: EngineChoice::Ast,
                ..opts(3)
            },
        )
        .unwrap();
        assert!(out.heaps_match, "{:?}", out.mismatches);
        assert!(!out.dispatched.is_empty());
    }

    #[test]
    fn serial_programs_validate_trivially() {
        let out = validate_source(
            "seq",
            "for (i = 1; i < n; i++) { s[i] = s[i-1] + 1; }",
            &InputSpec::default(),
            &opts(4),
        )
        .unwrap();
        assert!(out.heaps_match);
        assert!(out.dispatched.is_empty());
        assert!(out.speedup() > 0.0);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            validate_source(
                "bad",
                "for (i = 0 i < n; i++) {}",
                &InputSpec::default(),
                &opts(2)
            ),
            Err(ValidationError::Parse(_))
        ));
    }
}
